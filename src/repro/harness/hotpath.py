"""Hot-path benchmark configurations and the determinism contract.

Three workloads exercise the optimized simulation core end to end:

* ``tileio_detailed`` — fig-7-style tile-IO collective write with
  detailed collectives at 256 ranks (the wall-clock headline number);
* ``btio_iview`` — BT-IO under ParColl with intermediate file views;
* ``flash_verified`` — Flash checkpoint with real bytes stored, so the
  run can be checked down to a file-content hash.

Each entry builds the platform *manually* (not through
``run_experiment``) so the Lustre file system handle stays reachable —
verified-mode configs hash the actual file bytes, which is the strongest
bit-identical-results check we have.  ``benchmarks/ref_hotpath.json``
records the metrics of every config as produced by the unoptimized
pre-optimization engine; :func:`run_config` must keep matching it
exactly.

The ``smoke`` variants shrink the rank counts so CI can run the same
code paths in seconds; the full variants are what ``BENCH_hotpath.json``
records.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from functools import partial
from typing import Any, Optional

from repro.harness.runner import ExperimentConfig
from repro.perf import PerfStats, collect
from repro.workloads import (BTIOConfig, FlashIOConfig, TileIOConfig,
                             btio_program, flash_io_program, tile_io_program)


def _tileio_detailed(smoke: bool) -> tuple[ExperimentConfig, Any, Any]:
    """Fig-7-style tile-IO collective write, detailed collectives."""
    nprocs = 32 if smoke else 256
    cfg = ExperimentConfig(nprocs=nprocs, collective_mode="detailed",
                           lustre={"n_osts": 16, "default_stripe_count": 16})
    wl = TileIOConfig(tile_rows=256, tile_cols=192, element_size=64,
                      hints={"protocol": "ext2ph"})
    return cfg, wl, partial(tile_io_program, wl)


def _btio_iview(smoke: bool) -> tuple[ExperimentConfig, Any, Any]:
    """BT-IO under ParColl with intermediate file views (pattern c)."""
    nprocs = 16 if smoke else 64
    ngroups = 2 if smoke else 4
    cfg = ExperimentConfig(nprocs=nprocs, collective_mode="analytic",
                           lustre={"n_osts": 16, "default_stripe_count": 16})
    wl = BTIOConfig(grid_points=144, nsteps=3, compute_seconds=0.05,
                    compute_jitter=0.03,
                    hints={"protocol": "parcoll",
                           "parcoll_ngroups": ngroups})
    return cfg, wl, partial(btio_program, wl)


def _flash_verified(smoke: bool) -> tuple[ExperimentConfig, Any, Any]:
    """Flash checkpoint in verified mode: real bytes move end to end."""
    nprocs = 8 if smoke else 16
    cfg = ExperimentConfig(nprocs=nprocs, collective_mode="analytic",
                           lustre={"store_data": True, "n_osts": 8,
                                   "default_stripe_count": 8})
    wl = FlashIOConfig(nxb=8, nyb=8, nzb=8, blocks_per_proc=4, nvars=6,
                       hints={"protocol": "ext2ph"})
    return cfg, wl, partial(flash_io_program, wl)


CONFIGS = {
    "tileio_detailed": _tileio_detailed,
    "btio_iview": _btio_iview,
    "flash_verified": _flash_verified,
}


def scale_config(nprocs: int = 4096) -> tuple[ExperimentConfig, Any, Any]:
    """Tile-IO at thousands of ranks — the macro-fidelity scale probe.

    Deliberately NOT in :data:`CONFIGS`: it has no reference entry in
    ``ref_hotpath.json`` (a per-message detailed run at this size takes
    tens of minutes, so there is nothing to gate against).  The macro
    backend makes it tractable; ``BENCH_hotpath.json`` records the wall
    time and events/sec as the scale headline.
    """
    cfg = ExperimentConfig(nprocs=nprocs, collective_mode="macro",
                           lustre={"n_osts": 32,
                                   "default_stripe_count": 32})
    wl = TileIOConfig(tile_rows=256, tile_cols=192, element_size=64,
                      hints={"protocol": "ext2ph"})
    return cfg, wl, partial(tile_io_program, wl)


def run_scale(nprocs: int = 4096,
              collective_mode: Optional[str] = None) -> dict:
    """Run the scale probe; returns metrics plus host wall seconds."""
    cfg, _wl, program = scale_config(nprocs)
    if collective_mode is not None:
        cfg = dataclasses.replace(cfg, collective_mode=collective_mode)
    world, fs, io = cfg.build()

    def rank_main(comm):
        stats = yield from program(comm, io)
        return stats

    t0 = time.perf_counter()
    per_rank = world.launch(rank_main)
    wall = time.perf_counter() - t0
    events = world.engine.effects_dispatched
    return {
        "nprocs": nprocs,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "messages": world.network.messages_sent,
        "elapsed_total": repr(world.engine.now),
        "bytes_written": int(sum(s.bytes_written for s in per_rank)),
    }


def shard_scale_config(nprocs: int = 4096,
                       shards: int = 1) -> tuple[ExperimentConfig, Any, Any]:
    """Parcoll tile-IO with detailed subgroup physics — the shard probe.

    The configuration is deliberately shard-friendly: parcoll with one
    FA subgroup cluster per shard, world-spanning collectives analytic
    (bridged across shards), everything inside a subgroup at detailed
    per-message fidelity.  At 4096 ranks a single engine carries the
    whole detailed event stream; sharding splits it into independent
    per-subgroup streams, which is where the parallel speedup comes
    from.  ``BENCH_sharded_scaling.json`` records the wall times.
    """
    # one FA subgroup per 128 ranks: the detailed exchange is quadratic
    # in group size, so fixed group width keeps the single-engine
    # baseline tractable while still giving shards real work to split
    ngroups = max(4, nprocs // 128) if nprocs >= 512 else 4
    cfg = ExperimentConfig(
        nprocs=nprocs, shards=shards,
        collective_mode="scoped:world=analytic,default=detailed",
        lustre={"n_osts": 32, "default_stripe_count": 32})
    wl = TileIOConfig(tile_rows=128, tile_cols=96, element_size=64,
                      hints={"protocol": "parcoll",
                             "parcoll_ngroups": ngroups})
    return cfg, wl, partial(tile_io_program, wl)


def run_shard_scale(nprocs: int = 4096, shards: int = 1,
                    collective_mode: Optional[str] = None) -> dict:
    """Run the shard probe through :func:`run_experiment`; the sharded
    dispatch (and its single-engine fallback) is part of what is being
    measured.  Returns virtual metrics plus host wall seconds and the
    run's shard observability block."""
    from repro.harness.runner import run_experiment

    cfg, _wl, program = shard_scale_config(nprocs, shards)
    if collective_mode is not None:
        cfg = dataclasses.replace(cfg, collective_mode=collective_mode)
    t0 = time.perf_counter()
    result = run_experiment(cfg, program)
    wall = time.perf_counter() - t0
    return {
        "nprocs": nprocs,
        "shards": shards,
        "wall_s": round(wall, 4),
        "events": result.events,
        "events_per_sec": round(result.events / wall, 1) if wall else 0.0,
        "messages": result.messages,
        "elapsed_total": repr(result.elapsed_total),
        "write_bandwidth": repr(result.write_bandwidth),
        "shard": result.perf.shard if result.perf is not None else None,
    }


def run_config(name: str, smoke: bool = False,
               perf_out: Optional[list] = None,
               collective_mode: Optional[str] = None) -> dict:
    """Run one named config; returns exact virtual-time metrics.

    ``file_sha256`` hashes the concatenated contents of every verified
    file (sorted by name); model-mode runs report an empty string.  If
    ``perf_out`` is given, the run's :class:`PerfStats` (including host
    wall seconds) is appended to it.  ``collective_mode`` overrides the
    config's collective backend spec — the macro-equivalence gate uses
    it to run the same workload under 'detailed' and 'macro'.
    """
    cfg, _wl, program = CONFIGS[name](smoke)
    if collective_mode is not None:
        cfg = dataclasses.replace(cfg, collective_mode=collective_mode)
    world, fs, io = cfg.build()

    def rank_main(comm):
        stats = yield from program(comm, io)
        return stats

    t0 = time.perf_counter()
    per_rank = world.launch(rank_main)
    wall = time.perf_counter() - t0
    if perf_out is not None:
        perf_out.append(collect(world, wall_seconds=wall))
    digest = ""
    if fs.params.store_data:
        h = hashlib.sha256()
        for fname in sorted(fs._files):
            f = fs._files[fname]
            h.update(fname.encode())
            h.update(f.store.snapshot().tobytes())
        digest = h.hexdigest()
    from repro.harness.runner import RunResult
    from repro.simmpi.timers import summarize

    res = RunResult(config=cfg, per_rank=per_rank,
                    breakdown=summarize(world.breakdowns),
                    events=world.engine.effects_dispatched,
                    messages=world.network.messages_sent,
                    elapsed_total=world.engine.now,
                    backend=world.collective_mode)
    return {
        "write_bandwidth": repr(res.write_bandwidth),
        "read_bandwidth": repr(res.read_bandwidth),
        "elapsed_total": repr(res.elapsed_total),
        "events": res.events,
        "messages": res.messages,
        "bytes_written": int(sum(s.bytes_written for s in per_rank)),
        "file_sha256": digest,
    }


def profile_config(name: str, smoke: bool = False, top: int = 25,
                   sort: str = "cumulative",
                   shards: int = 1) -> tuple[str, PerfStats]:
    """Run one named config under cProfile.

    Returns the formatted top-``top`` hot-function table and the run's
    :class:`PerfStats` (wall seconds here include profiler overhead).
    With ``shards > 1`` the run goes through :func:`run_experiment` so
    the sharded dispatch applies; non-parcoll configs fall back to one
    engine and the perf block records the reason.  Profiling then only
    sees the coordinator side — the shard engines live in worker
    processes outside cProfile's reach.
    """
    from repro.perf import profile_experiment

    perf_out: list = []
    if shards > 1:
        from repro.harness.runner import run_experiment

        cfg, _wl, program = CONFIGS[name](smoke)
        cfg = dataclasses.replace(cfg, shards=shards)

        def job() -> None:
            result = run_experiment(cfg, program)
            perf_out.append(result.perf)
    else:
        def job() -> None:
            run_config(name, smoke=smoke, perf_out=perf_out)
    table = profile_experiment(job, top=top, sort=sort)
    return table, perf_out[0]
