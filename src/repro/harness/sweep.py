"""Parameter sweeps: run an experiment grid and find optima.

A :class:`Sweep` maps one axis (group count, process count, stripe size,
any hint) over a workload factory, memoizing results so that optimum
searches and multi-figure reports reuse runs.  The paper's "empirically
evaluate the impact of the group size" methodology (Section 4) is exactly
this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.harness.report import format_table, mb_per_s
from repro.harness.runner import ExperimentConfig, Program, RunResult, run_experiment


@dataclass
class SweepPoint:
    """One evaluated point of a sweep."""

    value: Any
    result: RunResult

    @property
    def write_mb_s(self) -> float:
        return mb_per_s(self.result.write_bandwidth)


@dataclass
class Sweep:
    """A one-axis experiment sweep.

    ``make`` maps an axis value to ``(ExperimentConfig, program)``; points
    are evaluated lazily and cached by value.
    """

    name: str
    make: Callable[[Any], tuple[ExperimentConfig, Program]]
    _cache: dict[Any, SweepPoint] = field(default_factory=dict)

    def at(self, value: Any) -> SweepPoint:
        point = self._cache.get(value)
        if point is None:
            cfg, program = self.make(value)
            point = SweepPoint(value, run_experiment(cfg, program))
            self._cache[value] = point
        return point

    def run(self, values: Iterable[Any]) -> list[SweepPoint]:
        return [self.at(v) for v in values]

    def best(self, values: Iterable[Any],
             key: Optional[Callable[[SweepPoint], float]] = None
             ) -> SweepPoint:
        """The point maximizing ``key`` (default: write bandwidth)."""
        key = key or (lambda pt: pt.write_mb_s)
        points = self.run(values)
        return max(points, key=key)

    def golden_section_max(self, lo: int, hi: int,
                           key: Optional[Callable[[SweepPoint], float]] = None,
                           max_evals: int = 12) -> SweepPoint:
        """Find an interior optimum over integer powers of two in [lo, hi].

        Group-count curves are unimodal in practice (aggregation quality
        falls monotonically, sync cost rises monotonically), so a ternary
        search over the power-of-two ladder converges in a handful of
        runs — the adaptive alternative to a full sweep.
        """
        key = key or (lambda pt: pt.write_mb_s)
        ladder = []
        v = max(1, lo)
        while v <= hi:
            ladder.append(v)
            v *= 2
        if not ladder:
            raise ValueError(f"empty search range [{lo}, {hi}]")
        a, b = 0, len(ladder) - 1
        evals = 0
        while b - a > 2 and evals < max_evals:
            m1 = a + (b - a) // 3
            m2 = b - (b - a) // 3
            if m1 == m2:
                break
            f1 = key(self.at(ladder[m1]))
            f2 = key(self.at(ladder[m2]))
            evals += 2
            if f1 < f2:
                a = m1 + 1
            else:
                b = m2 - 1 if m2 > m1 + 1 else m2
        return self.best(ladder[a:b + 1], key=key)

    def table(self, values: Iterable[Any],
              columns: Optional[dict[str, Callable[[SweepPoint], Any]]] = None
              ) -> str:
        """Render the sweep as a report table."""
        columns = columns or {
            "write MB/s": lambda pt: round(pt.write_mb_s),
            "sync max (s)": lambda pt: round(
                pt.result.breakdown.get("sync", {}).get("max", 0.0), 4),
            "sync %": lambda pt: round(
                100 * pt.result.category_share("sync"), 1),
        }
        rows = [[pt.value] + [fn(pt) for fn in columns.values()]
                for pt in self.run(values)]
        return format_table([self.name] + list(columns), rows)
