"""Parameter sweeps: run an experiment grid and find optima.

A :class:`Sweep` maps one axis (group count, process count, stripe size,
any hint) over a workload factory, memoizing results so that optimum
searches and multi-figure reports reuse runs.  The paper's "empirically
evaluate the impact of the group size" methodology (Section 4) is exactly
this object.

Sweep points are independent simulations, so batches evaluate through an
:class:`~repro.harness.parallel.ExperimentExecutor` when one is attached:
give the sweep a ``task`` descriptor maker (axis value ->
:class:`~repro.harness.parallel.ExperimentTask`) and an ``executor``, and
:meth:`Sweep.run` / :meth:`Sweep.best` / :meth:`Sweep.golden_section_max`
evaluate their misses as one parallel, disk-cached batch.  Without them
the sweep runs serially through ``make``, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.harness.report import format_table, mb_per_s

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.parallel import ExperimentExecutor, ExperimentTask
from repro.harness.runner import ExperimentConfig, Program, RunResult, run_experiment


@dataclass
class SweepPoint:
    """One evaluated point of a sweep."""

    value: Any
    result: RunResult

    @property
    def write_mb_s(self) -> float:
        return mb_per_s(self.result.write_bandwidth)


@dataclass
class Sweep:
    """A one-axis experiment sweep.

    ``make`` maps an axis value to ``(ExperimentConfig, program)``; points
    are evaluated lazily and cached by value.  ``task`` (optional) maps an
    axis value to a picklable :class:`ExperimentTask` descriptor; together
    with ``executor`` it enables batch-parallel evaluation and the
    persistent run cache.  Either ``make`` or ``task`` must be given.
    """

    name: str
    make: Optional[Callable[[Any], tuple[ExperimentConfig, Program]]] = None
    task: Optional[Callable[[Any], "ExperimentTask"]] = None
    executor: Optional["ExperimentExecutor"] = None
    _cache: dict[Any, SweepPoint] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.make is None and self.task is None:
            raise ValueError("a Sweep needs 'make' or 'task'")

    # -- evaluation -------------------------------------------------------
    def _evaluate(self, values: list[Any],
                  executor: Optional["ExperimentExecutor"] = None) -> None:
        """Fill ``_cache`` for every missing value, batched when possible."""
        missing = []
        for v in values:
            if v not in self._cache and v not in missing:
                missing.append(v)
        if not missing:
            return
        executor = executor if executor is not None else self.executor
        if self.task is not None:
            ex = executor
            if ex is None:
                from repro.harness.parallel import ExperimentExecutor

                ex = ExperimentExecutor(jobs=1, cache=False)
            results = ex.run_many([self.task(v) for v in missing])
            for v, res in zip(missing, results):
                self._cache[v] = SweepPoint(v, res)
        else:
            for v in missing:
                cfg, program = self.make(v)
                self._cache[v] = SweepPoint(v, run_experiment(cfg, program))

    def at(self, value: Any) -> SweepPoint:
        if value not in self._cache:
            self._evaluate([value])
        return self._cache[value]

    def run(self, values: Iterable[Any],
            executor: Optional["ExperimentExecutor"] = None
            ) -> list[SweepPoint]:
        values = list(values)
        self._evaluate(values, executor)
        return [self._cache[v] for v in values]

    def best(self, values: Iterable[Any],
             key: Optional[Callable[[SweepPoint], float]] = None,
             executor: Optional["ExperimentExecutor"] = None) -> SweepPoint:
        """The point maximizing ``key`` (default: write bandwidth)."""
        key = key or (lambda pt: pt.write_mb_s)
        points = self.run(values, executor)
        return max(points, key=key)

    def golden_section_max(self, lo: int, hi: int,
                           key: Optional[Callable[[SweepPoint], float]] = None,
                           max_evals: int = 12) -> SweepPoint:
        """Find an interior optimum over integer powers of two in [lo, hi].

        Group-count curves are unimodal in practice (aggregation quality
        falls monotonically, sync cost rises monotonically), so a ternary
        search over the power-of-two ladder converges in a handful of
        runs — the adaptive alternative to a full sweep.

        ``max_evals`` bounds *fresh* experiment runs: probes answered from
        the sweep's memo (or the executor's run cache) are free and do not
        count against the budget.  Each probe pair evaluates as one batch,
        so an attached executor runs the two probes concurrently.
        """
        key = key or (lambda pt: pt.write_mb_s)
        ladder = []
        v = max(1, lo)
        while v <= hi:
            ladder.append(v)
            v *= 2
        if not ladder:
            raise ValueError(f"empty search range [{lo}, {hi}]")
        a, b = 0, len(ladder) - 1
        evals = 0
        while b - a > 2 and evals < max_evals:
            m1 = a + (b - a) // 3
            m2 = b - (b - a) // 3
            if m1 == m2:
                break
            probes = [ladder[m1], ladder[m2]]
            evals += sum(1 for p in set(probes) if p not in self._cache)
            pt1, pt2 = self.run(probes)
            f1, f2 = key(pt1), key(pt2)
            if f1 < f2:
                a = m1 + 1
            else:
                b = m2 - 1 if m2 > m1 + 1 else m2
        return self.best(ladder[a:b + 1], key=key)

    def table(self, values: Iterable[Any],
              columns: Optional[dict[str, Callable[[SweepPoint], Any]]] = None
              ) -> str:
        """Render the sweep as a report table."""
        columns = columns or {
            "write MB/s": lambda pt: round(pt.write_mb_s),
            "sync max (s)": lambda pt: round(
                pt.result.breakdown.get("sync", {}).get("max", 0.0), 4),
            "sync %": lambda pt: round(
                100 * pt.result.category_share("sync"), 1),
        }
        rows = [[pt.value] + [fn(pt) for fn in columns.values()]
                for pt in self.run(values)]
        return format_table([self.name] + list(columns), rows)


def protocol_sweep(name: str, config: ExperimentConfig, workload: str,
                   workload_config: Any,
                   executor: Optional["ExperimentExecutor"] = None) -> Sweep:
    """A sweep whose axis is the collective-I/O protocol spec.

    Each axis value (``'ext2ph'``, ``'parcoll'``, ``'listio:16'``, ...)
    becomes the platform default protocol of an otherwise identical
    :class:`~repro.harness.parallel.ExperimentTask` — the protocol-zoo
    race in sweep form, reusing the memo/executor machinery (including
    :meth:`Sweep.best` for the advisor's pick).
    """
    from dataclasses import replace

    from repro.harness.parallel import ExperimentTask

    def task(spec: str) -> "ExperimentTask":
        return ExperimentTask(replace(config, protocol=spec), workload,
                              workload_config)

    return Sweep(name=name, task=task, executor=executor)
