"""Build a platform from a config, run a workload, collect metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.cluster import MachineConfig, NetworkParams, Torus3D
from repro.errors import ConfigError
from repro.lustre import LustreFS, LustreParams
from repro.mpiio import MPIIO
from repro.perf import PerfStats, collect
from repro.simmpi import World
from repro.simmpi.timers import summarize
from repro.workloads.base import WorkloadIOStats


@dataclass(frozen=True)
class ExperimentConfig:
    """Platform configuration for one run.

    ``net`` and ``lustre`` are keyword overrides for
    :class:`NetworkParams` / :class:`LustreParams`; experiments default to
    model mode (no data bytes) so paper-scale runs stay cheap.

    ``collective_mode`` is a collective-fidelity backend spec
    (:mod:`repro.simmpi.backends`): ``analytic``, ``detailed``,
    ``hybrid[:<category>=<fidelity>,...]`` for per-category selection —
    the large-rank sweep configuration is
    ``hybrid:sync=analytic,default=detailed`` — or
    ``sizethreshold:<bytes>`` for size-dependent dispatch.

    ``faults`` is a :class:`~repro.faults.FaultPlan` (or its ``to_dict``
    mapping / event tuple); an empty plan is the default and leaves the
    platform untouched.  ``retry`` holds keyword overrides for the
    platform :class:`~repro.faults.RetryPolicy`.  Both hash into the run
    cache key, so runs differing only in faults or retry never collide.
    """

    nprocs: int
    cores_per_node: int = 2
    mapping: str = "block"
    collective_mode: str = "analytic"
    #: collective-I/O protocol spec (:mod:`repro.mpiio.protocols`) used as
    #: the platform-wide default for files opened without an explicit
    #: ``protocol`` hint; None keeps the library default ('ext2ph')
    protocol: Optional[str] = None
    use_torus: bool = False
    net: dict = field(default_factory=dict)
    lustre: dict = field(default_factory=dict)
    seed: int = 0
    faults: Any = None
    retry: dict = field(default_factory=dict)
    #: run the :mod:`repro.validate` correctness oracle: True forces it
    #: on, False leaves the platform default (the ``REPRO_VALIDATE``
    #: environment variable / ``parcoll_validate`` hint still apply)
    validate: bool = False
    #: engine shards for the sharded parallel DES (:mod:`repro.shard`):
    #: >1 partitions the event space along FA-subgroup boundaries into
    #: that many worker processes when the config satisfies the
    #: partition contract, and falls back to an unsharded run (with the
    #: reason recorded in ``perf.shard``) when it does not
    shards: int = 1

    def build(self) -> tuple[World, LustreFS, MPIIO]:
        from repro.faults import FaultInjector, FaultPlan, RetryPolicy

        machine = MachineConfig(nprocs=self.nprocs,
                                cores_per_node=self.cores_per_node,
                                mapping=self.mapping)
        plan = FaultPlan.coerce(self.faults)
        injector = None
        if not plan.is_empty:
            injector = FaultInjector(plan, seed=self.seed)
        topology = Torus3D.fit(machine.nnodes) if self.use_torus else None
        world = World(machine, net_params=NetworkParams(**self.net),
                      topology=topology,
                      collective_mode=self.collective_mode,
                      faults=injector)
        lustre_kw = {"store_data": False, **self.lustre}
        retry = RetryPolicy(**self.retry) if self.retry else None
        fs = LustreFS(world.engine, LustreParams(**lustre_kw), seed=self.seed,
                      faults=injector, retry=retry)
        if injector is not None:
            injector.validate_platform(fs.params.n_osts, machine.nnodes)
        default_hints = ({"protocol": self.protocol}
                         if self.protocol is not None else None)
        return world, fs, MPIIO(world, fs,
                                validate=True if self.validate else None,
                                default_hints=default_hints)


@dataclass
class RunResult:
    """Aggregated metrics of one experiment run."""

    config: ExperimentConfig
    per_rank: list[WorkloadIOStats]
    breakdown: dict[str, dict[str, float]]
    events: int
    messages: int
    elapsed_total: float
    #: canonical spec of the collective backend the run used
    backend: str = ""
    #: simulation-core counters sampled from the run (None on results
    #: unpickled from caches written before the perf layer existed)
    perf: Optional["PerfStats"] = None
    #: ``ValidationReport.to_dict()`` of a validated run (None when the
    #: correctness oracle was off; a dict with zero checks means the
    #: oracle was on but the workload never exercised it)
    validation: Optional[dict] = None

    def _phase(self, attr: str) -> tuple[int, float]:
        total_bytes = 0
        start, end = None, None
        for st in self.per_rank:
            times = getattr(st, attr)
            total_bytes += (st.bytes_written if attr == "write_times"
                            else st.bytes_read)
            if times is None:
                continue
            start = times.start if start is None else min(start, times.start)
            end = times.end if end is None else max(end, times.end)
        if start is None or end <= start:
            return total_bytes, 0.0
        return total_bytes, end - start

    @property
    def write_bandwidth(self) -> float:
        """Aggregate write bandwidth in bytes/second."""
        nbytes, secs = self._phase("write_times")
        return nbytes / secs if secs > 0 else 0.0

    @property
    def read_bandwidth(self) -> float:
        nbytes, secs = self._phase("read_times")
        return nbytes / secs if secs > 0 else 0.0

    @property
    def write_elapsed(self) -> float:
        return self._phase("write_times")[1]

    @property
    def io_phase_bandwidth(self) -> float:
        """Bandwidth over summed I/O-operation time (excludes compute
        phases between operations; slowest rank governs)."""
        total = sum(s.bytes_written + s.bytes_read for s in self.per_rank)
        worst = max((s.io_seconds for s in self.per_rank), default=0.0)
        return total / worst if worst > 0 else 0.0

    def sync_time(self, stat: str = "max") -> float:
        return self.breakdown.get("sync", {}).get(stat, 0.0)

    def category_share(self, category: str) -> float:
        """Fraction of the summed accounted time in one category."""
        total = sum(v["sum"] for v in self.breakdown.values())
        if total <= 0:
            return 0.0
        return self.breakdown.get(category, {}).get("sum", 0.0) / total


Program = Callable[[Any, Any], Generator[Any, Any, WorkloadIOStats]]


def run_experiment(config: ExperimentConfig, program: Program) -> RunResult:
    """Run ``program(comm, io)`` on every rank of a fresh platform.

    With ``config.shards > 1`` and a plan-conforming configuration the
    run is partitioned over that many engine shards in worker processes
    (:mod:`repro.shard`); the merged result is bit-identical in every
    virtual-time metric to the unsharded run.  Non-conforming configs
    fall back to a single engine and record why in ``perf.shard``.
    """
    import time

    plan = None
    if config.shards > 1:
        from repro.shard import analyze, workload_hints_of

        plan = analyze(config, workload_hints_of(program))
        if plan.active:
            from repro.shard.coordinator import run_sharded

            return run_sharded(config, program, plan)

    world, fs, io = config.build()

    def rank_main(comm):
        stats = yield from program(comm, io)
        if not isinstance(stats, WorkloadIOStats):
            raise ConfigError(
                "workload programs must return a WorkloadIOStats"
            )
        return stats

    t0 = time.perf_counter()
    per_rank = world.launch(rank_main)
    wall = time.perf_counter() - t0
    perf = collect(world, wall_seconds=wall)
    if plan is not None:
        from repro.shard.coordinator import shard_stats

        perf.shard = shard_stats(plan)
    return RunResult(
        config=config,
        per_rank=per_rank,
        breakdown=summarize(world.breakdowns),
        events=world.engine.effects_dispatched,
        messages=world.network.messages_sent,
        elapsed_total=world.engine.now,
        backend=world.collective_mode,
        perf=perf,
        validation=(io.validator.report.to_dict()
                    if io.validator is not None else None),
    )
