"""Fault-class sweeps: degradation curves under injected faults.

The resilience question the paper's partitioning raises but never
measures: when one component of the storage system misbehaves, how far
does the damage spread?  Under flat extended two-phase every aggregator
eventually touches every OST, so a single straggler OST drags the whole
collective; under ParColl each subgroup only touches its own File Area's
OSTs, so the blast radius is one subgroup.

This module turns that into a measurable curve.  Each named *fault
class* (:data:`FAULT_CLASSES`) maps a scalar ``severity`` in ``[0, 1)``
to a :class:`~repro.faults.FaultPlan` — severity 0 is the healthy
platform, higher is worse — and :func:`fault_sweep` runs the same
workload across severities x protocols and reports bandwidth plus the
fraction of healthy throughput retained.

The platform is laid out so the faulty component maps cleanly onto the
partitioning: ``nprocs == n_osts == stripe_count``, one stripe-sized
block per rank, so rank *r*'s data lands on OST *r* and a ParColl
subgroup of *g* ranks owns exactly *g* OSTs.  Degrading OST 0 therefore
hits one subgroup under ParColl and every round under flat ext2ph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.harness.figures import FigureResult
from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    default_executor)
from repro.harness.report import mb_per_s
from repro.harness.runner import ExperimentConfig, RunResult
from repro.workloads import IORConfig

#: platform layouts keyed by scale; ``stall_unit`` is the stall duration
#: at severity 1.0 (sized to the scale's healthy run time), ``rounds``
#: the number of collective write calls per rank (the global coupling a
#: fault propagates through needs *repeated* collectives — one call
#: slows only the aggregator in front of the faulty OST)
SCALES: dict[str, dict[str, Any]] = {
    "small": {"nprocs": 16, "n_osts": 16, "stripe_size": 512 << 10,
              "ngroups": 4, "rounds": 8, "stall_unit": 0.05},
    "paper": {"nprocs": 64, "n_osts": 64, "stripe_size": 4 << 20,
              "ngroups": 8, "rounds": 8, "stall_unit": 2.0},
}

#: protocol label -> MPI-IO hints (parcoll_ngroups filled per scale)
PROTOCOLS: dict[str, dict[str, Any]] = {
    "ext2ph": {"protocol": "ext2ph"},
    "parcoll": {"protocol": "parcoll"},
}


@dataclass(frozen=True)
class FaultClass:
    """A one-knob family of fault plans.

    ``build(severity, scale_info)`` returns the plan for one severity;
    severity 0.0 must return the empty plan (the healthy baseline every
    curve is normalized against).  ``collective_mode`` is the fidelity
    the class needs to be observable — node slowdowns act on NICs and
    cores, which the analytic collective cost never touches, so the
    ``slownode`` class runs detailed collectives.
    """

    name: str
    description: str
    build: Callable[[float, Mapping[str, Any]], FaultPlan]
    severities: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.9)
    #: representative severity used by per-class impact reports
    probe: float = 0.75
    collective_mode: str = "analytic"
    #: RetryPolicy overrides the class needs (``None`` = platform default)
    retry: Optional[Mapping[str, Any]] = None


def _straggler(severity: float, scale: Mapping[str, Any]) -> FaultPlan:
    if severity <= 0:
        return FaultPlan()
    return FaultPlan.straggler_ost(0, factor=max(1.0 - severity, 0.01))


def _flaky(severity: float, scale: Mapping[str, Any]) -> FaultPlan:
    if severity <= 0:
        return FaultPlan()
    return FaultPlan.flaky(min(severity, 0.99), ost=0)


def _slownode(severity: float, scale: Mapping[str, Any]) -> FaultPlan:
    if severity <= 0:
        return FaultPlan()
    return FaultPlan.slow_node(0, factor=max(1.0 - severity, 0.01))


def _stall(severity: float, scale: Mapping[str, Any]) -> FaultPlan:
    if severity <= 0:
        return FaultPlan()
    return FaultPlan.stall(0, start=0.0,
                           duration=severity * scale["stall_unit"])


FAULT_CLASSES: dict[str, FaultClass] = {
    "straggler": FaultClass(
        name="straggler",
        description="OST 0 serves at (1 - severity) of nominal rate",
        build=_straggler,
    ),
    "flaky": FaultClass(
        name="flaky",
        description="RPCs to OST 0 are lost with probability = severity "
                    "(client retries with timeout + backoff)",
        build=_flaky,
        severities=(0.0, 0.1, 0.25, 0.4, 0.5),
        probe=0.4,
        # the curve sweeps loss rates where the default 8-attempt budget
        # has a non-negligible chance of exhausting somewhere in the run
        # (p^8 per RPC sequence, hundreds of sequences) and aborting
        # with FaultExhaustedError; the degradation curve wants the
        # survive-and-pay regime, so it deepens the budget — the
        # exhaustion regime itself is the resilience bench's subject
        retry={"max_attempts": 16},
    ),
    "slownode": FaultClass(
        name="slownode",
        description="node 0's NIC and cores run at (1 - severity) of "
                    "nominal speed",
        build=_slownode,
        collective_mode="detailed",
    ),
    "stall": FaultClass(
        name="stall",
        description="OST 0 stops serving for severity x stall_unit "
                    "seconds at t=0",
        build=_stall,
    ),
}


def scale_info(scale: str) -> dict[str, Any]:
    info = SCALES.get(scale)
    if info is None:
        raise ConfigError(
            f"unknown fault-sweep scale {scale!r}; "
            f"known: {', '.join(sorted(SCALES))}")
    return info


def fault_class(name: str) -> FaultClass:
    fc = FAULT_CLASSES.get(name)
    if fc is None:
        raise ConfigError(
            f"unknown fault class {name!r}; "
            f"known: {', '.join(sorted(FAULT_CLASSES))}")
    return fc


def sweep_tasks(fc: FaultClass, severities: Sequence[float], scale: str,
                protocols: Sequence[str] = ("ext2ph", "parcoll"),
                retry: Optional[dict] = None,
                collective_mode: Optional[str] = None,
                seed: int = 0) -> list[ExperimentTask]:
    """The (severity x protocol) task grid, row-major in ``severities``.

    Every task is an independent simulation, so the grid parallelizes
    over executor workers and hits the run cache per (plan, protocol)
    point — re-sweeping with one new severity only runs the new column.
    """
    info = scale_info(scale)
    mode = collective_mode or fc.collective_mode
    if retry is None:
        retry = fc.retry
    tasks = []
    for sev in severities:
        plan = fc.build(float(sev), info)
        for proto in protocols:
            hints = dict(PROTOCOLS[proto])
            if proto == "parcoll":
                hints["parcoll_ngroups"] = info["ngroups"]
            cfg = ExperimentConfig(
                nprocs=info["nprocs"],
                collective_mode=mode,
                lustre={"n_osts": info["n_osts"],
                        "default_stripe_count": info["n_osts"],
                        "default_stripe_size": info["stripe_size"]},
                seed=seed,
                faults=plan,
                retry=dict(retry) if retry else {},
            )
            wl = IORConfig(block_size=info["stripe_size"],
                           transfer_size=info["stripe_size"] // info["rounds"],
                           hints=hints)
            tasks.append(ExperimentTask(cfg, "ior", wl))
    return tasks


def rank_elapsed(res: RunResult) -> list[float]:
    """Sorted per-rank write-phase elapsed seconds."""
    return sorted(s.write_times.end - s.write_times.start
                  for s in res.per_rank if s.write_times is not None)


def _median(xs: Sequence[float]) -> float:
    if not xs:
        return 0.0
    n = len(xs)
    mid = n // 2
    return xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])


def fault_sweep(fault: str = "straggler",
                severities: Optional[Sequence[float]] = None,
                scale: str = "small",
                protocols: Sequence[str] = ("ext2ph", "parcoll"),
                retry: Optional[dict] = None,
                collective_mode: Optional[str] = None,
                executor: Optional[ExperimentExecutor] = None
                ) -> FigureResult:
    """Degradation curves of one fault class across protocols.

    The headline metric is the *median rank's* retained speed — the
    median rank's healthy write elapsed over its faulted elapsed.  Wall
    bandwidth cannot distinguish the protocols (the faulty component's
    own data bounds the last finisher either way); what partitioning
    changes is how many ranks that component drags with it.  Under flat
    ext2ph every collective call re-couples all ranks to the slow
    aggregator, so the median rank degrades like the worst one; under
    ParColl only the faulty component's subgroup does, so the median
    rank stays near 100%.  ``affected`` counts ranks slower than 1.5x
    their protocol's healthy median.
    """
    fc = fault_class(fault)
    sevs = tuple(float(s) for s in (severities or fc.severities))
    if not sevs or sevs[0] != 0.0:
        sevs = (0.0,) + tuple(s for s in sevs if s != 0.0)
    ex = executor or default_executor()
    tasks = sweep_tasks(fc, sevs, scale, protocols=protocols, retry=retry,
                        collective_mode=collective_mode)
    results = ex.run_many(tasks)

    by_point: dict[tuple[float, str], RunResult] = {}
    it = iter(results)
    for sev in sevs:
        for proto in protocols:
            by_point[(sev, proto)] = next(it)

    healthy_med = {p: _median(rank_elapsed(by_point[(0.0, p)]))
                   for p in protocols}
    headers = ["severity"]
    for proto in protocols:
        headers += [f"{proto} MB/s", f"{proto} median %", f"{proto} affected"]
    rows = []
    series: dict[str, Any] = {f"{p} retained": {} for p in protocols}
    retry_counts: dict[str, dict[float, int]] = {p: {} for p in protocols}
    wall_bw: dict[str, dict[float, float]] = {p: {} for p in protocols}
    for sev in sevs:
        row: list[Any] = [sev]
        for proto in protocols:
            res = by_point[(sev, proto)]
            elapsed = rank_elapsed(res)
            med = _median(elapsed)
            frac = healthy_med[proto] / med if med > 0 else 0.0
            affected = sum(1 for e in elapsed
                           if e > 1.5 * healthy_med[proto])
            series[f"{proto} retained"][sev] = round(frac, 4)
            wall_bw[proto][sev] = res.write_bandwidth
            fr = res.breakdown.get("fault_retry", {})
            retry_counts[proto][sev] = int(fr.get("count", 0))
            row += [round(mb_per_s(res.write_bandwidth), 1),
                    round(100 * frac, 1), affected]
        rows.append(row)
    series["retried_rpcs"] = retry_counts
    series["wall_bandwidth"] = wall_bw
    info = scale_info(scale)
    return FigureResult(
        figure=f"fault sweep [{fc.name}]",
        title=fc.description,
        headers=headers,
        rows=rows,
        series=series,
        notes=(f"IOR, {info['nprocs']} procs, {info['rounds']} collective "
               f"rounds over one {info['stripe_size'] >> 10} KB "
               f"block/rank, {info['n_osts']} OSTs (rank r -> OST r); "
               f"parcoll ngroups={info['ngroups']}, collectives "
               f"{collective_mode or fc.collective_mode}; 'median %' = "
               f"median rank's healthy/faulted elapsed, 'affected' = "
               f"ranks slower than 1.5x healthy median"),
    )
