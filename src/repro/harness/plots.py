"""Terminal plots: render figure series without a plotting stack.

The benchmarks print tables; these helpers add the visual shapes the
paper's figures carry — bar charts for variant comparisons, line charts
for scaling curves — as plain unicode text.  No matplotlib dependency.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar_chart(values: Mapping[Any, float], width: int = 48,
               title: Optional[str] = None, unit: str = "") -> str:
    """Horizontal bar chart, one row per key, scaled to the maximum."""
    if not values:
        return title or ""
    vmax = max(values.values())
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for k, v in values.items():
        frac = v / vmax if vmax > 0 else 0.0
        whole = int(frac * width)
        rem = int((frac * width - whole) * 8)
        bar = "█" * whole + (_BLOCKS[rem] if rem else "")
        lines.append(f"{str(k):>{label_w}} │{bar:<{width}} "
                     f"{v:,.0f}{unit}")
    return "\n".join(lines)


def line_chart(series: Mapping[str, Mapping[float, float]], width: int = 60,
               height: int = 12, title: Optional[str] = None,
               logx: bool = False) -> str:
    """Multi-series scatter/line chart on a character canvas.

    Each series gets its own marker; the x axis is shared (optionally
    log-scaled for process-count sweeps).
    """
    markers = "ox+*#@%&"
    xs_all = sorted({x for s in series.values() for x in s})
    ys_all = [y for s in series.values() for y in s.values()]
    if not xs_all or not ys_all:
        return title or ""
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if y_hi == y_lo:
        y_hi = y_lo + 1

    def xpos(x: float) -> int:
        if logx:
            if x <= 0 or x_lo <= 0 or x_hi == x_lo:
                return 0
            f = (math.log(x) - math.log(x_lo)) / (math.log(x_hi)
                                                  - math.log(x_lo))
        else:
            f = (x - x_lo) / (x_hi - x_lo) if x_hi > x_lo else 0.0
        return min(width - 1, int(f * (width - 1)))

    def ypos(y: float) -> int:
        f = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, int(f * (height - 1)))

    canvas = [[" "] * width for _ in range(height)]
    for i, (name, pts) in enumerate(series.items()):
        mark = markers[i % len(markers)]
        for x, y in pts.items():
            canvas[height - 1 - ypos(y)][xpos(x)] = mark
    lines = [title] if title else []
    lines.append(f"{y_hi:>12,.0f} ┐")
    for row in canvas:
        lines.append(" " * 13 + "│" + "".join(row))
    lines.append(f"{y_lo:>12,.0f} ┴" + "─" * width)
    lines.append(" " * 14 + f"{x_lo:<10g}" + " " * max(0, width - 20)
                 + f"{x_hi:>10g}")
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def figure_chart(result, series_names: Optional[Sequence[str]] = None,
                 logx: bool = True) -> str:
    """Best-effort chart for a FigureResult with dict-of-dict series."""
    numeric = {}
    for name, s in result.series.items():
        if isinstance(s, Mapping) and s and all(
                isinstance(v, (int, float)) for v in s.values()):
            if series_names is None or name in series_names:
                numeric[str(name)] = {float(k): float(v)
                                      for k, v in s.items()}
    if not numeric:
        flat = {k: v for k, v in result.series.items()
                if isinstance(v, (int, float))}
        if flat:
            return hbar_chart(flat, title=f"{result.figure}: {result.title}")
        return result.to_table()
    return line_chart(numeric, title=f"{result.figure}: {result.title}",
                      logx=logx)
