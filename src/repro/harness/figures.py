"""One experiment definition per paper figure.

Each ``figNN_*`` function runs the simulated experiment(s) behind the
corresponding figure of the paper and returns a :class:`FigureResult`
with the same rows/series the paper plots.  Scales are parameterized:
the defaults finish in seconds for tests; ``scale='paper'`` uses the
paper's process counts and per-process volumes (minutes of wall time,
used by the benchmark harness and EXPERIMENTS.md).

Every figure's point grid is a batch of independent simulations, so the
functions build picklable :class:`~repro.harness.parallel.ExperimentTask`
descriptors and evaluate them through an
:class:`~repro.harness.parallel.ExperimentExecutor` — pass ``executor=``
to control parallelism and caching, or set ``REPRO_JOBS`` /
``REPRO_RUNCACHE`` in the environment (the default executor honors
both; ``jobs=1`` reproduces the old serial evaluation order exactly,
and results are bit-identical at any job count).

Absolute MB/s depend on the simulated hardware constants and are not
expected to match Jaguar; the claims under test are the *shapes*: who
wins, by roughly what factor, and where optima/crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.cluster import Machine, MachineConfig
from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    default_executor)
from repro.harness.report import format_table, mb_per_s
from repro.harness.runner import ExperimentConfig, RunResult
from repro.parcoll import distribute_aggregators
from repro.workloads import (BTIOConfig, FlashIOConfig, IORConfig,
                             TileIOConfig)

#: Lustre setup of the paper's testbed: 72 OSTs, 64-way striping, 4 MB
PAPER_LUSTRE = {"n_osts": 72, "default_stripe_count": 64,
                "default_stripe_size": 4 << 20}


@dataclass
class FigureResult:
    """A reproduced figure: table rows plus free-form series data."""

    figure: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    series: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def to_table(self) -> str:
        out = format_table(self.headers, self.rows,
                           title=f"{self.figure}: {self.title}")
        if self.notes:
            out += f"\n  note: {self.notes}"
        return out


def _platform(nprocs: int, **overrides: Any) -> ExperimentConfig:
    kw: dict[str, Any] = {"nprocs": nprocs, "lustre": dict(PAPER_LUSTRE)}
    lustre_extra = overrides.pop("lustre", None)
    if lustre_extra:
        kw["lustre"].update(lustre_extra)
    kw.update(overrides)
    return ExperimentConfig(**kw)


def _tile_cfg(scale: str, hints: Optional[dict] = None,
              mode: str = "write") -> TileIOConfig:
    """The paper's 1024x768 tile of 64 B elements (48 MB/process).

    The collective wall is a *volume x contention* phenomenon: shrinking
    the tile hides it, so both scales keep the paper's tile and differ
    only in process counts (model mode never materializes the bytes).
    """
    return TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64,
                        hints=hints, mode=mode)


# ---------------------------------------------------------------------------
# Figures 1 & 2 — the collective wall / time breakdown
# ---------------------------------------------------------------------------
def fig01_collective_wall(procs: Sequence[int] = (16, 32, 64, 128, 256),
                          scale: str = "small",
                          collective_mode: str = "analytic",
                          executor: Optional[ExperimentExecutor] = None
                          ) -> FigureResult:
    """Sync share of MPI-Tile-IO collective-write time vs process count."""
    ex = executor or default_executor()
    wl = _tile_cfg(scale, hints={"protocol": "ext2ph"})
    results = ex.run_many([
        ExperimentTask(_platform(p, collective_mode=collective_mode),
                       "tile_io", wl)
        for p in procs
    ])
    rows = []
    shares = {}
    for p, res in zip(procs, results):
        share = res.category_share("sync")
        shares[p] = share
        rows.append([p, round(100 * share, 1),
                     round(res.breakdown["sync"]["max"], 3),
                     round(mb_per_s(res.write_bandwidth), 0)])
    return FigureResult(
        figure="Figure 1",
        title="The collective wall: synchronization share grows with scale",
        headers=["procs", "sync %", "sync max (s)", "write MB/s"],
        rows=rows,
        series={"sync_share": shares},
        notes="paper: sync reaches 72% of total time at 512 processes",
    )


def fig02_breakdown(procs: Sequence[int] = (16, 32, 64, 128, 256),
                    scale: str = "small",
                    executor: Optional[ExperimentExecutor] = None
                    ) -> FigureResult:
    """Per-category time breakdown of collective I/O vs process count."""
    ex = executor or default_executor()
    wl = _tile_cfg(scale, hints={"protocol": "ext2ph"})
    results = ex.run_many([
        ExperimentTask(_platform(p), "tile_io", wl) for p in procs
    ])
    rows = []
    series: dict[str, dict[int, float]] = {"sync": {}, "exchange": {}, "io": {}}
    for p, res in zip(procs, results):
        row = [p]
        for cat in ("sync", "exchange", "io"):
            t = res.breakdown.get(cat, {}).get("max", 0.0)
            series[cat][p] = t
            row.append(round(t, 4))
        rows.append(row)
    return FigureResult(
        figure="Figure 2",
        title="Collective I/O time breakdown (max across ranks, seconds)",
        headers=["procs", "sync", "exchange (p2p)", "file I/O"],
        rows=rows,
        series=series,
        notes="paper: sync grows much faster than p2p and file I/O",
    )


# ---------------------------------------------------------------------------
# Figure 5 — aggregator distribution worked example
# ---------------------------------------------------------------------------
def fig05_aggregator_distribution() -> FigureResult:
    """The paper's 8-process block/cyclic distribution example, recomputed."""
    rows = []
    groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
    world = list(range(8))
    for mapping, agg_list in (("block", [0, 2, 4, 6]), ("cyclic", [0, 2, 3])):
        machine = Machine(MachineConfig(nprocs=8, cores_per_node=2,
                                        mapping=mapping))
        out = distribute_aggregators(groups, agg_list, world, machine)
        for gi, aggs in enumerate(out):
            pretty = ", ".join(
                f"N{machine.node_of_rank(a)}(P{a})" for a in aggs
            )
            rows.append([mapping, f"SubGroup {gi + 1}", pretty])
    return FigureResult(
        figure="Figure 5",
        title="Distribution of I/O aggregators (worked example)",
        headers=["mapping", "subgroup", "aggregators"],
        rows=rows,
        notes="matches the paper's table exactly (see tests)",
    )


# ---------------------------------------------------------------------------
# Figure 6 — IOR collective write, ParColl-N vs baseline
# ---------------------------------------------------------------------------
def fig06_ior(procs: Sequence[int] = (32, 128),
              group_counts: Sequence[int] = (2, 4, 8, 16),
              scale: str = "small",
              executor: Optional[ExperimentExecutor] = None) -> FigureResult:
    """IOR contiguous collective write bandwidth for ParColl-N vs baseline."""
    # enough transfers per block that subgroups can drift apart; the paper
    # writes 512 MB/process in 4 MB units
    if scale == "paper":
        block, xfer = 128 << 20, 4 << 20
    else:
        block, xfer = 64 << 20, 4 << 20
    ex = executor or default_executor()
    grid: list[tuple[int, str]] = []
    tasks: list[ExperimentTask] = []
    for p in procs:
        variants: list[tuple[str, dict]] = [("Cray (ext2ph)",
                                             {"protocol": "ext2ph"})]
        variants += [(f"ParColl-{g}", {"protocol": "parcoll",
                                       "parcoll_ngroups": g})
                     for g in group_counts if g <= p]
        for name, hints in variants:
            wl = IORConfig(block_size=block, transfer_size=xfer, hints=hints)
            grid.append((p, name))
            tasks.append(ExperimentTask(_platform(p), "ior", wl))
    results = ex.run_many(tasks)
    rows = []
    series: dict[str, dict[int, float]] = {}
    for (p, name), res in zip(grid, results):
        bw = mb_per_s(res.write_bandwidth)
        series.setdefault(name, {})[p] = bw
        rows.append([p, name, round(bw, 0),
                     round(res.breakdown["sync"]["max"], 2)])
    return FigureResult(
        figure="Figure 6",
        title="IOR collective write bandwidth (MB/s)",
        headers=["procs", "variant", "MB/s", "sync max (s)"],
        rows=rows,
        series=series,
        notes="paper: 12.8x over the 380 MB/s baseline at 512 processes",
    )


# ---------------------------------------------------------------------------
# Figures 7 & 8 — MPI-Tile-IO vs subgroup count; sync reduction
# ---------------------------------------------------------------------------
def fig07_tileio_groups(nprocs: int = 64,
                        group_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
                        scale: str = "small",
                        include_read: bool = True,
                        executor: Optional[ExperimentExecutor] = None
                        ) -> FigureResult:
    """Tile-IO write/read bandwidth vs number of subgroups."""
    ex = executor or default_executor()
    mode = "both" if include_read else "write"
    tasks = []
    for g in group_counts:
        hints = ({"protocol": "ext2ph"} if g == 1
                 else {"protocol": "parcoll", "parcoll_ngroups": g})
        wl = _tile_cfg(scale, hints=hints, mode=mode)
        tasks.append(ExperimentTask(_platform(nprocs), "tile_io", wl))
    results = ex.run_many(tasks)
    rows = []
    series: dict[str, dict[int, float]] = {"write": {}, "read": {},
                                           "sync_max": {}, "sync_share": {}}
    for g, res in zip(group_counts, results):
        wbw = mb_per_s(res.write_bandwidth)
        rbw = mb_per_s(res.read_bandwidth)
        series["write"][g] = wbw
        series["read"][g] = rbw
        series["sync_max"][g] = res.breakdown["sync"]["max"]
        series["sync_share"][g] = res.category_share("sync")
        rows.append([g, round(wbw, 0), round(rbw, 0),
                     round(res.breakdown["sync"]["max"], 3),
                     round(100 * res.category_share("sync"), 1)])
    return FigureResult(
        figure="Figure 7",
        title=f"MPI-Tile-IO vs subgroup count ({nprocs} procs)",
        headers=["groups", "write MB/s", "read MB/s", "sync max (s)",
                 "sync %"],
        rows=rows,
        series=series,
        notes="paper: optimum at 64 subgroups (512 procs), +210% write; "
              "over-partitioning collapses performance",
    )


def fig08_sync_reduction(nprocs: int = 64,
                         group_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
                         scale: str = "small",
                         executor: Optional[ExperimentExecutor] = None
                         ) -> FigureResult:
    """Absolute and relative synchronization cost vs subgroup count."""
    base = fig07_tileio_groups(nprocs, group_counts, scale,
                               include_read=False, executor=executor)
    rows = []
    base_sync = base.series["sync_max"][group_counts[0]]
    for g in group_counts:
        s = base.series["sync_max"][g]
        rows.append([g, round(s, 3),
                     round(100 * base.series["sync_share"][g], 1),
                     round(base_sync / s if s > 0 else float("inf"), 2)])
    return FigureResult(
        figure="Figure 8",
        title=f"Reduction of synchronization cost ({nprocs} procs)",
        headers=["groups", "sync max (s)", "sync %", "reduction vs G=1"],
        rows=rows,
        series=base.series,
        notes="paper: sync falls in absolute value and share until "
              "over-partitioning",
    )


# ---------------------------------------------------------------------------
# Figure 9 — scalability of the best ParColl vs baseline
# ---------------------------------------------------------------------------
def fig09_scalability(procs: Sequence[int] = (32, 64, 128, 256),
                      scale: str = "small",
                      groups_for: Optional[Callable[[int], list]] = None,
                      collective_mode: str = "analytic",
                      executor: Optional[ExperimentExecutor] = None
                      ) -> FigureResult:
    """Best-ParColl vs baseline tile-IO write bandwidth vs process count.

    The paper plots the *best* ParColl point per process count; we try a
    couple of group-count candidates (around P/32 and P/16 — staying at
    or below the tile grid's row count keeps the partition direct) and
    keep the winner.  ``collective_mode`` selects the fidelity backend
    ('analytic', 'detailed', 'hybrid[:<spec>]'); the analytic/hybrid
    backends are what make the large-rank end of this sweep affordable.
    The whole (process count x variant) grid evaluates as one executor
    batch — with ``jobs=N`` the candidates run concurrently.
    """
    groups_for = groups_for or (
        lambda p: sorted({max(2, p // 32), max(2, p // 16)}))
    ex = executor or default_executor()
    grid: list[tuple[int, Optional[int]]] = []  # (procs, ngroups|None)
    tasks = []
    for p in procs:
        wl_b = _tile_cfg(scale, hints={"protocol": "ext2ph"})
        grid.append((p, None))
        tasks.append(ExperimentTask(
            _platform(p, collective_mode=collective_mode), "tile_io", wl_b))
        for g in groups_for(p):
            wl_p = _tile_cfg(scale, hints={"protocol": "parcoll",
                                           "parcoll_ngroups": g})
            grid.append((p, g))
            tasks.append(ExperimentTask(
                _platform(p, collective_mode=collective_mode), "tile_io",
                wl_p))
    results = ex.run_many(tasks)
    baseline: dict[int, RunResult] = {}
    candidates: dict[int, list[tuple[int, RunResult]]] = {}
    for (p, g), res in zip(grid, results):
        if g is None:
            baseline[p] = res
        else:
            candidates.setdefault(p, []).append((g, res))
    rows = []
    series: dict[str, dict[int, float]] = {"baseline": {}, "parcoll": {}}
    for p in procs:
        best_g, best_bw = None, -1.0
        for g, res_p in candidates.get(p, []):
            bw = mb_per_s(res_p.write_bandwidth)
            if bw > best_bw:
                best_g, best_bw = g, bw
        b, q = mb_per_s(baseline[p].write_bandwidth), best_bw
        series["baseline"][p] = b
        series["parcoll"][p] = q
        rows.append([p, best_g, round(b, 0), round(q, 0),
                     round(100 * q / b, 0) if b else float("inf")])
    return FigureResult(
        figure="Figure 9",
        title="Improved scalability of MPI-Tile-IO (collective write)",
        headers=["procs", "groups", "Cray MB/s", "ParColl MB/s",
                 "ParColl % of Cray"],
        rows=rows,
        series=series,
        notes="paper: 416% at 1024 processes (11.4 vs 2.7 GB/s); gap widens "
              "with scale",
    )


# ---------------------------------------------------------------------------
# Figure 10 — BT-IO
# ---------------------------------------------------------------------------
def fig10_btio(procs: Sequence[int] = (16, 64, 144, 256),
               scale: str = "small",
               ngroups: Optional[Callable[[int], int]] = None,
               executor: Optional[ExperimentExecutor] = None
               ) -> FigureResult:
    """BT-IO full-mode write bandwidth, ParColl vs baseline, vs procs.

    Class-C-like strong scaling: a *fixed* solution array is dumped
    repeatedly while the solver computes between dumps (with per-rank
    imbalance).  Bandwidth is over the summed I/O-operation time, like
    the benchmark reports.
    """
    ngroups = ngroups or (lambda p: max(2, p // 16))
    # a FIXED solution volume (strong scaling, like class C's 170 MB/dump):
    # growing the grid with the scale would flip the workload into a
    # bandwidth-bound regime the real benchmark is not in.
    # 144 is divisible by q = 4, 8, 12, 16 and 24 (procs up to 576).
    grid = 144
    nsteps = 10 if scale == "paper" else 6
    ex = executor or default_executor()
    tasks = []
    for p in procs:
        common = dict(grid_points=grid, nsteps=nsteps,
                      compute_seconds=0.05, compute_jitter=0.03)
        base = BTIOConfig(hints={"protocol": "ext2ph"}, **common)
        pc = BTIOConfig(hints={"protocol": "parcoll",
                               "parcoll_ngroups": ngroups(p)}, **common)
        tasks.append(ExperimentTask(_platform(p), "btio", base))
        tasks.append(ExperimentTask(_platform(p), "btio", pc))
    results = ex.run_many(tasks)
    rows = []
    series: dict[str, dict[int, float]] = {"baseline": {}, "parcoll": {}}
    for i, p in enumerate(procs):
        res_b, res_p = results[2 * i], results[2 * i + 1]
        b = mb_per_s(res_b.io_phase_bandwidth)
        q = mb_per_s(res_p.io_phase_bandwidth)
        series["baseline"][p] = b
        series["parcoll"][p] = q
        rows.append([p, ngroups(p), round(b, 0), round(q, 0),
                     round(100 * q / b, 0) if b else float("inf")])
    return FigureResult(
        figure="Figure 10",
        title="BT-IO (full mode) write bandwidth, intermediate file views",
        headers=["procs", "groups", "Cray MB/s", "ParColl MB/s",
                 "ParColl % of Cray"],
        rows=rows,
        series=series,
        notes="paper: ParColl wins at scale with an interior optimum in "
              "process count; the pattern requires intermediate file views",
    )


# ---------------------------------------------------------------------------
# Figure 11 — Flash I/O
# ---------------------------------------------------------------------------
def fig11_flashio(nprocs: int = 64, ngroups: int = 8,
                  scale: str = "small",
                  executor: Optional[ExperimentExecutor] = None
                  ) -> FigureResult:
    """Flash checkpoint bandwidth: baseline vs ParColl, default and
    reduced aggregator counts, plus the non-collective disaster case."""
    if scale == "paper":
        # the paper's 24 unknowns; block volume scaled so that the
        # sync:io ratio at this process count matches the 1024-process,
        # 32^3-block regime the paper measures (growing only the per-rank
        # volume drowns the protocol effect in raw OST capacity)
        fcfg = dict(nxb=16, nyb=16, nzb=16, blocks_per_proc=20, nvars=24)
    else:
        fcfg = dict(nxb=16, nyb=16, nzb=16, blocks_per_proc=16, nvars=12)
    reduced_aggs = max(4, nprocs // 16)
    variants = [
        ("Cray (default aggs)", {"protocol": "ext2ph"}),
        (f"ParColl-{ngroups} (default aggs)",
         {"protocol": "parcoll", "parcoll_ngroups": ngroups}),
        (f"Cray ({reduced_aggs} aggs)",
         {"protocol": "ext2ph", "cb_nodes": reduced_aggs}),
        (f"ParColl-{ngroups} ({reduced_aggs} aggs)",
         {"protocol": "parcoll", "parcoll_ngroups": ngroups,
          "cb_nodes": reduced_aggs}),
        ("Cray w/o Coll", {"protocol": "independent"}),
    ]
    ex = executor or default_executor()
    results = ex.run_many([
        ExperimentTask(_platform(nprocs), "flash_io",
                       FlashIOConfig(hints=hints, **fcfg))
        for _name, hints in variants
    ])
    rows = []
    series: dict[str, float] = {}
    for (name, _hints), res in zip(variants, results):
        bw = mb_per_s(res.write_bandwidth)
        series[name] = bw
        rows.append([name, round(bw, 0),
                     round(res.breakdown["sync"]["max"], 2)])
    return FigureResult(
        figure="Figure 11",
        title=f"Flash I/O checkpoint write bandwidth ({nprocs} procs)",
        headers=["variant", "MB/s", "sync max (s)"],
        rows=rows,
        series=series,
        notes="paper: +38.5% for ParColl-64 at 1024 procs; non-collective "
              "I/O collapses to ~60 MB/s",
    )


# ---------------------------------------------------------------------------
# Protocol zoo — leaderboard across every registered protocol
# ---------------------------------------------------------------------------
def fig_protocol_zoo(nprocs: int = 16, scale: str = "small",
                     max_evals: int = 6,
                     executor: Optional[ExperimentExecutor] = None
                     ) -> FigureResult:
    """Leaderboard: every registered collective protocol raced across the
    workload patterns, tunable protocols golden-section tuned, with the
    advisor's per-pattern pick (see :mod:`repro.analysis.protocol_zoo`)."""
    from repro.analysis.protocol_zoo import protocol_zoo

    board = protocol_zoo(nprocs=nprocs, scale=scale, max_evals=max_evals,
                         executor=executor)
    rows = []
    for e in board.entries:
        pick = board.picks.get(e.pattern)
        rows.append([e.pattern, e.label,
                     " ".join(f"{k}={v}" for k, v in e.hints.items()),
                     round(e.write_mb_s, 1), round(e.read_mb_s, 1),
                     round(100 * e.sync_share, 1),
                     "best" if pick is e else ""])
    return FigureResult(
        figure="Protocol zoo",
        title=f"collective-protocol leaderboard ({nprocs} procs)",
        headers=["pattern", "protocol", "hints", "write MB/s", "read MB/s",
                 "sync %", "pick"],
        rows=rows,
        series={"leaderboard": board.to_dict()},
        notes="tunable protocols (parcoll, nodeagg+fa) enter at their "
              "golden-section-tuned group count",
    )
