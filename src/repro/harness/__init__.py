"""Experiment harness: build a simulated platform, run a workload, report.

:mod:`repro.harness.runner` assembles machine + network + Lustre + MPI-IO
from an :class:`ExperimentConfig` and runs a workload program on every
rank, returning aggregate bandwidth and the per-category time breakdown.
:mod:`repro.harness.figures` defines one experiment per paper figure;
:mod:`repro.harness.report` renders paper-style text tables.
"""

from repro.harness.runner import ExperimentConfig, RunResult, run_experiment
from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    RunCache, register_workload)
from repro.harness.fault_sweep import FAULT_CLASSES, fault_sweep
from repro.harness.report import (breakdown_table, format_table, mb_per_s,
                                  run_report)
from repro.harness.sweep import Sweep, SweepPoint

__all__ = [
    "ExperimentConfig",
    "ExperimentExecutor",
    "ExperimentTask",
    "FAULT_CLASSES",
    "RunCache",
    "RunResult",
    "fault_sweep",
    "register_workload",
    "run_experiment",
    "breakdown_table",
    "format_table",
    "mb_per_s",
    "run_report",
    "Sweep",
    "SweepPoint",
]
