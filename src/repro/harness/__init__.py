"""Experiment harness: build a simulated platform, run a workload, report.

:mod:`repro.harness.runner` assembles machine + network + Lustre + MPI-IO
from an :class:`ExperimentConfig` and runs a workload program on every
rank, returning aggregate bandwidth and the per-category time breakdown.
:mod:`repro.harness.figures` defines one experiment per paper figure;
:mod:`repro.harness.report` renders paper-style text tables.
"""

from repro.harness.runner import ExperimentConfig, RunResult, run_experiment
from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    RunCache, register_workload)
from repro.harness.report import format_table, mb_per_s
from repro.harness.sweep import Sweep, SweepPoint

__all__ = [
    "ExperimentConfig",
    "ExperimentExecutor",
    "ExperimentTask",
    "RunCache",
    "RunResult",
    "register_workload",
    "run_experiment",
    "format_table",
    "mb_per_s",
    "Sweep",
    "SweepPoint",
]
