"""Parallel experiment execution with a persistent on-disk run cache.

The paper's methodology is one large parameter sweep after another —
process counts, group counts, stripe settings — and every point is an
independent, deterministic simulation.  This module exploits that:

:class:`ExperimentTask`
    a *picklable* descriptor of one experiment point: an
    :class:`~repro.harness.runner.ExperimentConfig` plus the registered
    name of a workload program and its (picklable) workload config.
    Platform and program are constructed *inside the worker*, so
    generator closures never cross a process boundary.
:class:`RunCache`
    a content-addressed on-disk store of :class:`RunResult` objects
    under ``benchmarks/.runcache/``, keyed by a SHA-256 of the
    experiment config, the workload descriptor, and a hash of the
    package source (the *code version*) — so repeated sweeps
    (golden-section probes, report re-assembly, CI re-runs) skip
    already-computed points, and any code change invalidates every
    entry automatically.
:class:`ExperimentExecutor`
    evaluates batches of tasks, optionally over a process pool
    (``jobs=N``), with order-stable result merging and failure
    propagation that surfaces the worker's original traceback.
    ``jobs=1`` (the default) runs inline and preserves serial behavior
    exactly; results are bit-identical either way because every run is
    a deterministic simulation.

``ExperimentExecutor.from_env()`` honors ``REPRO_JOBS`` (worker count)
and ``REPRO_RUNCACHE`` (``0`` disables the cache;  a path overrides the
cache directory), which is how the benchmark harness and the figure
functions pick up parallelism without plumbing flags everywhere.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import traceback
from dataclasses import dataclass, field, fields, is_dataclass, replace
from functools import partial
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import ConfigError
from repro.harness.runner import (ExperimentConfig, Program, RunResult,
                                  run_experiment)

# ---------------------------------------------------------------------------
# workload-factory registry
# ---------------------------------------------------------------------------
#: name -> program function ``fn(workload_config, comm, io)`` (or
#: ``fn(comm, io)`` for configless programs submitted with
#: ``workload_config=None``)
_WORKLOADS: dict[str, Callable] = {}
_BUILTINS_REGISTERED = False


def register_workload(name: str, program_fn: Callable) -> None:
    """Register ``program_fn`` so tasks can name it across processes.

    ``program_fn(workload_config, comm, io)`` must be an importable
    module-level callable (a worker process resolves it by name through
    this registry after importing the module that registers it).
    """
    if not callable(program_fn):
        raise ConfigError(f"workload factory {name!r} must be callable")
    _WORKLOADS[name] = program_fn


def workload_factory(name: str) -> Callable:
    """Resolve a registered workload-factory name."""
    _ensure_builtins()
    fn = _WORKLOADS.get(name)
    if fn is None:
        raise ConfigError(
            f"unknown workload factory {name!r}; registered: "
            f"{', '.join(sorted(_WORKLOADS)) or '<none>'}"
        )
    return fn


def available_workloads() -> tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_WORKLOADS))


def _ensure_builtins() -> None:
    """Register the paper's workload programs on first use.

    Done lazily (not at import) so ``repro.harness`` does not pull every
    workload module in; a worker process triggers the same registration
    when it resolves its first task.
    """
    global _BUILTINS_REGISTERED
    if _BUILTINS_REGISTERED:
        return
    _BUILTINS_REGISTERED = True
    from repro.workloads import (btio_program, flash_io_program, ior_program,
                                 tile_io_program)

    register_workload("tile_io", tile_io_program)
    register_workload("ior", ior_program)
    register_workload("btio", btio_program)
    register_workload("flash_io", flash_io_program)


# ---------------------------------------------------------------------------
# content hashing
# ---------------------------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """A JSON-serializable canonical form of configs for hashing."""
    if is_dataclass(obj) and not isinstance(obj, type):
        body = {f.name: _canonical(getattr(obj, f.name)) for f in fields(obj)}
        return {"__dataclass__": type(obj).__qualname__, **body}
    if isinstance(obj, dict):
        return {"__dict__": sorted(
            (str(k), _canonical(v)) for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (type(None), bool, int, float, str)):
        return obj
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    # last resort: a stable repr (configs are dataclasses in practice)
    return repr(obj)


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Part of every cache key, so *any* change to the package invalidates
    the whole run cache — coarse, but sound: a simulation result can
    depend on any module.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _CODE_VERSION = h.hexdigest()
    return _CODE_VERSION


# ---------------------------------------------------------------------------
# task descriptor
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentTask:
    """One picklable experiment point: platform config + workload name.

    ``workload`` names a factory registered with
    :func:`register_workload`; ``workload_config`` is that program's
    (picklable) config dataclass, or ``None`` for programs taking only
    ``(comm, io)``.  The worker rebuilds the program as
    ``partial(factory, workload_config)`` — no closures are shipped.
    """

    config: ExperimentConfig
    workload: str
    workload_config: Any = None

    def program(self) -> Program:
        fn = workload_factory(self.workload)
        if self.workload_config is None:
            return fn
        return partial(fn, self.workload_config)

    def cache_key(self) -> str:
        """Content hash of (config, workload descriptor, code version).

        The config's ``faults`` field is normalized through
        :meth:`~repro.faults.FaultPlan.coerce` first, so the spellings of
        one platform (``None``, an empty :class:`FaultPlan`, an empty
        event mapping) share a key.  A validating config additionally
        hashes the oracle version: bumping ``ORACLE_VERSION`` re-runs
        every *validated* point without touching unvalidated entries,
        and a cached unvalidated result is never returned for a
        ``--validate`` request (``validate`` is itself part of the
        config hash).
        """
        from repro.faults import FaultPlan

        config = _canonical(self.config)
        plan = FaultPlan.coerce(self.config.faults)
        config["faults"] = None if plan.is_empty else _canonical(plan.to_dict())
        payload = {
            "config": config,
            "workload": self.workload,
            "workload_config": _canonical(self.workload_config),
            "code": code_version(),
        }
        if self.config.validate:
            from repro.validate import ORACLE_VERSION

            payload["oracle"] = ORACLE_VERSION
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    def run(self) -> RunResult:
        """Run this point inline (used by workers and the serial path)."""
        return run_experiment(self.config, self.program())


# ---------------------------------------------------------------------------
# the run cache
# ---------------------------------------------------------------------------
def default_cache_dir() -> pathlib.Path:
    """``$REPRO_RUNCACHE`` if it names a path, else ``benchmarks/.runcache``
    at the repo root (derived from the package location)."""
    env = os.environ.get("REPRO_RUNCACHE", "")
    if env and env not in ("0", "1"):
        return pathlib.Path(env)
    root = pathlib.Path(__file__).resolve().parents[3]
    return root / "benchmarks" / ".runcache"


@dataclass
class CacheStats:
    """Observable counters of one :class:`RunCache` instance.

    ``corrupt`` counts corrupted-entry fallbacks: entries that existed
    on disk but failed to unpickle (truncated write, version skew) and
    were dropped and recomputed.  Every corrupt fallback also counts as
    a miss.  The service ``/metrics`` endpoint and ``run_report`` read
    these same counters.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def to_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def describe(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses, "
                f"{self.stores} stores, {self.corrupt} corrupt drops")


class RunCache:
    """Content-addressed pickle store of :class:`RunResult` objects.

    Entries are immutable: the key already encodes everything the result
    depends on (config, workload, code version), so there is no
    staleness to manage — only garbage to clear (:meth:`clear`, or just
    delete the directory).  Corrupted entries (truncated writes, version
    skew) are treated as misses and deleted; writes are atomic
    (temp file + :func:`os.replace`), so concurrent workers can share
    one cache directory safely.

    ``stats`` holds the instance's :class:`CacheStats` (hit / miss /
    store / corrupt-fallback counters).
    """

    def __init__(self, root: Optional[os.PathLike | str] = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        self._broken = False  # set when the directory is unwritable

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # corrupted entry: drop it and recompute
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if not isinstance(result, RunResult):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        if self._broken:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.stores += 1
        except OSError:
            # read-only checkout, full disk, ...: degrade to compute-only
            self._broken = True

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ---------------------------------------------------------------------------
# failure propagation
# ---------------------------------------------------------------------------
class RemoteTraceback(Exception):
    """Carries a worker's formatted traceback as the ``__cause__`` of the
    re-raised original exception, so the failure site in the worker is
    visible from the parent's stack trace."""

    def __init__(self, tb: str):
        self.tb = tb
        super().__init__(f"\n--- traceback from worker process ---\n{tb}")


def _execute_task(task: ExperimentTask):
    """Pool entry point: run one task, shipping failures as data."""
    try:
        return True, task.run()
    except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
        tb = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return False, (exc, tb)


def _reraise(exc: BaseException, tb: str) -> None:
    exc.__cause__ = RemoteTraceback(tb)
    raise exc


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------
class ExperimentExecutor:
    """Evaluate independent experiment points, in parallel and/or cached.

    ``jobs`` is the process-pool width; ``1`` (default) runs every task
    inline in submission order — exactly the pre-existing serial
    behavior.  ``cache`` is ``True`` (default cache directory),
    ``False`` (always recompute), or a ready :class:`RunCache`.

    :meth:`run_many` is deterministic and order-stable: the returned
    list is index-aligned with the submitted tasks regardless of worker
    completion order, and identical tasks inside one batch are computed
    once.
    """

    def __init__(self, jobs: int = 1,
                 cache: bool | RunCache = True,
                 cache_dir: Optional[os.PathLike | str] = None,
                 validate: bool = False):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: force the correctness oracle on for every submitted config
        self.validate = bool(validate)
        if isinstance(cache, RunCache):
            self.cache: Optional[RunCache] = cache
        elif cache:
            self.cache = RunCache(cache_dir)
        else:
            self.cache = None

    @classmethod
    def from_env(cls, **overrides: Any) -> "ExperimentExecutor":
        """Build from ``REPRO_JOBS`` / ``REPRO_RUNCACHE`` / ``REPRO_VALIDATE``.

        ``REPRO_JOBS=N`` sets the pool width (default 1);
        ``REPRO_RUNCACHE=0`` disables the on-disk cache, any other value
        is a cache-directory override (see :func:`default_cache_dir`);
        ``REPRO_VALIDATE=1`` runs every point under the correctness
        oracle (workers inherit the environment, so the per-platform
        default applies there too — setting ``validate`` here keeps the
        cache keys honest about it).
        """
        from repro.validate import env_validate_enabled

        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = max(1, int(raw)) if raw else 1
        except ValueError:
            raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}")
        kwargs: dict[str, Any] = {
            "jobs": jobs,
            "cache": os.environ.get("REPRO_RUNCACHE", "").strip() != "0",
            "validate": env_validate_enabled(),
        }
        kwargs.update(overrides)
        return cls(**kwargs)

    # -- single point -----------------------------------------------------
    def run(self, task: ExperimentTask) -> RunResult:
        return self.run_many([task])[0]

    # -- batches ----------------------------------------------------------
    def run_many(self, tasks: Sequence[ExperimentTask] | Iterable[ExperimentTask]
                 ) -> list[RunResult]:
        tasks = list(tasks)
        for t in tasks:
            if not isinstance(t, ExperimentTask):
                raise ConfigError(
                    f"run_many takes ExperimentTask descriptors, got "
                    f"{type(t).__name__} (wrap configs + registered "
                    "workload names; closures cannot cross processes)"
                )
            workload_factory(t.workload)  # fail fast on unknown names
        if self.validate:
            tasks = [t if t.config.validate
                     else replace(t, config=replace(t.config, validate=True))
                     for t in tasks]
        results: list[Optional[RunResult]] = [None] * len(tasks)

        # keys serve both the disk cache and in-batch deduplication
        keys = [t.cache_key() for t in tasks]
        todo: dict[str, int] = {}  # key -> first index computing it
        for i, (t, key) in enumerate(zip(tasks, keys)):
            if key in todo:
                continue
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            todo[key] = i

        if todo:
            computed = self._compute([tasks[i] for i in todo.values()])
            for key, result in zip(todo, computed):
                if self.cache is not None:
                    self.cache.put(key, result)
        else:
            computed = []
        by_key = dict(zip(todo, computed))
        for i, key in enumerate(keys):
            if results[i] is None:
                results[i] = by_key[key]
        return results  # type: ignore[return-value]

    def _compute(self, tasks: list[ExperimentTask]) -> list[RunResult]:
        if self.jobs == 1 or len(tasks) == 1:
            return [t.run() for t in tasks]
        import concurrent.futures as cf

        out: list[Optional[RunResult]] = [None] * len(tasks)
        workers = min(self.jobs, len(tasks))
        with cf.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_execute_task, t): i
                       for i, t in enumerate(tasks)}
            for fut in cf.as_completed(futures):
                ok, value = fut.result()
                if not ok:
                    exc, tb = value
                    # cancel what has not started; finish the batch fast
                    for pending in futures:
                        pending.cancel()
                    _reraise(exc, tb)
                out[futures[fut]] = value
        return out  # type: ignore[return-value]


def default_executor() -> ExperimentExecutor:
    """The environment-configured executor (fresh each call, so tests and
    benchmarks can flip ``REPRO_JOBS`` between invocations)."""
    return ExperimentExecutor.from_env()
