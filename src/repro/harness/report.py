"""Plain-text report rendering in the paper's units (MB/s, percent)."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def mb_per_s(bytes_per_s: float) -> float:
    """Bytes/second to the paper's MB/s (10^6, as IOR reports)."""
    return bytes_per_s / 1e6


def pct(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"


def format_cell(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:,.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4g}"
    return str(v)


def breakdown_table(breakdown: dict, title: str | None = None) -> str:
    """Per-category time table from a :func:`summarize` breakdown.

    Shows the operation count next to the times — 'fault_retry 0.31s'
    is unreadable without knowing it took 14 lost RPCs to get there.
    """
    headers = ["category", "max (s)", "mean (s)", "sum (s)", "count"]
    rows = [
        [cat,
         v.get("max", 0.0), v.get("mean", 0.0), v.get("sum", 0.0),
         int(v.get("count", 0))]
        for cat, v in sorted(breakdown.items())
    ]
    return format_table(headers, rows, title=title)


def run_report(result: Any, title: str | None = None,
               cache: Any = None) -> str:
    """One run's summary: bandwidth, platform counters, full breakdown.

    ``result`` is a :class:`~repro.harness.runner.RunResult`; the
    breakdown table includes per-category operation counts.  ``cache``
    is an optional :class:`~repro.harness.parallel.RunCache` (or its
    ``CacheStats``) whose hit/miss/store/corrupt counters are appended —
    the same counters the service ``/metrics`` endpoint exposes.
    """
    cfg = result.config
    lines = [title or f"run: {cfg.nprocs} procs, backend {result.backend}"]
    lines.append(f"  write bandwidth: {mb_per_s(result.write_bandwidth):,.1f}"
                 f" MB/s   elapsed: {result.elapsed_total:.4g} s")
    lines.append(f"  events: {result.events:,}   "
                 f"messages: {result.messages:,}")
    perf = getattr(result, "perf", None)
    if perf is not None:
        lines.append("  sim perf: " + "   ".join(
            f"{label} {value}" for label, value in perf.lines()))
    if cache is not None:
        stats = getattr(cache, "stats", cache)
        lines.append(f"  run cache: {stats.describe()}")
    validation = getattr(result, "validation", None)
    if validation is not None:
        checks = validation.get("checks", {})
        nviol = len(validation.get("violations", []))
        state = "OK" if not nviol else f"{nviol} VIOLATION(S)"
        lines.append(f"  validation {state}: "
                     f"{sum(checks.values())} checks "
                     f"({', '.join(f'{k} x{v}' for k, v in sorted(checks.items())) or 'none ran'})")
    lines.append(breakdown_table(result.breakdown))
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str | None = None) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    srows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
