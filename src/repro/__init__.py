"""repro — ParColl: Partitioned Collective I/O on a simulated Cray XT.

A from-scratch reproduction of Yu & Vetter, "ParColl: Partitioned
Collective I/O on the Cray XT" (ICPP 2008): a deterministic simulation of
the machine (nodes, SeaStar-like network, Lustre-like storage), an MPI
with real matching semantics, MPI-IO with the extended two-phase
collective protocol, and ParColl itself — plus the paper's workloads,
benchmarks for every figure, and analysis tooling.

Start with :mod:`repro.harness` (run experiments), :mod:`repro.mpiio`
(drive the I/O API directly), or ``python -m repro.cli figure 7``.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
