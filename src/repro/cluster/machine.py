"""Nodes, cores, and rank-to-node mappings.

The Cray XT schedules one single-threaded process per core (Catamount has
no threads), and the batch system maps MPI ranks onto nodes either in
*block* order (consecutive ranks share a node) or *cyclic* order (rank i
lands on node ``i % nnodes``).  ParColl's aggregator-distribution rules
(Section 4.2 of the paper) are stated in terms of this mapping, so the
machine model exposes it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.errors import ConfigError

Mapping = Literal["block", "cyclic"]


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated machine.

    Defaults approximate a Jaguar (Cray XT4) partition: dual-core compute
    PEs, one NIC per node.
    """

    nprocs: int = 8
    cores_per_node: int = 2
    mapping: Mapping = "block"

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ConfigError(f"nprocs must be positive, got {self.nprocs}")
        if self.cores_per_node <= 0:
            raise ConfigError(
                f"cores_per_node must be positive, got {self.cores_per_node}"
            )
        if self.mapping not in ("block", "cyclic"):
            raise ConfigError(f"unknown mapping {self.mapping!r}")

    @property
    def nnodes(self) -> int:
        return -(-self.nprocs // self.cores_per_node)


class Machine:
    """Resolved machine: rank→node table and its inverse."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.nprocs = config.nprocs
        self.nnodes = config.nnodes
        self.node_of = compute_mapping(config.nprocs, config.cores_per_node,
                                       config.mapping)
        # inverse: node -> sorted ranks
        order = np.argsort(self.node_of, kind="stable")
        self._ranks_by_node: list[np.ndarray] = [
            order[self.node_of[order] == n] for n in range(self.nnodes)
        ]

    def node_of_rank(self, rank: int) -> int:
        if not 0 <= rank < self.nprocs:
            raise ConfigError(f"rank {rank} out of range [0, {self.nprocs})")
        return int(self.node_of[rank])

    def ranks_on_node(self, node: int) -> list[int]:
        if not 0 <= node < self.nnodes:
            raise ConfigError(f"node {node} out of range [0, {self.nnodes})")
        return [int(r) for r in self._ranks_by_node[node]]

    def colocated(self, rank_a: int, rank_b: int) -> bool:
        """True when both ranks run on the same physical node."""
        return self.node_of_rank(rank_a) == self.node_of_rank(rank_b)


def compute_mapping(nprocs: int, cores_per_node: int, mapping: Mapping) -> np.ndarray:
    """Return the rank→node array for the given mapping scheme.

    block:  ranks 0..c-1 on node 0, c..2c-1 on node 1, ...
    cyclic: rank i on node i % nnodes.
    """
    nnodes = -(-nprocs // cores_per_node)
    ranks = np.arange(nprocs)
    if mapping == "block":
        return ranks // cores_per_node
    elif mapping == "cyclic":
        return ranks % nnodes
    raise ConfigError(f"unknown mapping {mapping!r}")
