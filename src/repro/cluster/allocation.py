"""Node allocation: where a job's nodes land on the torus.

Batch schedulers rarely hand out a geometrically compact partition; the
hop distance between a job's nodes depends on the allocation policy.
With per-hop latency enabled, placement becomes visible to collectives
and to the exchange phase of collective I/O.

Policies:

* ``linear`` — node *i* of the job is torus slot *i* (the default and the
  Cray XT's typical contiguous allocation);
* ``compact`` — fill a near-cubic sub-block of the torus (best case);
* ``scattered`` — a seeded random permutation of slots (fragmented
  machine, worst case).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Torus3D
from repro.errors import ConfigError


def allocate(policy: str, nnodes: int, topology: Torus3D,
             seed: int = 0) -> np.ndarray:
    """Return ``slot[node]`` — the torus slot of each job node."""
    if nnodes <= 0:
        raise ConfigError("nnodes must be positive")
    if topology.nnodes < nnodes:
        raise ConfigError(
            f"torus has {topology.nnodes} slots for {nnodes} nodes"
        )
    if policy == "linear":
        return np.arange(nnodes, dtype=np.int64)
    if policy == "scattered":
        rng = np.random.Generator(np.random.PCG64(seed))
        return rng.permutation(topology.nnodes)[:nnodes].astype(np.int64)
    if policy == "compact":
        return _compact_slots(nnodes, topology)
    raise ConfigError(f"unknown allocation policy {policy!r}")


def _compact_slots(nnodes: int, topology: Torus3D) -> np.ndarray:
    """Slots of a near-cubic sub-block, in x-fastest order."""
    x, y, z = topology.dims
    side = max(1, round(nnodes ** (1.0 / 3.0)))
    bx = min(x, side)
    by = min(y, max(1, -(-nnodes // (bx * min(z, side)))))
    by = min(y, by if bx * by * min(z, side) >= nnodes else y)
    slots: list[int] = []
    for cz in range(z):
        for cy in range(y):
            for cx in range(bx):
                if cy >= by:
                    continue
                slots.append(cx + cy * x + cz * x * y)
                if len(slots) == nnodes:
                    return np.array(slots, dtype=np.int64)
    # block too small (clamped dims): fall back to filling linearly
    extra = [s for s in range(topology.nnodes) if s not in set(slots)]
    slots.extend(extra[: nnodes - len(slots)])
    return np.array(slots, dtype=np.int64)


def average_pairwise_hops(slots: np.ndarray, topology: Torus3D,
                          sample: int = 512, seed: int = 0) -> float:
    """Mean hop distance between random node pairs under this allocation."""
    n = slots.size
    if n < 2:
        return 0.0
    rng = np.random.Generator(np.random.PCG64(seed))
    total = 0.0
    count = min(sample, n * (n - 1))
    for _ in range(count):
        a, b = rng.integers(0, n, size=2)
        while b == a:
            b = rng.integers(0, n)
        total += topology.hops(int(slots[a]), int(slots[b]))
    return total / count
