"""LogGP-style interconnect model with per-NIC serialization.

Each node owns a full-duplex NIC modeled as two FIFO resources (transmit
and receive).  A message charges its byte volume on the sender's TX
resource and, pipelined behind the wire latency, on the receiver's RX
resource — so an isolated message costs ``o + L + n/BW`` while fan-in to
one node (the incast an I/O aggregator experiences during the exchange
phase) and fan-out from one node both serialize on the shared link.

Intra-node transfers (Catamount delivers user-space to user-space without
kernel buffering) bypass the NIC and cost a memcpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.topology import Torus3D
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.resources import FIFOResource


@dataclass(frozen=True)
class NetworkParams:
    """Interconnect cost parameters (defaults approximate SeaStar)."""

    #: one-way wire latency, seconds
    latency: float = 6.0e-6
    #: NIC link bandwidth, bytes/second (~2 GB/s SeaStar injection)
    bandwidth: float = 2.0e9
    #: per-message send-side CPU/NIC overhead, seconds
    send_overhead: float = 1.0e-6
    #: per-message receive-side overhead, seconds
    recv_overhead: float = 1.0e-6
    #: intra-node copy bandwidth, bytes/second
    memcpy_bandwidth: float = 3.0e9
    #: messages at or below this size use the eager protocol
    eager_threshold: int = 65536
    #: extra latency per torus hop (0 disables topology sensitivity)
    hop_latency: float = 0.0

    def __post_init__(self) -> None:
        if min(self.latency, self.send_overhead, self.recv_overhead,
               self.hop_latency) < 0:
            raise ConfigError("network latencies/overheads must be >= 0")
        if self.bandwidth <= 0 or self.memcpy_bandwidth <= 0:
            raise ConfigError("network bandwidths must be > 0")
        if self.eager_threshold < 0:
            raise ConfigError("eager_threshold must be >= 0")

    def memcpy_time(self, nbytes: int) -> float:
        return nbytes / self.memcpy_bandwidth


class NetworkModel:
    """Owns the per-node NIC resources and computes message timings."""

    def __init__(self, engine: Engine, machine: Machine,
                 params: Optional[NetworkParams] = None,
                 topology: Optional[Torus3D] = None,
                 node_slots=None):
        self.engine = engine
        self.machine = machine
        self.params = params or NetworkParams()
        self.topology = topology
        #: optional node -> torus-slot mapping (allocation policy)
        self.node_slots = node_slots
        if topology is not None and topology.nnodes < machine.nnodes:
            raise ConfigError(
                f"torus has {topology.nnodes} slots for {machine.nnodes} nodes"
            )
        if node_slots is not None and len(node_slots) < machine.nnodes:
            raise ConfigError("node_slots must cover every node")
        p = self.params
        self.tx = [
            FIFOResource(engine, f"nic-tx-{n}", rate=p.bandwidth,
                         overhead=p.send_overhead)
            for n in range(machine.nnodes)
        ]
        self.rx = [
            FIFOResource(engine, f"nic-rx-{n}", rate=p.bandwidth,
                         overhead=p.recv_overhead)
            for n in range(machine.nnodes)
        ]
        self.messages_sent = 0
        self.bytes_sent = 0
        #: messages that actually crossed the interconnect (not memcpy)
        self.cross_node_messages = 0
        self.cross_node_bytes = 0
        # hot-path caches: plain-python rank->node table (numpy scalar
        # extraction is ~10x a list index) and the flat-latency flag
        self._node_of = [int(n) for n in machine.node_of]
        self._flat_wire = topology is None or p.hop_latency <= 0

    def wire_latency(self, src_node: int, dst_node: int) -> float:
        lat = self.params.latency
        if self.topology is not None and self.params.hop_latency > 0:
            a, b = src_node, dst_node
            if self.node_slots is not None:
                a, b = int(self.node_slots[a]), int(self.node_slots[b])
            lat += self.params.hop_latency * self.topology.hops(a, b)
        return lat

    def transfer(self, src_rank: int, dst_rank: int, nbytes: int) -> tuple[float, float]:
        """Reserve resources for a message; returns ``(sender_free, arrival)``.

        ``sender_free`` is when the sending CPU may proceed (data handed to
        the NIC / copied locally); ``arrival`` is when the payload is fully
        available at the receiver.  Non-blocking: callers sleep as their
        protocol requires.
        """
        self.messages_sent += 1
        self.bytes_sent += nbytes
        node_of = self._node_of
        src_node = node_of[src_rank]
        dst_node = node_of[dst_rank]
        now = self.engine.now
        p = self.params
        if src_node == dst_node:
            done = now + p.send_overhead + nbytes / p.memcpy_bandwidth
            return done, done
        self.cross_node_messages += 1
        self.cross_node_bytes += nbytes
        tx = self.tx[src_node]
        rx = self.rx[dst_node]
        if tx.profile is None and rx.profile is None:
            # inlined FIFOResource.reserve_span (nominal-speed path);
            # the arithmetic matches it bit for bit, including reporting
            # the span start as done - stime
            busy = tx.busy_until
            start = now if now > busy else busy
            stime = tx.overhead + nbytes / tx.rate
            tx_done = start + stime
            tx.busy_time += stime
            tx.busy_until = tx_done
            tx.total_bytes += nbytes
            tx.total_requests += 1
            tx_start = tx_done - stime
            if self._flat_wire:
                first_byte = tx_start + p.latency
            else:
                first_byte = tx_start + self.wire_latency(src_node, dst_node)
            busy = rx.busy_until
            start = first_byte if first_byte > busy else busy
            stime = rx.overhead + nbytes / rx.rate
            arrival = start + stime
            rx.busy_time += stime
            rx.busy_until = arrival
            rx.total_bytes += nbytes
            rx.total_requests += 1
            return tx_done, arrival
        tx_start, tx_done = tx.reserve_span(now, nbytes)
        if self._flat_wire:
            first_byte = tx_start + p.latency
        else:
            first_byte = tx_start + self.wire_latency(src_node, dst_node)
        arrival = rx.reserve_span(first_byte, nbytes)[1]
        return tx_done, arrival

    def transfer_batch(self, src_rank: int, dst_ranks, sizes
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Reserve resources for N messages from one sender, in issue order.

        Batched counterpart of :meth:`transfer` for a round whose message
        set is known up-front: returns ``(sender_frees, arrivals)``
        float64 arrays, bit-identical to N scalar :meth:`transfer` calls
        in the same order.  The sender's TX NIC serializes the whole
        batch as one :meth:`~repro.sim.resources.FIFOResource.reserve_batch`
        chain; receiver RX NICs are reserved per destination node in
        issue order (distinct resources, so regrouping cannot reorder any
        FIFO chain).  Intra-node messages stay pure memcpy formulas.
        """
        node_of = self._node_of
        src_node = node_of[src_rank]
        dst_nodes = np.array([node_of[d] for d in dst_ranks], dtype=np.int64)
        n = int(dst_nodes.size)
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        self.messages_sent += n
        self.bytes_sent += int(sizes_arr.sum())
        now = self.engine.now
        p = self.params
        frees = np.empty(n, np.float64)
        arrivals = np.empty(n, np.float64)
        local = dst_nodes == src_node
        if local.any():
            done = now + p.send_overhead + sizes_arr[local] / p.memcpy_bandwidth
            frees[local] = done
            arrivals[local] = done
        if not local.all():
            idx = np.flatnonzero(~local)
            rsizes = sizes_arr[idx]
            self.cross_node_messages += int(idx.size)
            self.cross_node_bytes += int(rsizes.sum())
            tx = self.tx[src_node]
            tx_starts, tx_dones = tx.reserve_batch(
                np.full(idx.size, now), rsizes)
            if self._flat_wire:
                first_bytes = tx_starts + p.latency
            else:
                first_bytes = tx_starts + np.array(
                    [self.wire_latency(src_node, int(dn))
                     for dn in dst_nodes[idx]])
            frees[idx] = tx_dones
            rnodes = dst_nodes[idx]
            for dn in np.unique(rnodes):
                sel = np.flatnonzero(rnodes == dn)
                _, arr = self.rx[int(dn)].reserve_batch(
                    first_bytes[sel], rsizes[sel])
                arrivals[idx[sel]] = arr
        return frees, arrivals

    def point_to_point_time(self, nbytes: int) -> float:
        """Uncontended one-way message time (used by analytic collectives)."""
        p = self.params
        return p.send_overhead + p.latency + p.recv_overhead + nbytes / p.bandwidth
