"""3-D torus topology helpers (SeaStar-style interconnect).

Jaguar's SeaStar network is a 3-D torus.  The cost model treats the
network as distance-mostly-flat (wormhole routing makes per-hop cost
small), but an optional per-hop latency term lets experiments probe
topology sensitivity.  Hop counts are computed analytically; a networkx
graph construction is provided for cross-validation in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Torus3D:
    """A ``dims[0] x dims[1] x dims[2]`` torus of nodes."""

    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.dims) != 3 or any(d <= 0 for d in self.dims):
            raise ConfigError(f"invalid torus dims {self.dims}")

    @property
    def nnodes(self) -> int:
        x, y, z = self.dims
        return x * y * z

    @classmethod
    def fit(cls, nnodes: int) -> "Torus3D":
        """Smallest near-cubic torus with at least ``nnodes`` slots."""
        if nnodes <= 0:
            raise ConfigError(f"nnodes must be positive, got {nnodes}")
        side = max(1, round(nnodes ** (1.0 / 3.0)))
        # grow dims one axis at a time until the torus is large enough
        dims = [side, side, side]
        axis = 0
        while dims[0] * dims[1] * dims[2] < nnodes:
            dims[axis] += 1
            axis = (axis + 1) % 3
        return cls(tuple(dims))  # type: ignore[arg-type]

    def coords(self, node: int) -> tuple[int, int, int]:
        if not 0 <= node < self.nnodes:
            raise ConfigError(f"node {node} out of range [0, {self.nnodes})")
        x, y, z = self.dims
        return (node % x, (node // x) % y, node // (x * y))

    def hops(self, a: int, b: int) -> int:
        """Minimal hop count between nodes ``a`` and ``b`` on the torus."""
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for d, (pa, pb) in zip(self.dims, zip(ca, cb)):
            delta = abs(pa - pb)
            total += min(delta, d - delta)
        return total

    def diameter(self) -> int:
        return sum(d // 2 for d in self.dims)

    def average_hops_estimate(self) -> float:
        """Expected hop count between uniform random node pairs (exact per axis)."""
        total = 0.0
        for d in self.dims:
            # mean wrap-around distance on a ring of size d
            dists = [min(k, d - k) for k in range(d)]
            total += sum(dists) / d
        return total

    def to_networkx(self):  # pragma: no cover - exercised in tests only
        """Build the torus as a networkx graph (for validation)."""
        import networkx as nx

        g = nx.Graph()
        x, y, z = self.dims
        for n in range(self.nnodes):
            cx, cy, cz = self.coords(n)
            for dx, dy, dz in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
                nxt = (((cx + dx) % x) + ((cy + dy) % y) * x
                       + ((cz + dz) % z) * x * y)
                g.add_edge(n, nxt)
        return g
