"""Cray XT machine model: nodes, process mappings, interconnect.

The machine model carries exactly the structure ParColl's mechanisms are
defined over: physical nodes with multiple cores (Jaguar's dual-core PEs),
the block/cyclic rank-to-node mappings of Figure 5, per-node NIC resources
(SeaStar analog), and a LogGP-style network cost model.
"""

from repro.cluster.allocation import allocate, average_pairwise_hops
from repro.cluster.machine import Machine, MachineConfig
from repro.cluster.network import NetworkModel, NetworkParams
from repro.cluster.topology import Torus3D

__all__ = [
    "allocate",
    "average_pairwise_hops",
    "Machine",
    "MachineConfig",
    "NetworkModel",
    "NetworkParams",
    "Torus3D",
]
