"""Derived-datatype constructors (MPI chapter 4 analogs).

Displacement conventions follow MPI: ``Vector``/``Indexed`` count strides
and displacements in *extents of the old type*; the ``H`` variants count
bytes.  ``Subarray`` uses C (row-major) or Fortran (column-major) order
and — as MPI requires for file views — has the extent of the *full* array,
so tiling the filetype walks the global array.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.flatten import Segments, replicate
from repro.errors import DatatypeError


class Contiguous(Datatype):
    """``count`` back-to-back copies of ``oldtype``."""

    __slots__ = ("count", "oldtype")

    def __init__(self, count: int, oldtype: Datatype):
        if count < 0:
            raise DatatypeError(f"count must be >= 0, got {count}")
        super().__init__(size=count * oldtype.size, extent=count * oldtype.extent)
        self.count = count
        self.oldtype = oldtype

    def _build_segments(self) -> Segments:
        disps = np.arange(self.count, dtype=np.int64) * self.oldtype.extent
        return replicate(self.oldtype.segments(), disps)


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` oldtypes, stride in oldtype extents."""

    __slots__ = ("count", "blocklength", "stride", "oldtype")

    def __init__(self, count: int, blocklength: int, stride: int,
                 oldtype: Datatype):
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be >= 0")
        size = count * blocklength * oldtype.size
        if count == 0 or blocklength == 0:
            extent = 0
        else:
            # span from the first block's lb to the last block's ub
            first = 0
            last = (count - 1) * stride * oldtype.extent + blocklength * oldtype.extent
            lo = min(first, (count - 1) * stride * oldtype.extent)
            extent = max(last, blocklength * oldtype.extent) - lo
        super().__init__(size=size, extent=extent)
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.oldtype = oldtype

    def _build_segments(self) -> Segments:
        block = Contiguous(self.blocklength, self.oldtype)
        disps = (np.arange(self.count, dtype=np.int64)
                 * self.stride * self.oldtype.extent)
        if disps.size and disps.min() < 0:
            disps = disps - disps.min()  # negative strides: shift to lb 0
        return replicate(block.segments(), disps)


class HVector(Datatype):
    """Like :class:`Vector` but with the stride given in bytes."""

    __slots__ = ("count", "blocklength", "stride_bytes", "oldtype")

    def __init__(self, count: int, blocklength: int, stride_bytes: int,
                 oldtype: Datatype):
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be >= 0")
        size = count * blocklength * oldtype.size
        if count == 0 or blocklength == 0:
            extent = 0
        else:
            last = (count - 1) * stride_bytes + blocklength * oldtype.extent
            lo = min(0, (count - 1) * stride_bytes)
            extent = max(last, blocklength * oldtype.extent) - lo
        super().__init__(size=size, extent=extent)
        self.count = count
        self.blocklength = blocklength
        self.stride_bytes = stride_bytes
        self.oldtype = oldtype

    def _build_segments(self) -> Segments:
        block = Contiguous(self.blocklength, self.oldtype)
        disps = np.arange(self.count, dtype=np.int64) * self.stride_bytes
        if disps.size and disps.min() < 0:
            disps = disps - disps.min()
        return replicate(block.segments(), disps)


class Indexed(Datatype):
    """Blocks of varying length at displacements in oldtype extents."""

    __slots__ = ("blocklengths", "displacements", "oldtype")

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int],
                 oldtype: Datatype):
        bl = np.asarray(blocklengths, dtype=np.int64)
        dis = np.asarray(displacements, dtype=np.int64)
        if bl.shape != dis.shape:
            raise DatatypeError("blocklengths/displacements length mismatch")
        if bl.size and bl.min() < 0:
            raise DatatypeError("blocklengths must be >= 0")
        size = int(bl.sum()) * oldtype.size
        if bl.size:
            ub = int((dis + bl).max()) * oldtype.extent
            lb = int(dis.min()) * oldtype.extent
            extent = ub - min(lb, 0) if lb >= 0 else ub - lb
        else:
            extent = 0
        super().__init__(size=size, extent=extent)
        self.blocklengths = bl
        self.displacements = dis
        self.oldtype = oldtype

    def _build_segments(self) -> Segments:
        old = self.oldtype
        if old.is_contiguous:
            # fast path: each block is one run
            offs = self.displacements * old.extent
            lens = self.blocklengths * old.size
            base = min(0, int(offs.min())) if offs.size else 0
            return offs - base, lens
        parts_o, parts_l = [], []
        for bl, dis in zip(self.blocklengths, self.displacements):
            block = Contiguous(int(bl), old)
            o, l = block.segments()
            parts_o.append(o + dis * old.extent)
            parts_l.append(l)
        if not parts_o:
            return (np.empty(0, np.int64), np.empty(0, np.int64))
        offs = np.concatenate(parts_o)
        base = min(0, int(offs.min())) if offs.size else 0
        return offs - base, np.concatenate(parts_l)


class HIndexed(Datatype):
    """Blocks of oldtypes at byte displacements."""

    __slots__ = ("blocklengths", "displacements", "oldtype")

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int],
                 oldtype: Datatype):
        bl = np.asarray(blocklengths, dtype=np.int64)
        dis = np.asarray(displacements, dtype=np.int64)
        if bl.shape != dis.shape:
            raise DatatypeError("blocklengths/displacements length mismatch")
        if bl.size and bl.min() < 0:
            raise DatatypeError("blocklengths must be >= 0")
        size = int(bl.sum()) * oldtype.size
        if bl.size:
            ub = int((dis + bl * oldtype.extent).max())
            lb = min(0, int(dis.min()))
            extent = ub - lb
        else:
            extent = 0
        super().__init__(size=size, extent=extent)
        self.blocklengths = bl
        self.displacements = dis
        self.oldtype = oldtype

    def _build_segments(self) -> Segments:
        old = self.oldtype
        parts_o, parts_l = [], []
        for bl, dis in zip(self.blocklengths, self.displacements):
            block = Contiguous(int(bl), old)
            o, l = block.segments()
            parts_o.append(o + int(dis))
            parts_l.append(l)
        if not parts_o:
            return (np.empty(0, np.int64), np.empty(0, np.int64))
        offs = np.concatenate(parts_o)
        base = min(0, int(offs.min())) if offs.size else 0
        return offs - base, np.concatenate(parts_l)


class Struct(Datatype):
    """Heterogeneous blocks: types at byte displacements."""

    __slots__ = ("blocklengths", "displacements", "types")

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int],
                 types: Sequence[Datatype]):
        if not (len(blocklengths) == len(displacements) == len(types)):
            raise DatatypeError("struct argument length mismatch")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("blocklengths must be >= 0")
        size = sum(b * t.size for b, t, in zip(blocklengths, types))
        if types:
            ub = max(d + b * t.extent
                     for b, d, t in zip(blocklengths, displacements, types))
            lb = min(0, min(displacements))
            extent = ub - lb
        else:
            extent = 0
        super().__init__(size=size, extent=extent)
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)
        self.types = list(types)

    def _build_segments(self) -> Segments:
        parts_o, parts_l = [], []
        for bl, dis, t in zip(self.blocklengths, self.displacements, self.types):
            block = Contiguous(int(bl), t)
            o, l = block.segments()
            parts_o.append(o + int(dis))
            parts_l.append(l)
        if not parts_o:
            return (np.empty(0, np.int64), np.empty(0, np.int64))
        offs = np.concatenate(parts_o)
        base = min(0, int(offs.min())) if offs.size else 0
        return offs - base, np.concatenate(parts_l)


class Subarray(Datatype):
    """An n-dimensional subarray of a global array (MPI_Type_create_subarray).

    ``extent`` covers the *whole* global array, so using the type as an
    MPI-IO filetype tiles the global array exactly — each tile instance
    addresses its own copy of the array.
    """

    __slots__ = ("shape", "subsizes", "starts", "order", "oldtype")

    def __init__(self, shape: Sequence[int], subsizes: Sequence[int],
                 starts: Sequence[int], oldtype: Datatype, order: str = "C"):
        shape = tuple(int(s) for s in shape)
        subsizes = tuple(int(s) for s in subsizes)
        starts = tuple(int(s) for s in starts)
        if not (len(shape) == len(subsizes) == len(starts)) or not shape:
            raise DatatypeError("shape/subsizes/starts must share a nonzero length")
        if order not in ("C", "F"):
            raise DatatypeError(f"order must be 'C' or 'F', got {order!r}")
        for dim, (n, sub, st) in enumerate(zip(shape, subsizes, starts)):
            if n <= 0 or sub < 0 or st < 0 or st + sub > n:
                raise DatatypeError(
                    f"invalid subarray dim {dim}: size {n}, subsize {sub}, start {st}"
                )
        nelems = math.prod(subsizes)
        super().__init__(size=nelems * oldtype.size,
                         extent=math.prod(shape) * oldtype.extent)
        self.shape = shape
        self.subsizes = subsizes
        self.starts = starts
        self.order = order
        self.oldtype = oldtype

    def _build_segments(self) -> Segments:
        old = self.oldtype
        if self.order == "C":
            shape, subsizes, starts = self.shape, self.subsizes, self.starts
        else:  # F order: reverse dims so the fastest axis is last
            shape = self.shape[::-1]
            subsizes = self.subsizes[::-1]
            starts = self.starts[::-1]
        # element strides per dim (in elements of the global array)
        strides = np.ones(len(shape), dtype=np.int64)
        for d in range(len(shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        # runs are contiguous along the last dim
        run_elems = subsizes[-1]
        outer_dims = len(shape) - 1
        if run_elems == 0 or any(s == 0 for s in subsizes):
            return (np.empty(0, np.int64), np.empty(0, np.int64))
        # displacement of every run start: cross-product of outer indices,
        # accumulated by broadcasting (no Python loop over runs)
        run_starts = np.array([starts[-1] * strides[-1]], dtype=np.int64)
        for d in range(outer_dims):
            idx = (starts[d] + np.arange(subsizes[d], dtype=np.int64)) * strides[d]
            run_starts = (run_starts.reshape(-1, 1) + idx.reshape(1, -1)).ravel()
        run_starts.sort()
        if old.is_contiguous:
            offs = run_starts * old.extent
            lens = np.full(run_starts.size, run_elems * old.size, dtype=np.int64)
            return offs, lens
        run = Contiguous(run_elems, old)
        return replicate(run.segments(), run_starts * old.extent)


class Resized(Datatype):
    """Override the extent (and lb) of an existing type (MPI_Type_create_resized)."""

    __slots__ = ("oldtype",)

    def __init__(self, oldtype: Datatype, lb: int, extent: int):
        if extent < 0:
            raise DatatypeError(f"extent must be >= 0, got {extent}")
        super().__init__(size=oldtype.size, extent=extent, lb=lb)
        self.oldtype = oldtype

    def _build_segments(self) -> Segments:
        return self.oldtype.segments()
