"""Datatype base class and primitive types.

A datatype is immutable once constructed.  Its flattened form — the
``(offsets, lengths)`` byte segments of one instance relative to its lower
bound — is computed lazily and cached, since workloads construct one view
type and tile it millions of times.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DatatypeError
from repro.datatypes.flatten import Segments, coalesce


class Datatype:
    """Base class: ``size`` data bytes inside an ``extent``-byte span."""

    __slots__ = ("size", "extent", "lb", "_segments")

    def __init__(self, size: int, extent: int, lb: int = 0):
        if size < 0:
            raise DatatypeError(f"datatype size must be >= 0, got {size}")
        self.size = int(size)
        self.extent = int(extent)
        self.lb = int(lb)
        self._segments: Optional[Segments] = None

    @property
    def ub(self) -> int:
        return self.lb + self.extent

    @property
    def is_contiguous(self) -> bool:
        """True when one instance is a single dense run of bytes."""
        offs, lens = self.segments()
        return offs.size <= 1 and self.size == self.extent

    def segments(self) -> Segments:
        """Flattened data regions of ONE instance, relative to offset 0.

        Cached; canonical (sorted, merged, positive lengths).
        """
        if self._segments is None:
            offs, lens = self._build_segments()
            segs = coalesce(offs, lens)
            if int(segs[1].sum()) != self.size:
                raise DatatypeError(
                    f"{self!r}: flattened bytes {int(segs[1].sum())} != size {self.size}"
                    " (overlapping typemap entries are not supported)"
                )
            self._segments = segs
        return self._segments

    def _build_segments(self) -> Segments:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"{type(self).__name__}(size={self.size}, extent={self.extent}, "
                f"lb={self.lb})")


class Primitive(Datatype):
    """A named fixed-size elementary type (MPI_BYTE, MPI_DOUBLE, ...)."""

    __slots__ = ("name",)

    def __init__(self, name: str, size: int):
        if size <= 0:
            raise DatatypeError(f"primitive size must be positive, got {size}")
        super().__init__(size=size, extent=size)
        self.name = name

    def _build_segments(self) -> Segments:
        return (np.array([0], dtype=np.int64), np.array([self.size], dtype=np.int64))

    def __repr__(self) -> str:
        return f"Primitive({self.name}, {self.size}B)"


BYTE = Primitive("byte", 1)
CHAR = Primitive("char", 1)
INT = Primitive("int", 4)
INT64 = Primitive("int64", 8)
FLOAT = Primitive("float", 4)
DOUBLE = Primitive("double", 8)
