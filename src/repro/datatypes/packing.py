"""Pack/unpack bytes between buffers and segment lists.

``gather_segments`` pulls the bytes a segment list addresses out of a
buffer into one dense array (pack); ``scatter_segments`` pushes dense
bytes back out (unpack).  A vectorized index-building fast path handles
the many-small-segments shape that tiled file views produce; large
segments copy via slices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatatypeError

#: below this mean segment length, build a flat fancy index instead of slicing
_FANCY_THRESHOLD = 512


def _check(buf: np.ndarray, offsets: np.ndarray, lengths: np.ndarray) -> None:
    if buf.dtype != np.uint8 or buf.ndim != 1:
        raise DatatypeError("buffer must be a 1-D uint8 array")
    if offsets.size and int(offsets[-1] + lengths[-1]) > buf.size:
        raise DatatypeError(
            f"segments extend to {int(offsets[-1] + lengths[-1])} beyond "
            f"buffer of {buf.size} bytes"
        )


def _flat_indices(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand segments to a flat byte-index array (vectorized)."""
    total = int(lengths.sum())
    # start-of-segment positions within the dense output
    out_starts = np.zeros(offsets.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=out_starts[1:])
    idx = np.arange(total, dtype=np.int64)
    seg_of = np.repeat(np.arange(offsets.size, dtype=np.int64), lengths)
    return offsets[seg_of] + (idx - out_starts[seg_of])


def gather_segments(buf: np.ndarray, offsets, lengths) -> np.ndarray:
    """Return the bytes of ``buf`` addressed by the segments, densely packed."""
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    _check(buf, offsets, lengths)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.uint8)
    if offsets.size > 4 and total / offsets.size < _FANCY_THRESHOLD:
        return buf[_flat_indices(offsets, lengths)]
    out = np.empty(total, dtype=np.uint8)
    pos = 0
    for off, ln in zip(offsets.tolist(), lengths.tolist()):
        out[pos:pos + ln] = buf[off:off + ln]
        pos += ln
    return out


def scatter_segments(buf: np.ndarray, offsets, lengths, data: np.ndarray) -> None:
    """Write densely-packed ``data`` into ``buf`` at the segment positions."""
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    _check(buf, offsets, lengths)
    total = int(lengths.sum())
    data = np.asarray(data, dtype=np.uint8).ravel()
    if data.size != total:
        raise DatatypeError(
            f"data has {data.size} bytes but segments cover {total}"
        )
    if total == 0:
        return
    if offsets.size > 4 and total / offsets.size < _FANCY_THRESHOLD:
        buf[_flat_indices(offsets, lengths)] = data
        return
    pos = 0
    for off, ln in zip(offsets.tolist(), lengths.tolist()):
        buf[off:off + ln] = data[pos:pos + ln]
        pos += ln
