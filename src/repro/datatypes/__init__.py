"""MPI derived datatypes with vectorized flattening.

MPI-IO expresses non-contiguous file access through *file views* built
from derived datatypes.  This package implements the constructors the
paper's workloads need — contiguous, vector/hvector, indexed/hindexed,
struct, subarray, resized — and flattens every type to a pair of NumPy
``int64`` arrays ``(offsets, lengths)`` describing its data regions within
one extent.  All downstream segment math (view tiling, file-domain
intersection, ParColl file-area partitioning) is array arithmetic on these
flattened forms, never per-segment Python loops.
"""

from repro.datatypes.base import (BYTE, CHAR, DOUBLE, FLOAT, INT, INT64,
                                  Datatype, Primitive)
from repro.datatypes.constructors import (Contiguous, HIndexed, HVector,
                                          Indexed, Resized, Struct, Subarray,
                                          Vector)
from repro.datatypes.flatten import coalesce, validate_segments
from repro.datatypes.packing import gather_segments, scatter_segments

__all__ = [
    "Datatype",
    "Primitive",
    "BYTE",
    "CHAR",
    "INT",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "Contiguous",
    "Vector",
    "HVector",
    "Indexed",
    "HIndexed",
    "Struct",
    "Subarray",
    "Resized",
    "coalesce",
    "validate_segments",
    "gather_segments",
    "scatter_segments",
]
