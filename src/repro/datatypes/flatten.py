"""Segment-array utilities shared by the datatype and I/O layers.

A *segment list* is a pair of equally-sized ``int64`` arrays
``(offsets, lengths)`` with ``lengths > 0``, sorted by offset, and
non-overlapping.  ``coalesce`` additionally guarantees no two segments are
adjacent (they would have been merged) — the canonical form every
flattened datatype is kept in.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatatypeError

Segments = tuple[np.ndarray, np.ndarray]

EMPTY: Segments = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def as_segments(offsets, lengths) -> Segments:
    """Normalize to int64 arrays, dropping zero-length entries."""
    offs = np.asarray(offsets, dtype=np.int64).ravel()
    lens = np.asarray(lengths, dtype=np.int64).ravel()
    if offs.shape != lens.shape:
        raise DatatypeError(
            f"offsets/lengths shape mismatch: {offs.shape} vs {lens.shape}"
        )
    if offs.size and lens.min() < 0:
        raise DatatypeError("negative segment length")
    keep = lens > 0
    if not keep.all():
        offs, lens = offs[keep], lens[keep]
    return offs, lens


def coalesce(offsets, lengths) -> Segments:
    """Sort, merge overlapping/adjacent segments; returns canonical form.

    Vectorized: a segment starts a new *group* when its offset exceeds the
    running maximum end of everything before it.  Overlap is tolerated on
    input (it arises when callers union access ranges) and merged away.
    """
    offs, lens = as_segments(offsets, lengths)
    if offs.size <= 1:
        return offs, lens
    order = np.argsort(offs, kind="stable")
    offs, lens = offs[order], lens[order]
    ends = offs + lens
    # running max of previous ends; group boundary where offset > that max
    prev_max_end = np.maximum.accumulate(ends)
    boundary = np.empty(offs.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = offs[1:] > prev_max_end[:-1]
    group = np.cumsum(boundary) - 1
    ngroups = group[-1] + 1
    out_offs = offs[boundary]
    out_ends = np.zeros(ngroups, dtype=np.int64)
    np.maximum.at(out_ends, group, ends)
    return out_offs, out_ends - out_offs


def validate_segments(offsets, lengths, allow_adjacent: bool = True) -> None:
    """Raise :class:`DatatypeError` unless the pair is a valid segment list."""
    offs, lens = np.asarray(offsets, np.int64), np.asarray(lengths, np.int64)
    if offs.shape != lens.shape or offs.ndim != 1:
        raise DatatypeError("segments must be 1-D arrays of equal shape")
    if offs.size == 0:
        return
    if lens.min() <= 0:
        raise DatatypeError("segment lengths must be positive")
    if np.any(np.diff(offs) < 0):
        raise DatatypeError("segment offsets must be sorted")
    ends = offs[:-1] + lens[:-1]
    if np.any(offs[1:] < ends):
        raise DatatypeError("segments overlap")
    if not allow_adjacent and np.any(offs[1:] == ends):
        raise DatatypeError("segments are adjacent but not merged")


def total_bytes(segments: Segments) -> int:
    return int(segments[1].sum())


def replicate(segments: Segments, displacements) -> Segments:
    """Place a copy of ``segments`` at each displacement, then coalesce.

    The core of datatype composition: child data regions stamped at every
    parent slot.  Fully vectorized via broadcasting.
    """
    offs, lens = segments
    disps = np.asarray(displacements, dtype=np.int64).ravel()
    if offs.size == 0 or disps.size == 0:
        return EMPTY
    new_offs = (disps[:, None] + offs[None, :]).ravel()
    new_lens = np.broadcast_to(lens, (disps.size, lens.size)).ravel()
    return coalesce(new_offs, new_lens)


def slice_by_data(segments: Segments, dlo: int, dhi: int) -> Segments:
    """Sub-segments covering data positions [dlo, dhi) of a segment list.

    The *data position* of a byte is its index in the densely-packed view
    of the segments (segment order).  This is the logical→physical
    translation primitive behind ParColl's intermediate file views.
    """
    offs, lens = segments
    if dlo < 0 or dhi < dlo:
        raise DatatypeError(f"invalid data range [{dlo}, {dhi})")
    if offs.size == 0 or dhi == dlo:
        return EMPTY
    prefix = np.zeros(offs.size + 1, dtype=np.int64)
    np.cumsum(lens, out=prefix[1:])
    total = int(prefix[-1])
    if dhi > total:
        raise DatatypeError(f"data range end {dhi} beyond {total} bytes")
    i0 = int(np.searchsorted(prefix, dlo, side="right") - 1)
    i1 = int(np.searchsorted(prefix, dhi, side="left"))
    out_offs = offs[i0:i1].copy()
    out_lens = lens[i0:i1].copy()
    head_skip = dlo - int(prefix[i0])
    out_offs[0] += head_skip
    out_lens[0] -= head_skip
    tail_cut = int(prefix[i1]) - dhi
    if tail_cut > 0:
        out_lens[-1] -= tail_cut
    keep = out_lens > 0
    return out_offs[keep], out_lens[keep]


def intersect_range(segments: Segments, lo: int, hi: int) -> Segments:
    """Clip a segment list to the half-open byte range [lo, hi)."""
    offs, lens = segments
    if offs.size == 0 or hi <= lo:
        return EMPTY
    ends = offs + lens
    keep = (ends > lo) & (offs < hi)
    offs, ends = offs[keep], ends[keep]
    if offs.size == 0:
        return EMPTY
    clipped_offs = np.maximum(offs, lo)
    clipped_ends = np.minimum(ends, hi)
    return clipped_offs, clipped_ends - clipped_offs
