"""Command-line interface: regenerate figures and inspect the platform.

Usage::

    python -m repro.cli figure 7 [--scale paper]
    python -m repro.cli figure 9 --collective-mode hybrid:sync=analytic
    python -m repro.cli figures            # all of them
    python -m repro.cli calibrate          # platform micro-benchmarks
    python -m repro.cli backends           # collective-fidelity backends
    python -m repro.cli list               # what is available

``--collective-mode`` selects the collective-fidelity backend
('analytic', 'detailed', or 'hybrid[:<cat>=<fidelity>,...]') for the
figures whose sweeps support it; see :mod:`repro.simmpi.backends`.

The same figure definitions back the pytest benchmarks; the CLI is for
interactive exploration without the pytest machinery.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable

from repro.harness import figures

FIGURES: dict[str, Callable] = {
    "1": figures.fig01_collective_wall,
    "2": figures.fig02_breakdown,
    "5": figures.fig05_aggregator_distribution,
    "6": figures.fig06_ior,
    "7": figures.fig07_tileio_groups,
    "8": figures.fig08_sync_reduction,
    "9": figures.fig09_scalability,
    "10": figures.fig10_btio,
    "11": figures.fig11_flashio,
}

#: figures whose functions accept a ``scale`` keyword
_SCALED = {"1", "2", "6", "7", "8", "9", "10", "11"}


def _run_figure(number: str, scale: str, chart: bool = False,
                collective_mode: str | None = None) -> int:
    fn = FIGURES.get(number)
    if fn is None:
        print(f"unknown figure {number!r}; available: "
              f"{', '.join(sorted(FIGURES, key=lambda s: int(s)))}",
              file=sys.stderr)
        return 2
    kwargs = {"scale": scale} if number in _SCALED else {}
    if collective_mode is not None:
        if "collective_mode" not in inspect.signature(fn).parameters:
            print(f"figure {number} does not support --collective-mode",
                  file=sys.stderr)
            return 2
        from repro.errors import MPIError
        from repro.simmpi.backends import resolve_backend

        try:
            resolve_backend(collective_mode)
        except MPIError as exc:
            print(f"bad --collective-mode: {exc}", file=sys.stderr)
            return 2
        kwargs["collective_mode"] = collective_mode
    result = fn(**kwargs)
    print(result.to_table())
    if chart:
        from repro.harness.plots import figure_chart

        print()
        print(figure_chart(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParColl reproduction: regenerate paper figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate one figure")
    p_fig.add_argument("number", help="paper figure number (1..11)")
    p_fig.add_argument("--scale", choices=("small", "paper"),
                       default="small")
    p_fig.add_argument("--chart", action="store_true",
                       help="also render a terminal chart of the series")
    p_fig.add_argument("--collective-mode", default=None, metavar="SPEC",
                       help="collective-fidelity backend for the sweep "
                            "(analytic, detailed, hybrid[:<spec>])")

    p_all = sub.add_parser("figures", help="regenerate every figure")
    p_all.add_argument("--scale", choices=("small", "paper"),
                       default="small")

    sub.add_parser("calibrate", help="run platform micro-benchmarks")
    sub.add_parser("backends", help="list collective-fidelity backends")
    sub.add_parser("list", help="list available figures")

    args = parser.parse_args(argv)
    if args.command == "figure":
        return _run_figure(args.number, args.scale, chart=args.chart,
                           collective_mode=args.collective_mode)
    if args.command == "figures":
        status = 0
        for number in sorted(FIGURES, key=lambda s: int(s)):
            status |= _run_figure(number, args.scale)
            print()
        return status
    if args.command == "calibrate":
        from repro.analysis import calibrate

        print(calibrate().summary())
        return 0
    if args.command == "backends":
        from repro.simmpi.backends import (available_backends,
                                           resolve_backend)

        for name in available_backends():
            print(f"{name:>10}: {resolve_backend(name).describe()}")
        return 0
    if args.command == "list":
        for number in sorted(FIGURES, key=lambda s: int(s)):
            doc = (FIGURES[number].__doc__ or "").strip().splitlines()[0]
            print(f"figure {number:>2}: {doc}")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
