"""Command-line interface: regenerate figures and inspect the platform.

Usage::

    python -m repro.cli figure 7 [--scale paper] [-j 4]
    python -m repro.cli figure 9 --collective-mode hybrid:sync=analytic
    python -m repro.cli figures -j 4        # all of them, 4 workers
    python -m repro.cli calibrate           # platform micro-benchmarks
    python -m repro.cli backends            # collective-fidelity backends
    python -m repro.cli protocols           # collective-I/O protocols
    python -m repro.cli zoo [--nprocs 16]   # protocol leaderboard + advisor
    python -m repro.cli faults classes      # available fault classes
    python -m repro.cli faults sweep straggler [--severities 0.5,0.9]
    python -m repro.cli faults report       # per-class impact comparison
    python -m repro.cli perf profile tileio_detailed [--full] [--top 25]
    python -m repro.cli perf list           # profileable experiments
    python -m repro.cli cache [--clear]     # inspect / clear the run cache
    python -m repro.cli validate differential [--cases 200] [--seed 0]
    python -m repro.cli serve [--port 8642] [--workers 2]   # job server
    python -m repro.cli submit tile_io --nprocs 16 --wait   # one job
    python -m repro.cli jobs [--tenant acme]                # job listing
    python -m repro.cli result j000001 [--wait]             # fetch result
    python -m repro.cli list                # what is available

``--jobs/-j N`` evaluates each figure's experiment grid on an N-worker
process pool (default 1 — serial, results are bit-identical either way);
``--no-cache`` bypasses the persistent run cache under
``benchmarks/.runcache/``.  The ``REPRO_JOBS`` / ``REPRO_RUNCACHE``
environment variables set the defaults (see
:mod:`repro.harness.parallel`).

``--collective-mode`` selects the collective-fidelity backend
('analytic', 'detailed', or 'hybrid[:<cat>=<fidelity>,...]') for the
figures whose sweeps support it; see :mod:`repro.simmpi.backends`.

``--validate`` runs every experiment point under the
:mod:`repro.validate` correctness oracle (``REPRO_VALIDATE=1`` sets the
default); validated and unvalidated runs never share run-cache entries.
``validate differential`` is the standalone generator-fleet gate.

The same figure definitions back the pytest benchmarks; the CLI is for
interactive exploration without the pytest machinery.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Optional

from repro.harness import figures

FIGURES: dict[str, Callable] = {
    "1": figures.fig01_collective_wall,
    "2": figures.fig02_breakdown,
    "5": figures.fig05_aggregator_distribution,
    "6": figures.fig06_ior,
    "7": figures.fig07_tileio_groups,
    "8": figures.fig08_sync_reduction,
    "9": figures.fig09_scalability,
    "10": figures.fig10_btio,
    "11": figures.fig11_flashio,
}

#: figures whose functions accept a ``scale`` keyword
_SCALED = {"1", "2", "6", "7", "8", "9", "10", "11"}


def _make_executor(jobs: Optional[int], no_cache: bool,
                   validate: bool = False):
    """An executor honoring flags first, then the environment."""
    from repro.harness.parallel import ExperimentExecutor

    overrides = {}
    if jobs is not None:
        overrides["jobs"] = jobs
    if no_cache:
        overrides["cache"] = False
    if validate:
        overrides["validate"] = True
    return ExperimentExecutor.from_env(**overrides)


def _run_figure(number: str, scale: str, chart: bool = False,
                collective_mode: str | None = None,
                executor=None) -> int:
    fn = FIGURES.get(number)
    if fn is None:
        print(f"unknown figure {number!r}; available: "
              f"{', '.join(sorted(FIGURES, key=lambda s: int(s)))}",
              file=sys.stderr)
        return 2
    params = inspect.signature(fn).parameters
    kwargs = {"scale": scale} if number in _SCALED else {}
    if executor is not None and "executor" in params:
        kwargs["executor"] = executor
    if collective_mode is not None:
        if "collective_mode" not in params:
            print(f"figure {number} does not support --collective-mode",
                  file=sys.stderr)
            return 2
        from repro.errors import MPIError
        from repro.simmpi.backends import resolve_backend

        try:
            resolve_backend(collective_mode)
        except MPIError as exc:
            print(f"bad --collective-mode: {exc}", file=sys.stderr)
            return 2
        kwargs["collective_mode"] = collective_mode
    result = fn(**kwargs)
    print(result.to_table())
    if chart:
        from repro.harness.plots import figure_chart

        print()
        print(figure_chart(result))
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.harness.fault_sweep import FAULT_CLASSES, fault_sweep

    if args.faults_command == "classes":
        for name in sorted(FAULT_CLASSES):
            fc = FAULT_CLASSES[name]
            sevs = ", ".join(f"{s:g}" for s in fc.severities)
            print(f"{name:>10}: {fc.description}")
            print(f"{'':>10}  severities [{sevs}], probe {fc.probe:g}, "
                  f"collectives {fc.collective_mode}")
        return 0
    executor = _make_executor(args.jobs, args.no_cache, validate=args.validate)
    if args.faults_command == "sweep":
        severities = None
        if args.severities:
            try:
                severities = tuple(float(s)
                                   for s in args.severities.split(","))
            except ValueError:
                print(f"bad --severities {args.severities!r}: expected "
                      "comma-separated numbers", file=sys.stderr)
                return 2
        try:
            result = fault_sweep(args.fault_class, severities=severities,
                                 scale=args.scale,
                                 collective_mode=args.collective_mode,
                                 executor=executor)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.to_table())
        if args.chart:
            from repro.harness.plots import figure_chart

            retained = [k for k in result.series if k.endswith(" retained")]
            print()
            print(figure_chart(result, series_names=retained, logx=False))
        return 0
    if args.faults_command == "report":
        from repro.analysis import fault_impact

        print(fault_impact(scale=args.scale, executor=executor).summary())
        return 0
    return 2  # pragma: no cover


def _run_perf(args: argparse.Namespace) -> int:
    from repro.harness.hotpath import CONFIGS, profile_config

    if args.perf_command == "list":
        for name, builder in sorted(CONFIGS.items()):
            doc = (builder.__doc__ or "").strip().splitlines()[0]
            print(f"{name:>16}: {doc}")
        return 0
    if args.perf_command == "profile":
        if args.experiment not in CONFIGS:
            print(f"unknown experiment {args.experiment!r}; available: "
                  f"{', '.join(sorted(CONFIGS))}", file=sys.stderr)
            return 2
        table, perf = profile_config(args.experiment, smoke=not args.full,
                                     top=args.top, sort=args.sort,
                                     shards=args.shards)
        scale = "full" if args.full else "smoke"
        sharded = f", {args.shards} shards" if args.shards > 1 else ""
        print(f"profile of {args.experiment} ({scale} scale{sharded}, "
              "cProfile overhead included):")
        print(table)
        print("sim perf counters:")
        for label, value in perf.lines():
            print(f"  {label}: {value}")
        return 0
    return 2  # pragma: no cover


def _run_validate(args: argparse.Namespace) -> int:
    from repro.validate.differential import run_differential

    def progress(done: int, total: int) -> None:
        if done % 25 == 0 or done == total:
            print(f"  {done}/{total} cases", file=sys.stderr)

    summary = run_differential(args.cases, seed=args.seed,
                               progress=progress)
    if args.out:
        summary.write_json(args.out)
        print(f"report written to {args.out}")
    print(f"differential: {summary.passed}/{summary.cases} cases passed, "
          f"{summary.checks} oracle/invariant checks, seed {summary.seed}")
    if not summary.ok:
        for failed in summary.failures[:5]:
            print(f"FAILED case: {failed['case']}", file=sys.stderr)
            for item in failed["failures"]:
                print(f"  {item}", file=sys.stderr)
        if len(summary.failures) > 5:
            print(f"... and {len(summary.failures) - 5} more "
                  "(see the JSON report)", file=sys.stderr)
        return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ConfigError
    from repro.service.server import ServiceConfig, serve

    try:
        config = ServiceConfig(
            host=args.host, port=args.port, workers=args.workers,
            max_queue=args.max_queue,
            max_tenant_queue=args.max_tenant_queue,
            cache=not args.no_cache, validate=args.validate,
            pool=args.pool)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def ready(server) -> None:
        print(f"simulation service listening on {server.url} "
              f"({config.workers} {config.pool} workers, "
              f"queue bound {config.max_queue})", file=sys.stderr)

    try:
        asyncio.run(serve(config, ready=ready))
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    except OSError as exc:  # port in use, bad host, ...
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _job_line(job: dict) -> str:
    extra = ""
    if job.get("coalesced_with"):
        extra = f" <- {job['coalesced_with']}"
    return (f"{job['id']}  {job['state']:>7}  {job['source']:>9}  "
            f"tenant={job['tenant']}  {job['workload']}"
            f"/np{job['nprocs']}{extra}")


def _print_result(payload: dict) -> int:
    from repro.harness.report import mb_per_s

    job = payload.get("job", {})
    if payload.get("state") == "failed":
        error = payload.get("error") or {}
        print(f"{job.get('id', '?')} FAILED: "
              f"{error.get('type', '?')}: {error.get('message', '')}",
              file=sys.stderr)
        return 1
    result = payload["result"]
    print(_job_line(job))
    print(f"  write bandwidth: {mb_per_s(result['write_bandwidth']):8.2f} MB/s")
    if result.get("read_bandwidth"):
        print(f"  read bandwidth:  {mb_per_s(result['read_bandwidth']):8.2f} MB/s")
    print(f"  simulated time:  {result['elapsed_total']:.6f} s")
    print(f"  events: {result['events']}, messages: {result['messages']}, "
          f"backend: {result['backend']}")
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import (BackpressureError, ServiceClient,
                                      ServiceError)

    def parse_json_arg(raw: str | None, what: str) -> dict:
        if not raw:
            return {}
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad {what} JSON: {exc}")
        if not isinstance(obj, dict):
            raise ValueError(f"{what} must be a JSON object")
        return obj

    try:
        if args.task_file:
            with open(args.task_file, encoding="utf-8") as fh:
                descriptor = json.load(fh)
            if not isinstance(descriptor, dict):
                raise ValueError("--task-file must hold a JSON object")
        else:
            if not args.workload:
                print("error: pass a workload name or --task-file",
                      file=sys.stderr)
                return 2
            config = parse_json_arg(args.config, "--config")
            if args.nprocs is not None:
                config["nprocs"] = args.nprocs
            if args.shards is not None:
                config["shards"] = args.shards
            descriptor = {"config": config, "workload": args.workload}
            wl = parse_json_arg(args.workload_config, "--workload-config")
            if wl:
                descriptor["workload_config"] = wl
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    client = ServiceClient(args.url)
    try:
        job = client.submit(descriptor, tenant=args.tenant,
                            retries=args.retries)
    except BackpressureError as exc:
        print(f"rejected (backpressure): {exc}; retry after "
              f"{exc.retry_after:g}s", file=sys.stderr)
        return 3
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(_job_line(job))
    if not args.wait:
        return 0
    try:
        return _print_result(client.wait(job["id"], timeout=args.timeout))
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        jobs = client.jobs(args.tenant)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(_job_line(job))
    return 0


def _run_result(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.wait:
            payload = client.wait(args.job_id, timeout=args.timeout)
        else:
            payload = client.result(args.job_id)
    except ServiceError as exc:
        if exc.status == 409:
            state = exc.payload.get("state", "pending")
            print(f"{args.job_id} is still {state} (use --wait)",
                  file=sys.stderr)
            return 3
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return _print_result(payload)


def _add_service_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default="http://127.0.0.1:8642",
                        help="service endpoint "
                             "(default http://127.0.0.1:8642)")


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="evaluate experiment grids on N worker "
                             "processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent run cache "
                             "(benchmarks/.runcache/)")
    parser.add_argument("--validate", action="store_true",
                        help="run every experiment point under the "
                             "correctness oracle (default: $REPRO_VALIDATE)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParColl reproduction: regenerate paper figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate one figure")
    p_fig.add_argument("number", help="paper figure number (1..11)")
    p_fig.add_argument("--scale", choices=("small", "paper"),
                       default="small")
    p_fig.add_argument("--chart", action="store_true",
                       help="also render a terminal chart of the series")
    p_fig.add_argument("--collective-mode", default=None, metavar="SPEC",
                       help="collective-fidelity backend for the sweep "
                            "(analytic, detailed, hybrid[:<spec>])")
    _add_parallel_flags(p_fig)

    p_all = sub.add_parser("figures", help="regenerate every figure")
    p_all.add_argument("--scale", choices=("small", "paper"),
                       default="small")
    _add_parallel_flags(p_all)

    sub.add_parser("calibrate", help="run platform micro-benchmarks")
    sub.add_parser("backends", help="list collective-fidelity backends")
    sub.add_parser("protocols", help="list collective-I/O protocols")

    p_zoo = sub.add_parser(
        "zoo", help="race every protocol, print leaderboard + advisor picks")
    p_zoo.add_argument("--nprocs", type=int, default=16,
                       help="process count (default 16; square counts "
                            "include the BT-IO pattern)")
    p_zoo.add_argument("--scale", choices=("small", "paper"),
                       default="small")
    p_zoo.add_argument("--max-evals", type=int, default=6, metavar="N",
                       help="fresh runs the golden-section tuner may "
                            "spend per tunable protocol (default 6)")
    _add_parallel_flags(p_zoo)

    p_faults = sub.add_parser(
        "faults", help="fault-injection sweeps and impact reports")
    f_sub = p_faults.add_subparsers(dest="faults_command", required=True)
    f_sweep = f_sub.add_parser(
        "sweep", help="degradation curves for one fault class")
    f_sweep.add_argument("fault_class", nargs="?", default="straggler",
                         help="fault class (see 'faults classes'); "
                              "default straggler")
    f_sweep.add_argument("--scale", choices=("small", "paper"),
                         default="small")
    f_sweep.add_argument("--severities", default=None, metavar="S1,S2,...",
                         help="comma-separated severities in [0,1) "
                              "(default: the class's grid)")
    f_sweep.add_argument("--collective-mode", default=None, metavar="SPEC",
                         help="override the class's collective-fidelity "
                              "backend")
    f_sweep.add_argument("--chart", action="store_true",
                         help="also render a terminal chart of the "
                              "retained-speed curves")
    _add_parallel_flags(f_sweep)
    f_report = f_sub.add_parser(
        "report", help="probe every fault class, compare protocol damage")
    f_report.add_argument("--scale", choices=("small", "paper"),
                          default="small")
    _add_parallel_flags(f_report)
    f_sub.add_parser("classes", help="list fault classes")

    p_perf = sub.add_parser(
        "perf", help="profile the simulation core on a hot-path workload")
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    p_profile = perf_sub.add_parser(
        "profile", help="run a named experiment under cProfile")
    p_profile.add_argument("experiment",
                           help="hot-path experiment name (see "
                                "'perf list'): tileio_detailed, "
                                "btio_iview, flash_verified")
    p_profile.add_argument("--full", action="store_true",
                           help="full-size config (default: smoke scale)")
    p_profile.add_argument("--top", type=int, default=25, metavar="N",
                           help="show the N hottest functions (default 25)")
    p_profile.add_argument("--sort", default="cumulative",
                           choices=("cumulative", "tottime", "calls"),
                           help="cProfile sort order")
    p_profile.add_argument("--shards", type=int, default=1, metavar="N",
                           help="partition the run across N engine "
                                "shards (parcoll workloads only; others "
                                "fall back to one engine)")
    perf_sub.add_parser("list", help="list profileable experiments")

    p_cache = sub.add_parser("cache",
                             help="inspect or clear the persistent run cache")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached run result")

    p_val = sub.add_parser(
        "validate", help="correctness-oracle harnesses")
    v_sub = p_val.add_subparsers(dest="validate_command", required=True)
    v_diff = v_sub.add_parser(
        "differential",
        help="run generated cases through every protocol/backend "
             "combination against the golden oracle")
    v_diff.add_argument("--cases", type=int, default=200, metavar="N",
                        help="number of generated cases (default 200)")
    v_diff.add_argument("--seed", type=int, default=0,
                        help="case-generator seed (default 0)")
    v_diff.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here (the CI "
                             "oracle-diff artifact)")

    p_serve = sub.add_parser(
        "serve", help="run the simulation job server (asyncio, HTTP/JSON)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 = ephemeral; default 8642)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="concurrent pool executions (default 2)")
    p_serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                         help="global queue bound before 429s (default 64)")
    p_serve.add_argument("--max-tenant-queue", type=int, default=None,
                         metavar="N",
                         help="per-tenant queue bound (default: --max-queue)")
    p_serve.add_argument("--pool", choices=("process", "thread"),
                         default="process",
                         help="worker pool kind (default process)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the shared run cache")
    p_serve.add_argument("--validate", action="store_true",
                         help="run every job under the correctness oracle")

    p_submit = sub.add_parser(
        "submit", help="submit one simulation job to a running server")
    p_submit.add_argument("workload", nargs="?", default=None,
                          help="registered workload name (tile_io, ior, "
                               "btio, flash_io); or use --task-file")
    p_submit.add_argument("--nprocs", type=int, default=None,
                          help="shorthand for config nprocs")
    p_submit.add_argument("--shards", type=int, default=None, metavar="N",
                          help="shorthand for config shards (sharded "
                               "parallel execution for parcoll workloads)")
    p_submit.add_argument("--config", default=None, metavar="JSON",
                          help="ExperimentConfig fields as a JSON object")
    p_submit.add_argument("--workload-config", default=None, metavar="JSON",
                          help="workload config fields as a JSON object")
    p_submit.add_argument("--task-file", default=None, metavar="PATH",
                          help="full task descriptor JSON file "
                               "(overrides the inline flags)")
    p_submit.add_argument("--tenant", default="default",
                          help="tenant name for fair-share accounting")
    p_submit.add_argument("--retries", type=int, default=0, metavar="N",
                          help="retry a 429 up to N times, honoring "
                               "Retry-After (default 0)")
    p_submit.add_argument("--wait", action="store_true",
                          help="follow the job and print its result")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="--wait bound in seconds (default 600)")
    _add_service_url(p_submit)

    p_jobs = sub.add_parser("jobs", help="list jobs on a running server")
    p_jobs.add_argument("--tenant", default=None,
                        help="only this tenant's jobs")
    _add_service_url(p_jobs)

    p_result = sub.add_parser(
        "result", help="fetch one job's result from a running server")
    p_result.add_argument("job_id")
    p_result.add_argument("--wait", action="store_true",
                          help="block until the job is terminal")
    p_result.add_argument("--timeout", type=float, default=600.0,
                          help="--wait bound in seconds (default 600)")
    _add_service_url(p_result)

    sub.add_parser("list", help="list available figures")

    args = parser.parse_args(argv)
    if args.command == "figure":
        executor = _make_executor(args.jobs, args.no_cache, validate=args.validate)
        return _run_figure(args.number, args.scale, chart=args.chart,
                           collective_mode=args.collective_mode,
                           executor=executor)
    if args.command == "figures":
        executor = _make_executor(args.jobs, args.no_cache, validate=args.validate)
        status = 0
        for number in sorted(FIGURES, key=lambda s: int(s)):
            status |= _run_figure(number, args.scale, executor=executor)
            print()
        return status
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "calibrate":
        from repro.analysis import calibrate

        print(calibrate().summary())
        return 0
    if args.command == "backends":
        from repro.simmpi.backends import (available_backends,
                                           resolve_backend)

        for name in available_backends():
            print(f"{name:>10}: {resolve_backend(name).describe()}")
        return 0
    if args.command == "protocols":
        from repro.mpiio.protocols import (available_protocols,
                                           resolve_protocol)

        for name in available_protocols():
            proto = resolve_protocol(name)
            doc = (type(proto).__doc__ or "").strip().splitlines()[0]
            print(f"{name:>12}: {doc}")
        return 0
    if args.command == "zoo":
        from repro.analysis import protocol_zoo
        from repro.errors import ConfigError

        executor = _make_executor(args.jobs, args.no_cache,
                                  validate=args.validate)
        try:
            board = protocol_zoo(nprocs=args.nprocs, scale=args.scale,
                                 max_evals=args.max_evals,
                                 executor=executor)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(board.summary())
        return 0
    if args.command == "cache":
        from repro.harness.parallel import RunCache

        cache = RunCache()
        if args.clear:
            print(f"removed {cache.clear()} entries from {cache.root}")
        else:
            print(f"run cache: {cache.root}")
            print(f"entries:   {len(cache)}")
        return 0
    if args.command == "validate":
        return _run_validate(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "jobs":
        return _run_jobs(args)
    if args.command == "result":
        return _run_result(args)
    if args.command == "list":
        for number in sorted(FIGURES, key=lambda s: int(s)):
            doc = (FIGURES[number].__doc__ or "").strip().splitlines()[0]
            print(f"figure {number:>2}: {doc}")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
