"""Performance observability for the simulation core.

The hot-path optimizations (engine scheduling fast paths, indexed MPI
matching, vectorized two-phase rounds) are only trustworthy while they
stay *visible*: every run samples cheap counters into a
:class:`PerfStats` so a regression shows up in ``run_report`` and the
``faults report`` CLI, not just in the dedicated benchmarks.

Counter sources:

* the engine counts effects dispatched and scheduler entries by path
  (binary heap vs the same-time ready deque);
* every mailbox counts matches by path (exact ``(ctx, src, tag)`` bucket
  hit vs ordered wildcard scan);
* the two-phase hot loops count segments that went through the
  vectorized gather/scatter and the all-rounds planner (process-global
  :data:`perf_counters`, reset at each sampling point).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional


@dataclass
class PerfStats:
    """Counters sampled from one simulation run."""

    #: host wall-clock seconds spent inside the run (0 when not timed)
    wall_seconds: float = 0.0
    #: total effects the engine dispatched (virtual-work volume)
    effects_dispatched: int = 0
    #: scheduler entries that went through the binary heap
    heap_pushes: int = 0
    #: scheduler entries that took the same-time ready-deque fast path
    heap_bypasses: int = 0
    #: MPI matches resolved via the exact (ctx, src, tag) dict index
    exact_matches: int = 0
    #: MPI matches that consulted the ordered wildcard path
    wildcard_matches: int = 0
    #: segments copied via vectorized gather/scatter (two-phase hot loops)
    segments_vectorized: int = 0
    #: window pieces produced by the all-rounds two-phase planner
    rounds_planned: int = 0
    #: rounds whose message schedule was coalesced into closed form
    macro_rounds: int = 0
    #: per-message simulation steps replaced by macro schedules
    messages_coalesced: int = 0
    #: run-cache counters (populated by batch-level aggregation — the
    #: executor and the service fold :class:`~repro.harness.parallel.
    #: CacheStats` in via :func:`add_cache`; zero on single runs)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_corrupt: int = 0
    #: shard-observability block of a sharded run (None on unsharded
    #: runs): requested/effective shard counts, fallback reason,
    #: synchronization rounds, per-shard event counts, wall and CPU
    #: times, and the load-imbalance ratio (max shard CPU / mean)
    shard: Optional[dict] = None

    def add_cache(self, stats) -> "PerfStats":
        """Fold a :class:`~repro.harness.parallel.CacheStats` in."""
        self.cache_hits += stats.hits
        self.cache_misses += stats.misses
        self.cache_stores += stats.stores
        self.cache_corrupt += stats.corrupt
        return self

    @property
    def events_per_sec(self) -> float:
        """Engine throughput: effects dispatched per host wall second."""
        if self.wall_seconds > 0:
            return self.effects_dispatched / self.wall_seconds
        return 0.0

    def lines(self) -> list[tuple[str, str]]:
        """(label, value) pairs for report rendering."""
        out = []
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "wall_seconds":
                if v:
                    out.append(("wall seconds", f"{v:.3f}"))
                continue
            if f.name == "shard":
                continue  # rendered below from the dict
            if f.name.startswith("cache_") and not v:
                continue  # cache counters only exist on aggregated stats
            out.append((f.name.replace("_", " "), f"{v:,}"))
        if self.wall_seconds > 0:
            out.append(("events per sec", f"{self.events_per_sec:,.0f}"))
        if self.shard:
            sh = self.shard
            out.append(("shards (effective/requested)",
                        f"{sh.get('effective', 1)}/{sh.get('shards', 1)}"))
            if sh.get("fallback_reason"):
                out.append(("shard fallback", str(sh["fallback_reason"])))
            if sh.get("sync_rounds"):
                out.append(("shard sync rounds", f"{sh['sync_rounds']:,}"))
            if "max_shard_wall" in sh:
                out.append(("shard wall max/min",
                            f"{sh['max_shard_wall']:.3f}/"
                            f"{sh['min_shard_wall']:.3f}"))
            if "max_shard_cpu" in sh:
                out.append(("shard cpu max (critical path)",
                            f"{sh['max_shard_cpu']:.3f}"))
            if "load_imbalance" in sh:
                out.append(("shard load imbalance",
                            f"{sh['load_imbalance']:.2f}x"))
        return out


class _HotCounters:
    """Process-global counters for hot paths with no natural handle.

    The two-phase copy/planner helpers are plain functions; threading a
    stats object through every call would cost more than the counting.
    ``sample_and_reset`` is called once per run by the harness, so sweep
    workers (separate processes) never mix counts.
    """

    __slots__ = ("segments_vectorized", "rounds_planned", "macro_rounds",
                 "messages_coalesced")

    def __init__(self) -> None:
        self.segments_vectorized = 0
        self.rounds_planned = 0
        self.macro_rounds = 0
        self.messages_coalesced = 0

    def sample_and_reset(self) -> tuple[int, int, int, int]:
        out = (self.segments_vectorized, self.rounds_planned,
               self.macro_rounds, self.messages_coalesced)
        self.segments_vectorized = 0
        self.rounds_planned = 0
        self.macro_rounds = 0
        self.messages_coalesced = 0
        return out


perf_counters = _HotCounters()


def collect(world, wall_seconds: float = 0.0,
            reset_hot: bool = True) -> PerfStats:
    """Sample a :class:`PerfStats` from a completed (or running) world."""
    eng = world.engine
    exact = 0
    wild = 0
    for proc in world.procs:
        mbox = proc.mailbox
        exact += mbox.exact_matches
        wild += mbox.wildcard_matches
    if reset_hot:
        seg_vec, planned, macro, coalesced = perf_counters.sample_and_reset()
    else:
        seg_vec = perf_counters.segments_vectorized
        planned = perf_counters.rounds_planned
        macro = perf_counters.macro_rounds
        coalesced = perf_counters.messages_coalesced
    return PerfStats(
        wall_seconds=wall_seconds,
        effects_dispatched=eng.effects_dispatched,
        heap_pushes=eng.heap_pushes,
        heap_bypasses=eng.heap_bypasses,
        exact_matches=exact,
        wildcard_matches=wild,
        segments_vectorized=seg_vec,
        rounds_planned=planned,
        macro_rounds=macro,
        messages_coalesced=coalesced,
    )


def merge(stats: "list[PerfStats]") -> PerfStats:
    """Sum counters (and wall seconds) over several runs' stats."""
    out = PerfStats()
    for st in stats:
        if st is None:
            continue
        for f in fields(PerfStats):
            if f.name == "shard":
                continue  # not a counter; carried below
            setattr(out, f.name, getattr(out, f.name) + getattr(st, f.name))
        shard = getattr(st, "shard", None)
        if out.shard is None and shard is not None:
            out.shard = shard
    return out


def profile_experiment(run_fn, top: int = 25,
                       sort: str = "cumulative") -> str:
    """Run ``run_fn()`` under cProfile; returns the formatted top-N table."""
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    run_fn()
    prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats(sort).print_stats(top)
    return buf.getvalue()
