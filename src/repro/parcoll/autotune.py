"""Adaptive group-size selection (the paper's future-work extension).

The paper leaves "adaptively choosing the best group size" to future
work, noting the optimum "is closely correlated with the I/O pattern of a
particular application".  This module implements a first-order chooser
from the quantities the trade-off actually balances:

* **synchronization** falls with the subgroup size (fewer participants
  per collective, less straggler exposure) — pushing toward many groups;
* **aggregation quality** needs each subgroup to keep enough aggregators
  and enough contiguous data per round to produce large, OST-aligned
  writes — pushing toward few groups.

The heuristic: make each subgroup's file area a small integer number of
stripes-per-OST wide (so subgroups do not share OST objects), keep at
least one node's worth of aggregator per group, and never let groups drop
below a handful of members.  It reproduces the *order of magnitude* of
the swept optimum on the paper's workloads (asserted in tests); a sweep
(:mod:`repro.harness.figures.fig07_tileio_groups`) remains the gold
standard.
"""

from __future__ import annotations

from repro.errors import ParCollError


def recommend_groups(extents: list[tuple[int, int, int]], nprocs: int,
                     n_osts: int, stripe_size: int = 4 << 20,
                     min_group_size: int = 4,
                     cb_buffer_size: int = 4 << 20) -> int:
    """Recommend a ParColl subgroup count for the given access pattern.

    ``extents`` is the per-rank ``(lo, hi, nbytes)`` list (what the driver
    allgathers anyway); ``n_osts``/``stripe_size`` describe the target
    file system.
    """
    if nprocs <= 0:
        raise ParCollError("nprocs must be positive")
    active = [(lo, hi, nb) for lo, hi, nb in extents if lo >= 0 and nb > 0]
    if not active:
        return 1
    total_bytes = sum(nb for _, _, nb in active)
    if total_bytes <= 0:
        return 1

    # ceiling 1: groups small enough to matter for sync, but never below
    # min_group_size members
    g_members = max(1, nprocs // min_group_size)

    # ceiling 2: each group's file area should span at least one stripe
    # per OST it will write, so per-round writes stay stripe-sized
    span = (max(hi for _, hi, _ in active)
            - min(lo for lo, _, _ in active))
    g_stripes = max(1, span // (n_osts * stripe_size))

    # ceiling 3: each group needs >= one collective-buffer round of data
    g_rounds = max(1, total_bytes // (len(active) // min_group_size
                                      * cb_buffer_size or 1))

    g = min(g_members, g_stripes, g_rounds)
    # round down to a power of two: subgroup counts interact with the
    # binomial/dissemination collective algorithms
    p2 = 1
    while p2 * 2 <= g:
        p2 *= 2
    return max(1, p2)
