"""The ParColl driver: plan, split, distribute, run ext2ph per subgroup.

Control flow of one partitioned collective call (all ranks of the parent
communicator participate):

1. allgather ``(lo, hi, nbytes)`` access extents ('sync' — one global
   collective, the only one ParColl keeps at full scale);
2. every rank computes the identical :class:`PartitionPlan` from the
   gathered extents (pure function — no further agreement traffic);
3. subgroup communicators come from ``comm.split`` keyed by the plan; they
   are cached on the shared file handle, so a repeated pattern (every
   checkpoint, every BT-IO step) pays the split cost once;
4. the parent's aggregator list (``cb_nodes`` / ``cb_config_ranks`` hints)
   is distributed over subgroups per Section 4.2;
5. each subgroup runs the *unmodified* extended two-phase engine over its
   own File Area — with the intermediate-view translator when the plan
   demands it.

ParColl needs no macro-coalescing code of its own: subgroup
communicators inherit the parent's :class:`CollectiveBackend`, so under
the ``macro`` exchange fidelity the per-subgroup ext2ph shuffle rides
the same batched transfer schedules (``Communicator.isend_batch``) and
macro collective rounds as the flat protocol.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.datatypes.flatten import Segments
from repro.errors import ParCollError
from repro.mpiio.aggregation import default_aggregators
from repro.mpiio.two_phase import IOEnv, collective_read, collective_write
from repro.parcoll.aggregator_dist import distribute_aggregators
from repro.parcoll.intermediate_view import IntermediateView
from repro.parcoll.partition import PartitionPlan, plan_partition
from repro.simmpi.reduce_ops import MAX


def _stale_reason(plan: PartitionPlan, planned: tuple, lo: int, hi: int,
                  nbytes: int) -> Optional[str]:
    """Why a cached grouping no longer matches this access (None = fits).

    Intermediate-view plans require the same per-rank byte counts, and
    direct plans require either unchanged extents or per-rank
    *contiguous* accesses — a contiguous access that merely moved or
    resized regroups safely under the documented rank-monotone contract
    (Flash's successive datasets); a fragmented access whose extents
    drift would silently run every subgroup over a stale File Area
    grouping.
    """
    if plan.uses_intermediate_view:
        if nbytes != planned[2]:
            return ("access size changed under parcoll_replan='once' "
                    "with intermediate file views; set "
                    "parcoll_replan='always' (or 'auto') for "
                    "non-stationary patterns")
        return None
    if (lo, hi, nbytes) != planned:
        held_contig = planned[1] - planned[0] == planned[2]
        now_contig = hi - lo == nbytes or nbytes == 0
        if not (held_contig and now_contig):
            return ("extents of a non-contiguous access changed under "
                    f"parcoll_replan='once' (planned lo/hi/nbytes "
                    f"{planned}, now {(lo, hi, nbytes)}); the cached "
                    "grouping no longer matches the pattern — set "
                    "parcoll_replan='always' (or 'auto') for "
                    "non-stationary patterns")
    return None


def _prepare(env: IOEnv, segs: Segments, cache: dict
             ) -> Generator[Any, Any, tuple]:
    """Phases 1-4; returns (plan, subcomm, sub_hints, iview-or-None).

    With ``parcoll_replan='once'`` (default), the global extent allgather
    and grouping happen only on the first collective call on the file —
    as the paper does at file-view initiation.  Later calls reuse the
    grouping and coordinate purely within subgroups, which is what lets
    subgroups drift apart instead of re-synchronizing globally per call.
    The pattern must stay stationary (see :func:`_stale_reason`);
    fragmented accesses whose extents drift raise :class:`ParCollError`
    instead of silently reusing the stale grouping.

    ``parcoll_replan='auto'`` converts that error into a global re-plan:
    each call runs one tiny agreement allreduce (all ranks must take the
    same branch — drift on *any* rank forces everyone back through the
    extent allgather), so non-stationary patterns work while stationary
    stretches still skip the allgather and regrouping.  The agreement
    collective re-synchronizes the subgroups like 'always' does, which
    is the price of generality — 'once' remains the paper's (and the
    default) behavior.  ``'always'`` re-plans unconditionally.
    """
    comm = env.comm
    offs, lens = segs
    lo = int(offs[0]) if offs.size else -1
    hi = int(offs[-1] + lens[-1]) if offs.size else -1
    nbytes = int(lens.sum())
    replan = env.hints.parcoll_replan
    if replan in ("once", "auto"):
        held = cache.get(("plan", comm.rank))
        if held is not None:
            plan, subcomm, sub_hints, planned = held
            stale = _stale_reason(plan, planned, lo, hi, nbytes)
            reuse = stale is None
            if replan == "auto":
                any_stale = yield from comm.allreduce(
                    0 if reuse else 1, op=MAX, nbytes=4, category="sync")
                reuse = not any_stale
            elif stale is not None:
                raise ParCollError(stale)
            if reuse:
                iview = None
                if plan.uses_intermediate_view:
                    iview = IntermediateView(segs,
                                             plan.logical_prefix[comm.rank])
                return plan, subcomm, sub_hints, iview
            # 'auto' with drift somewhere: fall through to a global re-plan
    extents = yield from comm.allgather((lo, hi, nbytes), category="sync")
    # every rank computes the identical plan from the gathered extents —
    # doing so per rank is quadratic in nprocs, so the first rank through
    # stores the (immutable, shared) plan for the rest
    gkey = ("gplan", env.hints.parcoll_ngroups,
            env.hints.parcoll_intermediate_views, tuple(extents))
    plan = cache.get(gkey)
    if plan is None:
        plan = plan_partition(extents, env.hints.parcoll_ngroups,
                              allow_intermediate=env.hints.parcoll_intermediate_views)
        cache[gkey] = plan
    if env.validator is not None:
        env.validator.check_partition_plan(plan, extents)
    # the cache dict is shared by all ranks of the file, but communicator
    # handles are per-rank objects — key by rank.  Hits and misses stay
    # symmetric across ranks because the plan is a pure function of the
    # allgathered extents.
    key = (plan.cache_key(), comm.rank)
    cached = cache.get(key)
    if cached is None:
        my_group = plan.group_of[comm.rank]
        subcomm = yield from comm.split(color=my_group, category="sync")
        # aggregator distribution is deterministic: all ranks would
        # compute the identical assignment, so only the first one does —
        # the split above stays per-rank (communicator handles are)
        dist_key = ("dist", plan.cache_key())
        dist = cache.get(dist_key)
        if dist is None:
            groups: list[list[int]] = [[] for _ in range(plan.ngroups)]
            for r, g in enumerate(plan.group_of):
                groups[g].append(r)
            parent_aggs = default_aggregators(comm.desc.members, env.machine,
                                              env.hints)
            per_group = distribute_aggregators(groups, parent_aggs,
                                               comm.desc.members, env.machine)
            dist = (groups, parent_aggs, per_group)
            cache[dist_key] = dist
        groups, parent_aggs, per_group = dist
        if env.validator is not None:
            members = comm.desc.members

            def node_of(parent_rank: int) -> int:
                return env.machine.node_of_rank(members[parent_rank])

            agg_nodes = []
            for r in parent_aggs:
                n = node_of(r)
                if n not in agg_nodes:
                    agg_nodes.append(n)
            env.validator.check_aggregator_distribution(
                groups, per_group, agg_nodes, node_of)
        # translate my group's aggregators to subcommunicator ranks
        members_sorted = groups[my_group]
        sub_aggs = tuple(members_sorted.index(r) for r in per_group[my_group])
        sub_hints = env.hints.with_(cb_config_ranks=sub_aggs,
                                    protocol="ext2ph", parcoll_ngroups=1)
        cached = (subcomm, sub_hints)
        cache[key] = cached
    subcomm, sub_hints = cached
    if env.hints.parcoll_replan in ("once", "auto"):
        cache[("plan", comm.rank)] = (plan, subcomm, sub_hints,
                                      (lo, hi, nbytes))
    iview = None
    if plan.uses_intermediate_view:
        iview = IntermediateView(segs, plan.logical_prefix[comm.rank])
        if env.validator is not None:
            env.validator.check_iview_roundtrip(iview)
    return plan, subcomm, sub_hints, iview


def parcoll_write(env: IOEnv, segs: Segments, data: Optional[np.ndarray],
                  cache: dict, view=None) -> Generator[Any, Any, int]:
    """Partitioned collective write; returns bytes written by this rank.

    Under an intermediate view, the grouping came from logical space; the
    exchange itself runs either over the original physical segments
    (default — windows stay dense, writes coalesce) or in logical space
    with sender-side translation (the 'logical' ablation path).
    """
    plan, subcomm, sub_hints, iview = yield from _prepare(env, segs, cache)
    sub_env = IOEnv(comm=subcomm, machine=env.machine, fs=env.fs,
                    lfile=env.lfile, hints=sub_hints, retry=env.retry,
                    validator=env.validator)
    if iview is not None and env.hints.parcoll_data_path == "logical":
        return (yield from collective_write(sub_env, iview.logical_segments,
                                            data, translate=iview.translate))
    return (yield from collective_write(sub_env, segs, data))


def parcoll_read(env: IOEnv, segs: Segments, cache: dict, view=None
                 ) -> Generator[Any, Any, Optional[np.ndarray]]:
    """Partitioned collective read; returns this rank's dense bytes."""
    plan, subcomm, sub_hints, iview = yield from _prepare(env, segs, cache)
    sub_env = IOEnv(comm=subcomm, machine=env.machine, fs=env.fs,
                    lfile=env.lfile, hints=sub_hints, retry=env.retry,
                    validator=env.validator)
    if iview is not None and env.hints.parcoll_data_path == "logical":
        return (yield from collective_read(sub_env, iview.logical_segments,
                                           translate=iview.translate))
    return (yield from collective_read(sub_env, segs))
