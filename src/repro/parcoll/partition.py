"""File Area partitioning: grouping processes and bytes (Section 4.1).

Given every rank's access extent (physical start/end and byte count) and a
requested subgroup count ``G``:

1. ranks are sorted by start offset and greedily packed into ``G``
   byte-balanced groups;
2. each group's File Area is the hull of its members' extents;
3. if the FAs are pairwise disjoint, the pattern partitions *directly*
   (patterns (a)/(b) of Figure 4);
4. otherwise the pattern is (c): the plan switches to an **intermediate
   file view** — the logical file concatenates each rank's access in rank
   order, packing becomes trivial, and FAs are logical byte ranges.

The returned plan is a pure function of the inputs, so every rank computes
the identical plan from the same allgathered extents — no extra
communication is needed to agree on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ParCollError


@dataclass(frozen=True)
class PartitionPlan:
    """The agreed grouping: one entry per rank of the parent communicator."""

    #: subgroup id per rank (0..ngroups-1)
    group_of: tuple[int, ...]
    #: number of (non-empty) subgroups actually formed
    ngroups: int
    #: 'direct' (patterns a/b) or 'intermediate' (pattern c)
    mode: str
    #: per-group File Area [lo, hi) — physical for direct, logical otherwise
    fa_bounds: tuple[tuple[int, int], ...]
    #: logical start offset per rank (intermediate mode only)
    logical_prefix: Optional[tuple[int, ...]] = None

    @property
    def uses_intermediate_view(self) -> bool:
        return self.mode == "intermediate"

    def cache_key(self) -> tuple:
        return (self.group_of, self.mode)


def _greedy_pack(order: list[int], nbytes: list[int], G: int) -> list[int]:
    """Assign sorted ranks to ≤G contiguous groups with ~equal bytes.

    Returns the group id per position in ``order``.  Guarantees group ids
    are contiguous 0..k-1 and non-decreasing along ``order``.
    """
    total = sum(nbytes[r] for r in order)
    if total == 0 or G <= 1:
        return [0] * len(order)
    target = total / G
    gids = []
    cum = 0
    for pos, r in enumerate(order):
        g = min(G - 1, int(cum / target))
        # never leave fewer ranks than remaining groups would need
        g = min(g, pos)
        gids.append(g)
        cum += nbytes[r]
    # renumber to drop any skipped ids
    remap: dict[int, int] = {}
    out = []
    for g in gids:
        if g not in remap:
            remap[g] = len(remap)
        out.append(remap[g])
    return out


def plan_partition(extents: list[tuple[int, int, int]], ngroups: int,
                   allow_intermediate: bool = True) -> PartitionPlan:
    """Compute the ParColl grouping from allgathered ``(lo, hi, nbytes)``.

    ``lo``/``hi`` are the physical extent of each rank's access (``lo=-1``
    for ranks accessing nothing); ``nbytes`` the data volume.  ``ngroups``
    is the requested subgroup count (clamped to the number of active
    ranks).  When the direct FAs intersect and ``allow_intermediate`` is
    false, overlapping groups are merged instead (degrading toward fewer
    groups) — the ablation showing why intermediate views matter.
    """
    if ngroups <= 0:
        raise ParCollError(f"ngroups must be positive, got {ngroups}")
    size = len(extents)
    active = [r for r in range(size) if extents[r][0] >= 0 and extents[r][2] > 0]
    if not active:
        return PartitionPlan(group_of=tuple([0] * size), ngroups=1,
                             mode="direct", fa_bounds=((0, 0),))
    G = min(ngroups, len(active))
    nbytes = [extents[r][2] for r in range(size)]

    # ---- direct attempt: sort by physical start offset -----------------
    order = sorted(active, key=lambda r: (extents[r][0], extents[r][1], r))
    gids_sorted = _greedy_pack(order, nbytes, G)
    group_of = [-1] * size
    for pos, r in enumerate(order):
        group_of[r] = gids_sorted[pos]
    k = max(gids_sorted) + 1
    fa = []
    for g in range(k):
        lo = min(extents[r][0] for r in active if group_of[r] == g)
        hi = max(extents[r][1] for r in active if group_of[r] == g)
        fa.append((lo, hi))
    disjoint = all(fa[g][1] <= fa[g + 1][0] for g in range(k - 1))

    if disjoint:
        _assign_idle(group_of, size, k)
        return PartitionPlan(group_of=tuple(group_of), ngroups=k,
                             mode="direct", fa_bounds=tuple(fa))

    if not allow_intermediate:
        return _merged_plan(extents, group_of, fa, size, active)

    # ---- pattern (c): intermediate file view ---------------------------
    # logical file = per-rank accesses joined in rank order
    prefix = [0] * size
    cum = 0
    for r in range(size):
        prefix[r] = cum
        cum += nbytes[r]
    order = sorted(active)  # logical order is rank order
    gids_sorted = _greedy_pack(order, nbytes, G)
    group_of = [-1] * size
    for pos, r in enumerate(order):
        group_of[r] = gids_sorted[pos]
    k = max(gids_sorted) + 1
    fa = []
    for g in range(k):
        members = [r for r in active if group_of[r] == g]
        lo = min(prefix[r] for r in members)
        hi = max(prefix[r] + nbytes[r] for r in members)
        fa.append((lo, hi))
    _assign_idle(group_of, size, k)
    return PartitionPlan(group_of=tuple(group_of), ngroups=k,
                         mode="intermediate", fa_bounds=tuple(fa),
                         logical_prefix=tuple(prefix))


def _assign_idle(group_of: list[int], size: int, k: int) -> None:
    """Spread ranks with no data round-robin over the groups."""
    nxt = 0
    for r in range(size):
        if group_of[r] < 0:
            group_of[r] = nxt % k
            nxt += 1


def _merged_plan(extents, group_of, fa, size, active) -> PartitionPlan:
    """Merge overlapping direct groups (fallback when views are disabled)."""
    k = len(fa)
    # union-find style sweep: groups sorted by lo; merge while overlapping
    order = sorted(range(k), key=lambda g: fa[g][0])
    merged_id = {}
    cur_id = -1
    cur_hi = None
    for g in order:
        lo, hi = fa[g]
        if cur_hi is None or lo >= cur_hi:
            cur_id += 1
            cur_hi = hi
        else:
            cur_hi = max(cur_hi, hi)
        merged_id[g] = cur_id
    new_of = [merged_id[g] if g >= 0 else -1 for g in group_of]
    nk = cur_id + 1
    new_fa: list[tuple[int, int]] = [(None, None)] * nk  # type: ignore[list-item]
    for r in active:
        g = new_of[r]
        lo, hi = extents[r][0], extents[r][1]
        cl, ch = new_fa[g]
        new_fa[g] = (lo if cl is None else min(cl, lo),
                     hi if ch is None else max(ch, hi))
    _assign_idle(new_of, size, nk)
    return PartitionPlan(group_of=tuple(new_of), ngroups=nk, mode="direct",
                         fa_bounds=tuple(new_fa))
