"""I/O aggregator distribution across subgroups (Section 4.2).

The user (or the default one-per-node rule) supplies a list of aggregator
*processes*; each stands for its physical node.  ParColl must hand these
node slots to subgroups such that:

(a) every subgroup gets at least one aggregator;
(b) no two processes of one physical node aggregate for different
    subgroups — a node slot goes to exactly one subgroup, instantiated as
    that subgroup's member process on the node;
(c) slots are distributed as evenly as the grouping permits.

The algorithm is the paper's: traverse subgroups round-robin; each turn a
subgroup claims the first unassigned aggregator node on which it has a
member, until all slots are assigned.  Requirement (a) is enforced last:
a subgroup left empty-handed (no aggregator node hosts any of its members)
falls back to its lowest-ranked member.

This module reproduces Figure 5's block and cyclic worked examples exactly
(asserted in the test suite).
"""

from __future__ import annotations

from repro.cluster.machine import Machine
from repro.errors import ParCollError


def distribute_aggregators(groups: list[list[int]], agg_ranks: list[int],
                           member_world_ranks: list[int],
                           machine: Machine) -> list[list[int]]:
    """Assign aggregators to subgroups.

    ``groups``: member ranks (parent-communicator ranks) per subgroup;
    ``agg_ranks``: the aggregator list (parent-communicator ranks);
    ``member_world_ranks``: parent rank -> world rank (for node lookup).

    Returns the aggregator ranks (parent-communicator ranks) per subgroup.
    """
    if not groups or any(not g for g in groups):
        raise ParCollError("every subgroup needs at least one member")
    if not agg_ranks:
        raise ParCollError("aggregator list must not be empty")

    def node_of(parent_rank: int) -> int:
        return machine.node_of_rank(member_world_ranks[parent_rank])

    # aggregator node slots, in list order, deduplicated
    slots: list[int] = []
    seen: set[int] = set()
    for r in agg_ranks:
        n = node_of(r)
        if n not in seen:
            seen.add(n)
            slots.append(n)
    members_by_node: list[dict[int, int]] = []
    for g in groups:
        by_node: dict[int, int] = {}
        for r in sorted(g):
            by_node.setdefault(node_of(r), r)
        members_by_node.append(by_node)

    assignment: list[list[int]] = [[] for _ in groups]
    unassigned = list(slots)
    exhausted = [False] * len(groups)
    while unassigned and not all(exhausted):
        for gi in range(len(groups)):
            if not unassigned:
                break
            if exhausted[gi]:
                continue
            for si, node in enumerate(unassigned):
                if node in members_by_node[gi]:
                    assignment[gi].append(members_by_node[gi][node])
                    unassigned.pop(si)
                    break
            else:
                exhausted[gi] = True
    # requirement (a): no subgroup goes without an aggregator
    for gi, aggs in enumerate(assignment):
        if not aggs:
            assignment[gi] = [min(groups[gi])]
    return assignment
