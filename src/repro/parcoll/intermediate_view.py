"""Intermediate file views: logical joining of per-process segments.

For pattern (c) — per-process accesses spread across the whole file —
ParColl runs the partitioned protocol in a *logical* file: each rank's
data bytes are virtually joined into one contiguous logical range
(``[prefix[r], prefix[r] + nbytes[r])``).  Partitioning the logical file
is then the trivial serial pattern (a).

The original (physical) view is still authoritative for the actual file
layout: when a sender's logical window intersection leaves the node, it is
translated back to physical segments with :func:`translate`, which slices
the rank's physical segment list by data position.  Translation preserves
byte counts and data order, so the unmodified two-phase engine handles
the shipped pieces.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.flatten import Segments, slice_by_data
from repro.errors import ParCollError


class IntermediateView:
    """Logical↔physical translation for one rank's access."""

    __slots__ = ("phys_segs", "logical_base", "total")

    def __init__(self, phys_segs: Segments, logical_base: int):
        self.phys_segs = phys_segs
        self.logical_base = int(logical_base)
        self.total = int(phys_segs[1].sum())

    @property
    def logical_segments(self) -> Segments:
        """My access in logical space: exactly one contiguous segment."""
        if self.total == 0:
            return (np.empty(0, np.int64), np.empty(0, np.int64))
        return (np.array([self.logical_base], dtype=np.int64),
                np.array([self.total], dtype=np.int64))

    def translate(self, sub_logical: Segments) -> Segments:
        """Physical segments for a logical sub-range of *my* access.

        ``sub_logical`` must lie within my logical range; the result keeps
        data order (physical offsets are monotone in data position for the
        monotone file views this library supports).
        """
        offs, lens = sub_logical
        if offs.size == 0:
            return sub_logical
        lo = int(offs[0]) - self.logical_base
        hi = int(offs[-1] + lens[-1]) - self.logical_base
        if lo < 0 or hi > self.total:
            raise ParCollError(
                f"logical range [{lo}, {hi}) outside my access of {self.total}B"
            )
        if offs.size != 1:
            # logical access is one contiguous run, so any intersection
            # with a contiguous window is a single segment
            raise ParCollError("logical intersections must be contiguous")
        return slice_by_data(self.phys_segs, lo, hi)
