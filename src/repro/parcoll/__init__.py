"""ParColl: Partitioned Collective I/O (the paper's contribution).

ParColl augments the extended two-phase protocol with three mechanisms:

* **file area partitioning** (:mod:`repro.parcoll.partition`) — processes
  and the file are consistently divided into subgroups owning disjoint,
  load-balanced File Areas; access patterns are classified as directly
  partitionable ((a) serial, (b) groupable tiles) or needing translation
  ((c) interleaved);
* **intermediate file views** (:mod:`repro.parcoll.intermediate_view`) —
  pattern (c) switches to a logical file in which each process's segments
  are virtually joined, making partitioning trivial; logical windows are
  translated back to physical segments sender-side during the exchange;
* **I/O aggregator distribution** (:mod:`repro.parcoll.aggregator_dist`) —
  the round-robin node-slot algorithm of Section 4.2 meeting the paper's
  three requirements (≥1 aggregator per subgroup, no node split across
  subgroups, even distribution).

The driver (:mod:`repro.parcoll.driver`) wires these together: subgroups
are formed with ``comm.split`` (cached across calls) and each runs the
unmodified ext2ph engine over its own file area — so global
synchronization shrinks to subgroup synchronization, breaking the
*collective wall*.
"""

from repro.parcoll.aggregator_dist import distribute_aggregators
from repro.parcoll.driver import parcoll_read, parcoll_write
from repro.parcoll.partition import PartitionPlan, plan_partition

__all__ = [
    "plan_partition",
    "PartitionPlan",
    "distribute_aggregators",
    "parcoll_write",
    "parcoll_read",
]
