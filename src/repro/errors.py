"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A failure inside the discrete-event engine."""


class DeadlockError(SimulationError):
    """The event queue drained while tasks were still blocked.

    Carries the list of blocked task descriptions to make MPI hangs
    (mismatched tags, missing participants in a collective) diagnosable.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        detail = "\n  ".join(self.blocked) or "<no task detail>"
        super().__init__(
            f"simulation deadlock: {len(self.blocked)} task(s) still blocked:\n  {detail}"
        )


class TaskFailedError(SimulationError):
    """A spawned task raised and nobody was joined to observe it.

    ``original`` preserves the underlying exception so entry points (e.g.
    :meth:`repro.simmpi.World.launch`) can re-raise it undecorated.
    """

    def __init__(self, task_name: str, original: BaseException):
        self.task_name = task_name
        self.original = original
        super().__init__(f"task {task_name!r} failed: {original!r}")


class MPIError(ReproError):
    """An MPI semantic violation (bad rank, truncation, invalid comm...)."""


class DatatypeError(ReproError):
    """An invalid derived-datatype construction or use."""


class FileSystemError(ReproError):
    """A simulated-Lustre failure (unknown file, bad extent, ...)."""


class FaultExhaustedError(FileSystemError):
    """An injected RPC fault survived every client retry.

    Raised by the Lustre client's retry loop when ``max_attempts``
    consecutive attempts against one OST failed under the active
    :class:`~repro.faults.FaultPlan`.  Structured so harnesses can report
    *where* and *when* resilience gave out: ``ost`` is the target index,
    ``attempts`` how many RPCs were tried, ``virtual_time`` the simulated
    second at which the final timeout expired.
    """

    def __init__(self, ost: int, attempts: int, virtual_time: float):
        self.ost = int(ost)
        self.attempts = int(attempts)
        self.virtual_time = float(virtual_time)
        super().__init__(
            f"RPC to ost-{self.ost} failed {self.attempts} attempt(s); "
            f"retries exhausted at t={self.virtual_time:.6g}s"
        )

    def __reduce__(self):
        # BaseException.__reduce__ replays args, which for this class is
        # the formatted message, not (ost, attempts, virtual_time) — the
        # default would TypeError on unpickle and take a whole worker
        # pool down with it.
        return (type(self), (self.ost, self.attempts, self.virtual_time))


class MPIIOError(ReproError):
    """An MPI-IO level failure (bad view, access outside view, hints...)."""


class ValidationError(ReproError):
    """A correctness-oracle or runtime-invariant violation.

    Raised by the :mod:`repro.validate` subsystem when a protocol broke
    one of its contracts: the simulated file diverged from the golden
    oracle, a File Area partition failed to tile the file, an
    intermediate-view translation did not round-trip, an aggregator
    distribution violated the paper's placement constraints, or a
    two-phase exchange round lost bytes.  ``check`` names the invariant
    that fired; ``detail`` is machine-readable context for diff
    artifacts.
    """

    def __init__(self, check: str, message: str,
                 detail: "dict | None" = None):
        self.check = str(check)
        self.detail = dict(detail or {})
        super().__init__(f"[{self.check}] {message}")


class ParCollError(ReproError):
    """A ParColl protocol failure (unpartitionable pattern, bad grouping...)."""


class ConfigError(ReproError):
    """An invalid experiment or machine configuration."""


class ShardError(SimulationError):
    """A sharded-run invariant was violated.

    Raised when a shard observes traffic it cannot handle conservatively:
    a point-to-point message crossing a shard boundary, a cross-shard
    collective whose fidelity resolves to a per-message backend, or a
    coordinator round that can make no progress.  Sharded execution is
    only attempted for configurations :func:`repro.shard.analyze`
    declares shardable, so this surfacing at runtime means the shard
    plan and the workload disagree — a bug, not a user error.
    """
