"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A failure inside the discrete-event engine."""


class DeadlockError(SimulationError):
    """The event queue drained while tasks were still blocked.

    Carries the list of blocked task descriptions to make MPI hangs
    (mismatched tags, missing participants in a collective) diagnosable.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        detail = "\n  ".join(self.blocked) or "<no task detail>"
        super().__init__(
            f"simulation deadlock: {len(self.blocked)} task(s) still blocked:\n  {detail}"
        )


class TaskFailedError(SimulationError):
    """A spawned task raised and nobody was joined to observe it.

    ``original`` preserves the underlying exception so entry points (e.g.
    :meth:`repro.simmpi.World.launch`) can re-raise it undecorated.
    """

    def __init__(self, task_name: str, original: BaseException):
        self.task_name = task_name
        self.original = original
        super().__init__(f"task {task_name!r} failed: {original!r}")


class MPIError(ReproError):
    """An MPI semantic violation (bad rank, truncation, invalid comm...)."""


class DatatypeError(ReproError):
    """An invalid derived-datatype construction or use."""


class FileSystemError(ReproError):
    """A simulated-Lustre failure (unknown file, bad extent, ...)."""


class FaultExhaustedError(FileSystemError):
    """An injected RPC fault survived every client retry.

    Raised by the Lustre client's retry loop when ``max_attempts``
    consecutive attempts against one OST failed under the active
    :class:`~repro.faults.FaultPlan`.  Structured so harnesses can report
    *where* and *when* resilience gave out: ``ost`` is the target index,
    ``attempts`` how many RPCs were tried, ``virtual_time`` the simulated
    second at which the final timeout expired.
    """

    def __init__(self, ost: int, attempts: int, virtual_time: float):
        self.ost = int(ost)
        self.attempts = int(attempts)
        self.virtual_time = float(virtual_time)
        super().__init__(
            f"RPC to ost-{self.ost} failed {self.attempts} attempt(s); "
            f"retries exhausted at t={self.virtual_time:.6g}s"
        )


class MPIIOError(ReproError):
    """An MPI-IO level failure (bad view, access outside view, hints...)."""


class ParCollError(ReproError):
    """A ParColl protocol failure (unpartitionable pattern, bad grouping...)."""


class ConfigError(ReproError):
    """An invalid experiment or machine configuration."""
