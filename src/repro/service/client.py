"""A blocking client for the simulation service (stdlib ``http.client``).

One HTTP connection per request (the server speaks ``Connection:
close``), so a single :class:`ServiceClient` is safe to share across
threads — each call opens its own socket.

Backpressure is a first-class outcome, not an exception to hide: a 429
raises :class:`BackpressureError` carrying the server's ``Retry-After``
estimate, and :meth:`ServiceClient.submit` can optionally honor it with
bounded retries.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Iterator, Optional, Union
from urllib.parse import urlencode, urlsplit

from repro.errors import ReproError
from repro.harness.parallel import ExperimentTask
from repro.service.protocol import task_to_dict


class ServiceError(ReproError):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        detail = self.payload.get("error") or self.payload or payload
        super().__init__(f"service returned {status}: {detail}")


class BackpressureError(ServiceError):
    """HTTP 429 — the queue is full; retry after ``retry_after``s."""

    def __init__(self, status: int, payload: Any, retry_after: float):
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServiceClient:
    """Talks to one :class:`~repro.service.server.SimulationServer`."""

    def __init__(self, url: str = "http://127.0.0.1:8642",
                 timeout: float = 120.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8642
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _open(self, method: str, path: str,
              body: Optional[dict] = None) -> tuple[int, Any, HTTPConnection]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        return response.status, response, conn

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Any:
        status, response, conn = self._open(method, path, body)
        try:
            raw = response.read()
        finally:
            conn.close()
        try:
            payload = json.loads(raw.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": raw.decode(errors="replace")}
        if status == 429:
            retry_after = float(response.headers.get(
                "Retry-After", payload.get("retry_after", 1)))
            raise BackpressureError(status, payload, retry_after)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(self, task: Union[ExperimentTask, dict],
               tenant: str = "default", retries: int = 0,
               max_retry_wait: float = 30.0) -> dict:
        """Submit one task; returns the accepted job document.

        ``task`` is an :class:`ExperimentTask` or an already-serialized
        descriptor dict.  With ``retries > 0`` a 429 is retried after
        the server's ``Retry-After`` advice (capped at
        ``max_retry_wait`` per attempt); the final 429 propagates as
        :class:`BackpressureError`.
        """
        descriptor = (task_to_dict(task)
                      if isinstance(task, ExperimentTask) else task)
        body = {"tenant": tenant, "task": descriptor}
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body)["job"]
            except BackpressureError as exc:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(min(exc.retry_after, max_retry_wait))

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self, tenant: Optional[str] = None) -> list[dict]:
        path = "/jobs"
        if tenant is not None:
            path += "?" + urlencode({"tenant": tenant})
        return self._request("GET", path)["jobs"]

    def result(self, job_id: str) -> dict:
        """The terminal outcome: ``{'state', 'result' | 'error', 'job'}``.

        Raises :class:`ServiceError` (409) while the job is still
        queued or running — use :meth:`wait` to block until terminal.
        """
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str,
               follow: bool = True) -> Iterator[dict]:
        """Yield the job's lifecycle events (following until terminal)."""
        path = f"/jobs/{job_id}/events"
        if not follow:
            path += "?follow=0"
        status, response, conn = self._open("GET", path)
        try:
            if status >= 400:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode() or "null")
                except (UnicodeDecodeError, json.JSONDecodeError):
                    payload = {"error": raw.decode(errors="replace")}
                raise ServiceError(status, payload)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> dict:
        """Block until the job is terminal; returns :meth:`result`.

        Follows the event stream (no polling); ``timeout`` bounds the
        total wait.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for event in self.events(job_id):
                if event.get("state") in ("done", "failed"):
                    return self.result(job_id)
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"job {job_id} not terminal after {timeout}s")
            # stream ended without a terminal event (server poll tick or
            # restart of the stream); re-check unless out of time
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout}s")
            state = self.job(job_id)["state"]
            if state in ("done", "failed"):
                return self.result(job_id)
            time.sleep(0.05)

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")
