"""Simulation-as-a-service: an async job server over the experiment pool.

The ROADMAP's serving arc, productized: the picklable
:class:`~repro.harness.parallel.ExperimentTask` descriptors, the
content-addressed :class:`~repro.harness.parallel.RunCache`, and the
``run_many`` process pool already make every simulation a pure,
replayable function of its descriptor — this package puts a long-running
multi-tenant server in front of them (ViPIOS-style: dedicated server
processes mediating every request).  Stdlib only: ``asyncio`` plus a
minimal HTTP/1.0 JSON protocol.

Modules:

:mod:`repro.service.protocol`
    the wire format — descriptor parsing/validation against the
    config/registry machinery, task and result (de)serialization;
:mod:`repro.service.jobs`
    job records, lifecycle states, and the event log each job accretes
    (``queued`` → ``running`` → ``done``/``failed``);
:mod:`repro.service.scheduler`
    bounded per-tenant FIFO queues with least-served-first fair-share
    picking and explicit backpressure (:class:`QueueFullError`);
:mod:`repro.service.metrics`
    service counters: throughput, cache hit/miss/coalesce, per-tenant
    stats, scheduler fairness;
:mod:`repro.service.server`
    the asyncio server: request coalescing (identical in-flight cache
    keys share one execution), shared dedup'd run cache, dispatch into
    the process pool, event streaming, ``/metrics``;
:mod:`repro.service.client`
    a blocking client (``http.client``) for scripts, tests, and the
    ``repro submit|jobs|result`` CLI verbs.

See ``docs/service.md`` for the protocol, tenancy, backpressure
semantics, and failure modes.
"""

from repro.service.client import BackpressureError, ServiceClient, ServiceError
from repro.service.jobs import Job, JobState, JobStore
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (DescriptorError, parse_submit, parse_task,
                                    result_to_dict, task_to_dict)
from repro.service.scheduler import FairScheduler, QueueFullError
from repro.service.server import ServerThread, ServiceConfig, SimulationServer

__all__ = [
    "BackpressureError",
    "DescriptorError",
    "FairScheduler",
    "Job",
    "JobState",
    "JobStore",
    "QueueFullError",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "SimulationServer",
    "parse_submit",
    "parse_task",
    "result_to_dict",
    "task_to_dict",
]
