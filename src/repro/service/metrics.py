"""Service observability: counters behind the ``/metrics`` endpoint.

Three layers fold into one snapshot:

* **service counters** — submissions, completions, failures, 429
  rejections, coalesced requests, per-tenant throughput;
* **run-cache counters** — the shared
  :class:`~repro.harness.parallel.CacheStats` (hit / miss / store /
  corrupt-fallback), the same counters ``run_report`` renders;
* **simulation counters** — a :class:`~repro.perf.PerfStats` aggregate
  merged over every execution the service actually ran (cache hits and
  coalesced jobs add nothing here — that is the point).

Plus queue depths and scheduler fairness sampled live at snapshot time.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Optional

from repro import perf as perf_mod
from repro.perf import PerfStats


class ServiceMetrics:
    """Counters for one server instance (single-threaded: the asyncio
    loop owns every mutation)."""

    _COUNTERS = ("submitted", "accepted", "completed", "failed", "rejected",
                 "coalesced", "cache_hits", "executions",
                 "invalid_requests")

    def __init__(self) -> None:
        self.started = time.time()
        self.counts: Counter = Counter()
        #: tenant -> Counter of the same event names
        self.per_tenant: dict[str, Counter] = {}
        #: merged PerfStats over executed (not cached/coalesced) jobs
        self.perf = PerfStats()
        #: EWMA of pool execution seconds (retry-after estimation)
        self.avg_service_seconds = 0.0
        self._ewma_n = 0

    # ------------------------------------------------------------------
    def count(self, event: str, tenant: Optional[str] = None,
              n: int = 1) -> None:
        self.counts[event] += n
        if tenant is not None:
            self.per_tenant.setdefault(tenant, Counter())[event] += n

    def observe_execution(self, seconds: float,
                          perf: Optional[PerfStats]) -> None:
        """Fold one pool execution's wall time and sim counters in."""
        self.count("executions")
        self._ewma_n += 1
        alpha = 0.3 if self._ewma_n > 1 else 1.0
        self.avg_service_seconds += alpha * (seconds
                                             - self.avg_service_seconds)
        if perf is not None:
            self.perf = perf_mod.merge([self.perf, perf])

    def retry_after(self, queue_depth: int, workers: int) -> int:
        """Honest 429 advice: when a queue slot should open up.

        The backlog drains at ``workers`` jobs per ``avg_service_seconds``
        — until the first execution completes the estimate falls back to
        one second per queued job.
        """
        per_job = self.avg_service_seconds or 1.0
        estimate = (queue_depth + 1) * per_job / max(1, workers)
        return max(1, min(600, int(estimate + 0.999)))

    # ------------------------------------------------------------------
    def snapshot(self, scheduler=None, cache=None, jobs=None,
                 running: int = 0, workers: int = 0) -> dict[str, Any]:
        """The ``/metrics`` document."""
        out: dict[str, Any] = {
            "uptime_seconds": time.time() - self.started,
            "counters": {name: self.counts.get(name, 0)
                         for name in self._COUNTERS},
            "per_tenant": {t: dict(c) for t, c in
                           sorted(self.per_tenant.items())},
            "avg_service_seconds": self.avg_service_seconds,
            "running": running,
            "workers": workers,
            "sim_perf": {f: getattr(self.perf, f) for f in (
                "effects_dispatched", "macro_rounds", "messages_coalesced",
                "wall_seconds")},
            # shard block of the first execution that requested shards
            # (merge carries the first non-None dict): effective shard
            # count, sync rounds, load imbalance, or the fallback reason
            "sharding": self.perf.shard,
        }
        if scheduler is not None:
            out["queue"] = {
                "depth": scheduler.depth,
                "max_depth": scheduler.max_depth,
                "max_tenant_depth": scheduler.max_tenant_depth,
                "tenants": scheduler.tenant_depths(),
            }
            out["fairness"] = scheduler.fairness()
        if cache is not None:
            out["run_cache"] = {"dir": str(cache.root),
                                **cache.stats.to_dict()}
        if jobs is not None:
            by_state: Counter = Counter(j.state for j in jobs.list())
            out["jobs"] = {"total": len(jobs), **dict(by_state)}
        return out
