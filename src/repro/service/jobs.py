"""Job records: ids, lifecycle states, event logs, the in-memory store.

A job's life is ``queued → running → done`` (or ``failed``); every
transition appends to the job's event log, which the server's
``/jobs/<id>/events`` endpoint replays and follows.  Two special births
skip the queue entirely:

* a **cache** job (``source='cache'``) was warm in the shared
  :class:`~repro.harness.parallel.RunCache` at submit time and is born
  ``done``;
* a **coalesced** job (``source='coalesced'``) matched an in-flight
  job's cache key; it holds no queue slot and mirrors its primary's
  lifecycle, sharing the single execution's result.

States are plain strings (JSON-friendly); :class:`JobState` just names
them.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.harness.parallel import ExperimentTask
from repro.harness.runner import RunResult


class JobState:
    """The lifecycle states (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    #: states a job never leaves
    TERMINAL = (DONE, FAILED)


class Job:
    """One submitted simulation request."""

    __slots__ = ("id", "tenant", "task", "key", "state", "source",
                 "created", "started", "finished", "result", "error",
                 "events", "followers", "coalesced_with", "_seq")

    def __init__(self, job_id: str, tenant: str, task: ExperimentTask,
                 key: str):
        self.id = job_id
        self.tenant = tenant
        self.task = task
        #: the content-addressed cache key — also the coalescing identity
        self.key = key
        self.state = JobState.QUEUED
        #: how the result was (or will be) obtained:
        #: 'executed' | 'cache' | 'coalesced'
        self.source = "executed"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[RunResult] = None
        #: {'type', 'message', 'traceback'} of a failed execution
        self.error: Optional[dict] = None
        #: lifecycle + progress event log (replayed by the events stream)
        self.events: list[dict] = []
        #: coalesced jobs riding on this primary's execution
        self.followers: list["Job"] = []
        #: primary job id when this job is itself coalesced
        self.coalesced_with: Optional[str] = None
        self._seq = 0

    # ------------------------------------------------------------------
    def add_event(self, kind: str, **detail: Any) -> dict:
        self._seq += 1
        event = {"seq": self._seq, "t": time.time(), "job": self.id,
                 "event": kind, "state": self.state}
        if detail:
            event.update(detail)
        self.events.append(event)
        return event

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def set_state(self, state: str, **detail: Any) -> dict:
        self.state = state
        if state == JobState.RUNNING and self.started is None:
            self.started = time.time()
        if state in JobState.TERMINAL and self.finished is None:
            self.finished = time.time()
        return self.add_event(state, **detail)

    def finish(self, result: RunResult, **detail: Any) -> dict:
        self.result = result
        return self.set_state(JobState.DONE, **detail)

    def fail(self, error: dict, **detail: Any) -> dict:
        self.error = error
        return self.set_state(JobState.FAILED,
                              error=error.get("message", ""), **detail)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "source": self.source,
            "workload": self.task.workload,
            "nprocs": self.task.config.nprocs,
            "key": self.key,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }
        if self.coalesced_with is not None:
            out["coalesced_with"] = self.coalesced_with
        if self.followers:
            out["followers"] = [f.id for f in self.followers]
        if self.error is not None:
            out["error"] = self.error
        return out


class JobStore:
    """In-memory index of every job the server has accepted."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._order: list[Job] = []
        self._next_id = 0

    def create(self, tenant: str, task: ExperimentTask, key: str) -> Job:
        self._next_id += 1
        job = Job(f"j{self._next_id:06d}", tenant, task, key)
        self._jobs[job.id] = job
        self._order.append(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def list(self, tenant: Optional[str] = None) -> list[Job]:
        if tenant is None:
            return list(self._order)
        return [j for j in self._order if j.tenant == tenant]

    def __len__(self) -> int:
        return len(self._jobs)
