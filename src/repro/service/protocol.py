"""The service wire format: descriptors in, results out.

A *submission* is JSON::

    {"tenant": "acme",
     "task": {"config": {...ExperimentConfig fields...},
              "workload": "tile_io",
              "workload_config": {...workload dataclass fields...}}}

:func:`parse_task` validates a task descriptor against the existing
config and registry machinery — unknown config fields, unregistered
workloads, bad collective-backend or protocol specs, and malformed
fault plans are all rejected with :class:`DescriptorError` *before* the
job enters a queue, so a queue slot is never wasted on a task that can
only fail.  The reconstruction is exactly the
:class:`~repro.harness.parallel.ExperimentTask` the pool executes, so a
service job and a direct ``run_many`` call share cache keys — the basis
of cross-tenant dedup and request coalescing.

:func:`result_to_dict` is the fetchable result: predicted bandwidths,
the per-category :class:`TimeBreakdown` summary, engine counters, and
:class:`~repro.perf.PerfStats` — everything ``run_report`` renders,
JSON-shaped.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional, Type

from repro.errors import ConfigError, MPIError, ParCollError, ReproError
from repro.harness.parallel import ExperimentTask, available_workloads
from repro.harness.report import mb_per_s
from repro.harness.runner import ExperimentConfig, RunResult


class DescriptorError(ConfigError):
    """A submitted descriptor failed validation (HTTP 400)."""


#: workload name -> config dataclass, so JSON workload configs can be
#: rebuilt into the picklable objects the registered programs expect.
#: Extendable: third-party workloads registered with
#: :func:`~repro.harness.parallel.register_workload` add their config
#: type here (or accept a plain mapping by registering ``None``).
_WORKLOAD_CONFIG_TYPES: dict[str, Optional[Type]] = {}
_BUILTINS_REGISTERED = False


def register_workload_config(name: str, config_type: Optional[Type]) -> None:
    """Map a registered workload name to its config dataclass.

    ``None`` means the workload takes its config as a plain mapping (or
    no config at all).
    """
    _WORKLOAD_CONFIG_TYPES[name] = config_type


def workload_config_type(name: str) -> Optional[Type]:
    _ensure_builtins()
    return _WORKLOAD_CONFIG_TYPES.get(name)


def _ensure_builtins() -> None:
    global _BUILTINS_REGISTERED
    if _BUILTINS_REGISTERED:
        return
    _BUILTINS_REGISTERED = True
    from repro.workloads import (BTIOConfig, FlashIOConfig, IORConfig,
                                 TileIOConfig)

    register_workload_config("tile_io", TileIOConfig)
    register_workload_config("ior", IORConfig)
    register_workload_config("btio", BTIOConfig)
    register_workload_config("flash_io", FlashIOConfig)


# ---------------------------------------------------------------------------
# descriptor -> ExperimentTask
# ---------------------------------------------------------------------------
def _build(cls: Type, body: Mapping[str, Any], what: str):
    if not isinstance(body, Mapping):
        raise DescriptorError(f"{what} must be a JSON object, "
                              f"got {type(body).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(body) - names)
    if unknown:
        raise DescriptorError(
            f"unknown {what} field(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(names))}")
    try:
        return cls(**body)
    except ReproError as exc:
        raise DescriptorError(f"invalid {what}: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise DescriptorError(f"invalid {what}: {exc}") from exc


def parse_task(obj: Mapping[str, Any]) -> ExperimentTask:
    """Validate a task descriptor; returns the executable task.

    Beyond dataclass construction, the specs a worker would only trip
    over mid-run are resolved against their registries here: the
    collective-fidelity backend, the collective-I/O protocol, the fault
    plan, and the retry-policy overrides.
    """
    if not isinstance(obj, Mapping):
        raise DescriptorError("task must be a JSON object")
    unknown = sorted(set(obj) - {"config", "workload", "workload_config"})
    if unknown:
        raise DescriptorError(f"unknown task field(s): {', '.join(unknown)}")
    config = _build(ExperimentConfig, obj.get("config") or {}, "config")
    if config.nprocs < 1:
        raise DescriptorError(f"nprocs must be >= 1, got {config.nprocs}")
    if config.shards < 1:
        raise DescriptorError(f"shards must be >= 1, got {config.shards}")

    from repro.simmpi.backends import resolve_backend

    try:
        resolve_backend(config.collective_mode)
    except MPIError as exc:
        raise DescriptorError(f"bad collective_mode: {exc}") from exc
    if config.protocol is not None:
        from repro.mpiio.protocols import resolve_protocol

        try:
            resolve_protocol(config.protocol)
        except ParCollError as exc:
            raise DescriptorError(f"bad protocol: {exc}") from exc
    from repro.faults import FaultPlan, RetryPolicy

    try:
        FaultPlan.coerce(config.faults)
    except ReproError as exc:
        raise DescriptorError(f"bad fault plan: {exc}") from exc
    if config.retry:
        try:
            RetryPolicy(**config.retry)
        except (ReproError, TypeError) as exc:
            raise DescriptorError(f"bad retry overrides: {exc}") from exc

    workload = obj.get("workload")
    if not isinstance(workload, str) or not workload:
        raise DescriptorError("task needs a 'workload' name")
    if workload not in available_workloads():
        raise DescriptorError(
            f"unknown workload {workload!r}; registered: "
            f"{', '.join(available_workloads())}")
    wl_body = obj.get("workload_config")
    wl_config: Any = None
    cls = workload_config_type(workload)
    if wl_body is not None:
        if cls is None:
            wl_config = dict(wl_body) if isinstance(wl_body, Mapping) \
                else wl_body
        else:
            wl_config = _build(cls, wl_body, f"{workload} workload_config")
    elif cls is not None:
        # builtin programs take fn(cfg, comm, io); an omitted
        # workload_config means "the workload's defaults", not None
        try:
            wl_config = cls()
        except TypeError as exc:
            raise DescriptorError(
                f"workload {workload!r} requires a workload_config "
                f"({exc})") from exc
    return ExperimentTask(config, workload, wl_config)


def parse_submit(obj: Any) -> tuple[str, ExperimentTask]:
    """Validate one submission body; returns ``(tenant, task)``."""
    if not isinstance(obj, Mapping):
        raise DescriptorError("submission must be a JSON object")
    tenant = obj.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant.strip():
        raise DescriptorError("tenant must be a non-empty string")
    tenant = tenant.strip()
    if len(tenant) > 64:
        raise DescriptorError("tenant names are limited to 64 characters")
    task = obj.get("task")
    if task is None:
        raise DescriptorError("submission needs a 'task' descriptor")
    return tenant, parse_task(task)


# ---------------------------------------------------------------------------
# ExperimentTask / RunResult -> JSON
# ---------------------------------------------------------------------------
def task_to_dict(task: ExperimentTask) -> dict[str, Any]:
    """The JSON descriptor of a task (client-side serialization).

    Round-trips through :func:`parse_task` up to the usual JSON
    tuple→list coercion, which the content-addressed cache key already
    canonicalizes away — a task submitted over the wire shares its key
    with the same task built in-process.
    """
    out: dict[str, Any] = {
        "config": dataclasses.asdict(task.config),
        "workload": task.workload,
    }
    if task.workload_config is not None:
        wl = task.workload_config
        out["workload_config"] = (dataclasses.asdict(wl)
                                  if dataclasses.is_dataclass(wl)
                                  else dict(wl))
    return out


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """The fetchable result of one completed job."""
    perf = None
    if result.perf is not None:
        perf = {f.name: getattr(result.perf, f.name)
                for f in dataclasses.fields(result.perf)}
        perf["events_per_sec"] = result.perf.events_per_sec
    return {
        "nprocs": result.config.nprocs,
        "backend": result.backend,
        "write_bandwidth": result.write_bandwidth,
        "read_bandwidth": result.read_bandwidth,
        "write_mb_s": mb_per_s(result.write_bandwidth),
        "read_mb_s": mb_per_s(result.read_bandwidth),
        "elapsed_total": result.elapsed_total,
        "events": result.events,
        "messages": result.messages,
        "bytes_written": sum(s.bytes_written for s in result.per_rank),
        "bytes_read": sum(s.bytes_read for s in result.per_rank),
        "breakdown": result.breakdown,
        "perf": perf,
        "validation": result.validation,
    }
