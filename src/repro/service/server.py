"""The asyncio job server: queues in front of the experiment pool.

One :class:`SimulationServer` owns four cooperating pieces:

* a :class:`~repro.service.scheduler.FairScheduler` of bounded
  per-tenant queues (backpressure at submit time: HTTP 429 +
  ``Retry-After``);
* an in-flight **coalescing map** ``cache key -> primary job``: a
  submission whose key matches a queued or running job becomes a
  follower of that job — one execution, every follower shares the
  result (cross-tenant: keys are content hashes, so identical
  descriptors from different tenants dedupe);
* the shared :class:`~repro.harness.parallel.RunCache`: warm keys are
  answered at submit time without touching a queue, and every execution
  stores its result for the next tenant;
* a worker pool (process by default) running
  :func:`~repro.harness.parallel._execute_task` — the exact entry point
  ``run_many`` uses, so service results are bit-identical to direct
  execution.

The wire protocol is HTTP/1.0 + JSON over asyncio streams (stdlib only,
one connection per request, ``Connection: close``); see
``docs/service.md``.  Routes::

    GET  /healthz            liveness
    GET  /metrics            queues, cache, coalescing, fairness, perf
    POST /jobs               submit {tenant, task}; 202 / 400 / 429
    GET  /jobs[?tenant=t]    job listing
    GET  /jobs/<id>          one job's state
    GET  /jobs/<id>/result   fetch result (409 until terminal)
    GET  /jobs/<id>/events   NDJSON lifecycle stream (follows to done)
    POST /shutdown           graceful drain + stop (when enabled)

:class:`ServerThread` runs a server on a background thread with its own
event loop — how the benchmarks, tests, and blocking clients host one
in-process.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigError
from repro.harness.parallel import RunCache, _execute_task
from repro.service.jobs import Job, JobState, JobStore
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (DescriptorError, parse_submit,
                                    result_to_dict)
from repro.service.scheduler import FairScheduler, QueueFullError

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            429: "Too Many Requests", 500: "Internal Server Error"}

#: request line + headers + body must arrive within this
_READ_TIMEOUT = 30.0


@dataclass
class ServiceConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from ``.port``)
    port: int = 8642
    #: concurrent pool executions (queue slots drain this fast)
    workers: int = 2
    #: global queue bound (scheduler-level backpressure)
    max_queue: int = 64
    #: per-tenant queue bound (default: same as ``max_queue``)
    max_tenant_queue: Optional[int] = None
    #: the shared run cache: True (default directory), False (off), or a
    #: ready :class:`RunCache`
    cache: Any = True
    cache_dir: Optional[str] = None
    #: force the correctness oracle on every submitted config
    validate: bool = False
    #: 'process' (real parallelism) or 'thread' (cheap for tests)
    pool: str = "process"
    #: honor POST /shutdown (tests, benchmarks, supervised deployments)
    allow_shutdown: bool = True
    #: graceful-shutdown wait for running jobs (seconds)
    drain_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.pool not in ("process", "thread"):
            raise ConfigError(
                f"pool must be 'process' or 'thread', got {self.pool!r}")

    def make_cache(self) -> Optional[RunCache]:
        if isinstance(self.cache, RunCache):
            return self.cache
        if self.cache:
            return RunCache(self.cache_dir)
        return None


class SimulationServer:
    """One service instance; all state lives on its event loop."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.cache = self.config.make_cache()
        self.scheduler = FairScheduler(
            max_depth=self.config.max_queue,
            max_tenant_depth=self.config.max_tenant_queue)
        self.jobs = JobStore()
        self.metrics = ServiceMetrics()
        #: cache key -> primary job currently queued or running
        self._inflight: dict[str, Job] = {}
        self._running: set[Job] = set()
        self._pool = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._work: Optional[asyncio.Event] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._job_cond: Optional[asyncio.Condition] = None
        self._closed: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._job_tasks: set[asyncio.Task] = set()
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SimulationServer":
        self._work = asyncio.Event()
        self._slots = asyncio.Semaphore(self.config.workers)
        self._job_cond = asyncio.Condition()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop())
        return self

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def wait_closed(self) -> None:
        assert self._closed is not None, "server not started"
        await self._closed.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain running jobs, release all."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        self._work.set()  # unblock the dispatcher so it can exit
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout
            while (self._running or self._job_tasks) \
                    and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        for task in list(self._job_tasks):
            task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=drain, cancel_futures=True)
            self._pool = None
        async with self._job_cond:
            self._job_cond.notify_all()  # release event streamers
        if self._server is not None:
            await self._server.wait_closed()
        self._closed.set()

    def _pool_executor(self):
        if self._pool is None:
            import concurrent.futures as cf

            if self.config.pool == "process":
                self._pool = cf.ProcessPoolExecutor(
                    max_workers=self.config.workers)
            else:
                self._pool = cf.ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-service")
        return self._pool

    # ------------------------------------------------------------------
    # dispatch: queues -> pool
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._work.wait()
            if self._closing:
                return
            # a worker slot is acquired BEFORE popping: a popped-but-not-
            # running job would occupy neither the queue (so the depth
            # bounds undercount) nor a worker — backpressure stays exact
            # only if every accepted job is always in one or the other
            await self._slots.acquire()
            if self._closing:
                self._slots.release()
                return
            job = self.scheduler.pop()
            if job is None:
                self._slots.release()
                self._work.clear()
                continue
            self._running.add(job)
            task = loop.create_task(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        try:
            job.set_state(JobState.RUNNING,
                          pool=self.config.pool,
                          queue_seconds=time.time() - job.created)
            await self._notify()
            t0 = time.perf_counter()
            ok, value = await loop.run_in_executor(
                self._pool_executor(), _execute_task, job.task)
            seconds = time.perf_counter() - t0
            if ok:
                self.metrics.observe_execution(seconds, value.perf)
                if self.cache is not None:
                    await loop.run_in_executor(None, self.cache.put,
                                               job.key, value)
                job.add_event("progress", detail="result stored",
                              wall_seconds=seconds)
                self._finish(job, value)
            else:
                exc, tb = value
                self._fail(job, {"type": type(exc).__name__,
                                 "message": str(exc), "traceback": tb})
        except asyncio.CancelledError:
            self._fail(job, {"type": "Cancelled",
                             "message": "server shut down mid-run",
                             "traceback": ""})
            raise
        except Exception as exc:  # pool breakage, cache I/O surprises
            self._fail(job, {"type": type(exc).__name__,
                             "message": str(exc), "traceback": ""})
        finally:
            self._inflight.pop(job.key, None)
            self._running.discard(job)
            self._slots.release()
            self._work.set()
            await self._notify()

    def _finish(self, job: Job, result) -> None:
        job.finish(result)
        self.metrics.count("completed", job.tenant)
        for follower in job.followers:
            follower.result = result
            follower.finish(result, via=job.id)
            self.metrics.count("completed", follower.tenant)

    def _fail(self, job: Job, error: dict) -> None:
        if job.terminal:
            return
        job.fail(error)
        self.metrics.count("failed", job.tenant)
        for follower in job.followers:
            follower.fail(dict(error), via=job.id)
            self.metrics.count("failed", follower.tenant)

    async def _notify(self) -> None:
        async with self._job_cond:
            self._job_cond.notify_all()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def _submit(self, payload: Any) -> tuple[int, dict, dict]:
        tenant, task = parse_submit(payload)
        self.metrics.count("submitted", tenant)
        if self.config.validate and not task.config.validate:
            task = replace(task, config=replace(task.config, validate=True))
        key = task.cache_key()

        primary = self._inflight.get(key)
        if primary is not None and not primary.terminal:
            job = self.jobs.create(tenant, task, key)
            job.source = "coalesced"
            job.coalesced_with = primary.id
            job.state = primary.state
            primary.followers.append(job)
            job.add_event("coalesced", with_job=primary.id,
                          primary_tenant=primary.tenant)
            self.metrics.count("accepted", tenant)
            self.metrics.count("coalesced", tenant)
            return 202, {"job": job.to_dict()}, {}

        # The cache probe is deliberately synchronous: the cold path
        # (in-flight check -> probe -> enqueue -> in-flight registration)
        # must hold the event loop so two concurrent submissions of one
        # key cannot both miss and double-execute.  Entries are small
        # pickles; the read is far cheaper than one queued execution.
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                job = self.jobs.create(tenant, task, key)
                job.source = "cache"
                job.result = cached
                job.set_state(JobState.DONE, cache="hit")
                self.metrics.count("accepted", tenant)
                self.metrics.count("cache_hits", tenant)
                self.metrics.count("completed", tenant)
                await self._notify()
                return 202, {"job": job.to_dict()}, {}

        job = self.jobs.create(tenant, task, key)
        try:
            self.scheduler.push(job)
        except QueueFullError as exc:
            self.metrics.count("rejected", tenant)
            retry_after = self.metrics.retry_after(exc.depth,
                                                   self.config.workers)
            return 429, {"error": str(exc), "scope": exc.scope,
                         "retry_after": retry_after}, \
                {"Retry-After": str(retry_after)}
        job.add_event("queued", depth=self.scheduler.depth)
        self._inflight[key] = job
        self.metrics.count("accepted", tenant)
        self._work.set()
        return 202, {"job": job.to_dict()}, {}

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, headers = await asyncio.wait_for(
                    self._read_head(reader), _READ_TIMEOUT)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ValueError):
                return
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = await asyncio.wait_for(reader.readexactly(length),
                                              _READ_TIMEOUT)
            await self._route(method, target, body, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_head(reader) -> tuple[str, str, dict]:
        line = (await reader.readline()).decode("latin-1").strip()
        if not line:
            raise ValueError("empty request")
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"bad request line {line!r}")
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            raw = (await reader.readline()).decode("latin-1")
            if raw in ("\r\n", "\n", ""):
                break
            name, _, value = raw.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    @staticmethod
    def _respond(writer, status: int, obj: Any,
                 headers: Optional[dict] = None) -> None:
        body = (json.dumps(obj) + "\n").encode()
        head = [f"HTTP/1.0 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)

    async def _route(self, method: str, target: str, body: bytes,
                     writer) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if path == "/healthz" and method == "GET":
            self._respond(writer, 200, {"ok": True})
            return
        if path == "/metrics" and method == "GET":
            self._respond(writer, 200, self.metrics.snapshot(
                scheduler=self.scheduler, cache=self.cache, jobs=self.jobs,
                running=len(self._running), workers=self.config.workers))
            return
        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self.metrics.count("invalid_requests")
                self._respond(writer, 400, {"error": f"bad JSON: {exc}"})
                return
            try:
                status, obj, extra = await self._submit(payload)
            except DescriptorError as exc:
                self.metrics.count("invalid_requests")
                self._respond(writer, 400, {"error": str(exc)})
                return
            self._respond(writer, status, obj, extra)
            return
        if path == "/jobs" and method == "GET":
            jobs = self.jobs.list(query.get("tenant"))
            self._respond(writer, 200,
                          {"jobs": [j.to_dict() for j in jobs]})
            return
        if path == "/shutdown" and method == "POST":
            if not self.config.allow_shutdown:
                self._respond(writer, 405,
                              {"error": "shutdown is disabled"})
                return
            self._respond(writer, 200, {"ok": True, "draining": True})
            await writer.drain()
            asyncio.get_running_loop().create_task(self.shutdown())
            return

        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):].split("/")
            job = self.jobs.get(rest[0])
            if job is None:
                self._respond(writer, 404,
                              {"error": f"unknown job {rest[0]!r}"})
                return
            if len(rest) == 1 and method == "GET":
                self._respond(writer, 200, {"job": job.to_dict()})
                return
            if rest[1:] == ["result"] and method == "GET":
                if not job.terminal:
                    self._respond(writer, 409,
                                  {"state": job.state,
                                   "error": "job has not finished"})
                elif job.state == JobState.FAILED:
                    self._respond(writer, 200,
                                  {"job": job.to_dict(),
                                   "state": job.state,
                                   "error": job.error})
                else:
                    self._respond(writer, 200,
                                  {"job": job.to_dict(),
                                   "state": job.state,
                                   "result": result_to_dict(job.result)})
                return
            if rest[1:] == ["events"] and method == "GET":
                follow = query.get("follow", "1") not in ("0", "false")
                await self._stream_events(job, follow, writer)
                return
        self._respond(writer, 404, {"error": f"no route {method} {path}"})

    async def _stream_events(self, job: Job, follow: bool,
                             writer) -> None:
        writer.write(b"HTTP/1.0 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        cursor = 0
        while True:
            new = job.events[cursor:]
            cursor += len(new)
            for event in new:
                writer.write((json.dumps(event) + "\n").encode())
            await writer.drain()
            if (job.terminal and cursor >= len(job.events)) \
                    or not follow or self._closing:
                return
            async with self._job_cond:
                if cursor >= len(job.events) and not job.terminal \
                        and not self._closing:
                    try:
                        await asyncio.wait_for(self._job_cond.wait(),
                                               timeout=1.0)
                    except asyncio.TimeoutError:
                        pass


async def serve(config: Optional[ServiceConfig] = None,
                ready=None) -> None:
    """Run a server until shutdown (the ``repro serve`` entry point)."""
    server = SimulationServer(config)
    await server.start()
    if ready is not None:
        ready(server)
    await server.wait_closed()


class ServerThread:
    """A server on a daemon thread with its own event loop.

    For tests, benchmarks, and anything that wants a live endpoint next
    to blocking client code::

        with ServerThread(workers=2, pool="thread", cache=cache) as srv:
            client = ServiceClient(srv.url)
            ...
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 **overrides: Any):
        if config is None:
            overrides.setdefault("port", 0)
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ConfigError("pass a config or overrides, not both")
        self.config = config
        self.server: Optional[SimulationServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server is None:
            raise ConfigError("service thread failed to start in time")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced by start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _amain(self) -> None:
        server = SimulationServer(self.config)
        await server.start()
        self.server = server
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.wait_closed()

    @property
    def url(self) -> str:
        assert self.server is not None, "thread not started"
        return self.server.url

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or self.server is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop)
        try:
            future.result(timeout=self.config.drain_timeout + 10)
        except Exception:
            pass
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
