"""Fair-share scheduling over bounded per-tenant queues.

Pure data structure — no asyncio — so fairness is unit-testable in
isolation; the server wraps it with a wakeup event and a worker-slot
semaphore.

**Fairness.**  Each tenant gets a FIFO deque; :meth:`pop` picks the
non-empty tenant with the fewest jobs served so far (ties broken
round-robin from the tenant after the last pick).  A tenant submitting
one job against a tenant flooding a thousand is served within one pick:
least-served-first is deficit-round-robin with unit quanta, so over any
window each backlogged tenant gets within ±1 of an equal share of
executions, regardless of queue depths.

**Backpressure.**  Queues are bounded twice: a global ``max_depth`` and
a per-tenant ``max_tenant_depth``.  :meth:`push` past either raises
:class:`QueueFullError` naming the exhausted scope — the server maps it
to HTTP 429 with a ``Retry-After`` estimate.  Bounds are enforced at
submit, never by dropping accepted jobs: an accepted job always runs.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Optional

from repro.errors import ConfigError
from repro.service.jobs import Job


class QueueFullError(Exception):
    """A submission exceeded a queue bound (maps to HTTP 429).

    ``scope`` is ``'global'`` or the tenant name whose per-tenant bound
    filled; ``depth`` the depth that refused the job.
    """

    def __init__(self, scope: str, depth: int, limit: int):
        self.scope = scope
        self.depth = depth
        self.limit = limit
        where = "service queue" if scope == "global" \
            else f"queue for tenant {scope!r}"
        super().__init__(f"{where} is full ({depth}/{limit})")


class FairScheduler:
    """Bounded per-tenant FIFO queues + least-served-first picking."""

    def __init__(self, max_depth: int = 64,
                 max_tenant_depth: Optional[int] = None):
        if max_depth < 1:
            raise ConfigError(f"max_depth must be >= 1, got {max_depth}")
        if max_tenant_depth is None:
            max_tenant_depth = max_depth
        if max_tenant_depth < 1:
            raise ConfigError(
                f"max_tenant_depth must be >= 1, got {max_tenant_depth}")
        self.max_depth = max_depth
        self.max_tenant_depth = max_tenant_depth
        self._queues: dict[str, deque[Job]] = {}
        #: tenants in first-seen order (round-robin tie-break universe)
        self._tenants: list[str] = []
        self._served: Counter = Counter()
        self._rr = 0  # index after the last-picked tenant
        self.pushed = 0
        self.popped = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def tenant_depths(self) -> dict[str, int]:
        return {t: len(q) for t, q in self._queues.items() if q}

    def push(self, job: Job) -> None:
        """Enqueue, or raise :class:`QueueFullError` (nothing enqueued)."""
        depth = self.depth
        if depth >= self.max_depth:
            self.rejected += 1
            raise QueueFullError("global", depth, self.max_depth)
        q = self._queues.get(job.tenant)
        if q is None:
            q = self._queues[job.tenant] = deque()
            self._tenants.append(job.tenant)
        if len(q) >= self.max_tenant_depth:
            self.rejected += 1
            raise QueueFullError(job.tenant, len(q), self.max_tenant_depth)
        q.append(job)
        self.pushed += 1

    def pop(self) -> Optional[Job]:
        """The next job under fair share, or None when all queues drain."""
        best = None
        best_rank = None
        n = len(self._tenants)
        for i, tenant in enumerate(self._tenants):
            q = self._queues.get(tenant)
            if not q:
                continue
            rank = (self._served[tenant], (i - self._rr) % n)
            if best_rank is None or rank < best_rank:
                best, best_rank, best_i = tenant, rank, i
        if best is None:
            return None
        self._served[best] += 1
        self._rr = (best_i + 1) % n
        self.popped += 1
        return self._queues[best].popleft()

    # ------------------------------------------------------------------
    def fairness(self) -> dict:
        """Scheduler fairness stats for ``/metrics``.

        ``jain`` is Jain's fairness index over per-tenant served counts
        (1.0 = perfectly even; 1/n = one tenant got everything).
        """
        served = {t: self._served[t] for t in self._tenants}
        values = [v for v in served.values()]
        jain = 1.0
        if values and any(values):
            s = sum(values)
            jain = (s * s) / (len(values) * sum(v * v for v in values))
        return {
            "served": served,
            "spread": (max(values) - min(values)) if values else 0,
            "jain_index": jain,
            "pushed": self.pushed,
            "popped": self.popped,
            "rejected": self.rejected,
        }
