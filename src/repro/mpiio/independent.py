"""Independent (non-collective) I/O: the AD_Sysio-like direct path.

Each process translates its view access to physical segments and issues
the file-system operation itself — no coordination, no aggregation.  This
is the paper's "Cray w/o Coll" configuration: fine for large contiguous
requests, catastrophic for fine-grained interleaved access (every client
fights for OST locks and pays per-RPC overheads on small chunks).

An optional data-sieving read mode reads the whole spanned extent in one
operation and filters in memory when the access is fragmented but dense —
mirroring ROMIO's independent-read optimization.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.datatypes.flatten import Segments
from repro.datatypes.packing import gather_segments
from repro.mpiio.two_phase import IOEnv


def independent_write(env: IOEnv, segs: Segments,
                      data: Optional[np.ndarray]
                      ) -> Generator[Any, Any, int]:
    """Write my segments directly; returns bytes written."""
    comm = env.comm
    offs, lens = segs
    total = int(lens.sum())
    if total == 0:
        return 0
    t0 = comm.now
    yield from env.fs.write(env.lfile, client=comm.proc.rank,
                            offsets=offs, lengths=lens, data=data,
                            retry=env.retry)
    env.charge_io(t0)
    return total


def independent_read(env: IOEnv, segs: Segments,
                     data_sieving: bool = False,
                     sieve_density: float = 0.3
                     ) -> Generator[Any, Any, Optional[np.ndarray]]:
    """Read my segments directly; returns dense bytes (None in model mode).

    With ``data_sieving``, a fragmented-but-dense access (covered fraction
    of its span at least ``sieve_density``) is served by one big read of
    the span, then filtered in memory.
    """
    comm = env.comm
    offs, lens = segs
    total = int(lens.sum())
    verified = env.lfile.store is not None
    if total == 0:
        return np.empty(0, np.uint8) if verified else None
    t0 = comm.now
    span = int(offs[-1] + lens[-1] - offs[0])
    if data_sieving and offs.size > 1 and total >= sieve_density * span:
        base = int(offs[0])
        big = yield from env.fs.read(env.lfile, client=comm.proc.rank,
                                     offsets=[base], lengths=[span],
                                     retry=env.retry)
        env.charge_io(t0)
        if not verified:
            return None
        return gather_segments(big, offs - base, lens)
    out = yield from env.fs.read(env.lfile, client=comm.proc.rank,
                                 offsets=offs, lengths=lens,
                                 retry=env.retry)
    env.charge_io(t0)
    return out
