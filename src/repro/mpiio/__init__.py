"""MPI-IO layer: file views, independent I/O, extended two-phase collective I/O.

This is the open-source MPI-IO implementation the paper layers ParColl on
(their OPAL library, itself a ROMIO-derived stack).  It provides:

* file views (displacement + etype + filetype) over derived datatypes,
  tiled across the file with vectorized segment math;
* independent read/write (the POSIX-like ``AD_Sysio`` path);
* the **extended two-phase protocol** (``ext2ph``): file-range gathering,
  file-domain partitioning among I/O aggregators, and interleaved rounds
  of data exchange and file I/O bounded by the collective buffer size —
  with every blocking step charged to the paper's time categories
  ('sync' for collective coordination, 'exchange' for point-to-point
  data movement, 'io' for file reads/writes);
* user hints (``cb_buffer_size``, ``cb_nodes``, ParColl controls);
* the :mod:`repro.mpiio.protocols` registry, which makes collective
  strategies (``ext2ph``, ``parcoll``, ``independent``, ``nodeagg``,
  ``listio``) first-class plugins selected by the ``protocol`` hint.

Running ext2ph on ``COMM_WORLD`` is the paper's baseline ("Cray"
equivalent); :mod:`repro.parcoll` reuses the same engine per subgroup.
"""

from repro.mpiio.fileview import FileView
from repro.mpiio.hints import IOHints
from repro.mpiio.file import MPIIO, MPIFile
from repro.mpiio.protocols import (CollectiveProtocol, available_protocols,
                                   register_protocol, resolve_protocol)

__all__ = ["FileView", "IOHints", "MPIIO", "MPIFile", "CollectiveProtocol",
           "available_protocols", "register_protocol", "resolve_protocol"]
