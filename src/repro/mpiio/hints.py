"""MPI Info hints controlling collective I/O.

Mirrors the ROMIO hint names where one exists; ParColl's controls follow
the paper's Section 4.2: the user may give either the number of
aggregators to draw from the default list (``cb_nodes``) or an explicit
list of aggregator ranks (``cb_config_ranks``), and ParColl adds the
subgroup count (``parcoll_ngroups``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.errors import MPIError, MPIIOError, ParCollError


@dataclass(frozen=True)
class IOHints:
    """Validated hint set for one open file."""

    #: collective buffer bytes per aggregator per round (ROMIO cb_buffer_size)
    cb_buffer_size: int = 4 << 20
    #: number of I/O aggregators from the default list; None = one per node
    cb_nodes: Optional[int] = None
    #: explicit aggregator ranks (communicator ranks); overrides cb_nodes
    cb_config_ranks: Optional[tuple[int, ...]] = None
    #: collective protocol used by *_all operations; any spec registered
    #: in :mod:`repro.mpiio.protocols` (e.g. 'ext2ph', 'parcoll',
    #: 'independent', 'nodeagg', 'listio', 'listio:<max_segments>')
    protocol: str = "ext2ph"
    #: list I/O: extents per file-system request (the fixed accessor-array
    #: size of a real list-I/O API); only the 'listio' protocol reads it
    listio_max_segments: int = 64
    #: ParColl: number of subgroups (file areas); 1 degenerates to ext2ph
    parcoll_ngroups: int = 1
    #: ParColl: allow switching to an intermediate file view (pattern (c))
    parcoll_intermediate_views: bool = True
    #: ParColl: data path under an intermediate view.  'physical'
    #: (default, the paper's design) groups processes by logical offsets
    #: but runs each subgroup's two-phase exchange over the original
    #: physical segments, so windows stay dense and writes coalesce;
    #: 'logical' runs the exchange in logical space and translates each
    #: shipped piece back to physical segments (simpler, but every
    #: aggregator write is scattered) — kept as an ablation.
    parcoll_data_path: str = "physical"
    #: ParColl: 'once' plans the grouping on the first collective call and
    #: reuses it (the paper partitions at file-view initiation; subsequent
    #: calls coordinate only within subgroups, letting groups drift apart);
    #: 'always' re-plans globally every call (fully general, but keeps one
    #: global collective per call); 'auto' reuses the grouping like 'once'
    #: but re-plans (globally) when the stationarity guard would otherwise
    #: reject the call — at the price of one tiny global agreement
    #: allreduce per call, so subgroups re-synchronize like 'always' but
    #: skip the extent allgather and regrouping while the pattern holds
    parcoll_replan: str = "once"
    #: align file-domain boundaries to stripe boundaries
    align_file_domains: bool = False
    #: consolidate per-core pieces through a node leader before the
    #: inter-node exchange (the paper's Section 6 multi-core future work)
    cb_node_consolidation: bool = False
    #: overlap the aggregator's file write of round r with round r+1's
    #: exchange (the split-phase collective I/O of the paper's related
    #: work [13], realized with background tasks instead of threads —
    #: Catamount has none, which is why the paper could not use it)
    pipelined_io: bool = False
    #: collective-fidelity backend for this file's collectives
    #: ('analytic', 'detailed', 'hybrid[:<spec>]'); None inherits the
    #: world's backend.  Every rank opens with the same hints, so the
    #: override is installed symmetrically.
    collective_mode: Optional[str] = None
    #: run the :mod:`repro.validate` correctness oracle on this file's
    #: operations: True forces validation on, False forces it off, None
    #: (default) inherits the platform's setting (ExperimentConfig
    #: ``validate`` field / CLI ``--validate`` / ``REPRO_VALIDATE``).
    #: All ranks open with the same hints, so the choice is symmetric.
    parcoll_validate: Optional[bool] = None
    #: RPC retry-policy overrides for this file (only consulted under an
    #: active fault plan); None inherits the platform's RetryPolicy.
    #: retry_max_attempts=1 disables retry: the first lost RPC raises
    #: FaultExhaustedError.
    retry_max_attempts: Optional[int] = None
    retry_timeout: Optional[float] = None
    retry_backoff_base: Optional[float] = None
    retry_backoff_factor: Optional[float] = None
    retry_jitter: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cb_buffer_size <= 0:
            raise MPIIOError("cb_buffer_size must be positive")
        if self.collective_mode is not None:
            from repro.simmpi.backends import resolve_backend

            try:
                resolve_backend(self.collective_mode)
            except MPIError as exc:
                raise MPIIOError(str(exc)) from exc
        if self.cb_nodes is not None and self.cb_nodes <= 0:
            raise MPIIOError("cb_nodes must be positive")
        from repro.mpiio.protocols import resolve_protocol

        try:
            resolve_protocol(self.protocol)
        except ParCollError as exc:
            raise MPIIOError(str(exc)) from exc
        if self.listio_max_segments <= 0:
            raise MPIIOError("listio_max_segments must be positive")
        if self.parcoll_ngroups <= 0:
            raise MPIIOError("parcoll_ngroups must be positive")
        if self.parcoll_data_path not in ("physical", "logical"):
            raise MPIIOError(
                f"parcoll_data_path must be 'physical' or 'logical', "
                f"got {self.parcoll_data_path!r}"
            )
        if self.parcoll_replan not in ("once", "always", "auto"):
            raise MPIIOError(
                f"parcoll_replan must be 'once', 'always' or 'auto', "
                f"got {self.parcoll_replan!r}"
            )
        if self.cb_config_ranks is not None:
            if len(self.cb_config_ranks) == 0:
                raise MPIIOError("cb_config_ranks must not be empty")
            if len(set(self.cb_config_ranks)) != len(self.cb_config_ranks):
                raise MPIIOError("cb_config_ranks contains duplicates")
        if self.parcoll_validate is not None and not isinstance(
                self.parcoll_validate, bool):
            raise MPIIOError(
                f"parcoll_validate must be True, False or None, "
                f"got {self.parcoll_validate!r}")
        if self.retry_max_attempts is not None and self.retry_max_attempts < 1:
            raise MPIIOError("retry_max_attempts must be >= 1")
        if self.retry_timeout is not None and self.retry_timeout <= 0:
            raise MPIIOError("retry_timeout must be > 0")
        if self.retry_backoff_base is not None and self.retry_backoff_base < 0:
            raise MPIIOError("retry_backoff_base must be >= 0")
        if (self.retry_backoff_factor is not None
                and self.retry_backoff_factor < 1.0):
            raise MPIIOError("retry_backoff_factor must be >= 1")
        if self.retry_jitter is not None and self.retry_jitter < 0:
            raise MPIIOError("retry_jitter must be >= 0")

    def retry_overrides(self) -> dict[str, Any]:
        """The non-None retry_* fields as RetryPolicy keyword overrides."""
        out = {}
        for hint, kw in (("retry_max_attempts", "max_attempts"),
                         ("retry_timeout", "timeout"),
                         ("retry_backoff_base", "backoff_base"),
                         ("retry_backoff_factor", "backoff_factor"),
                         ("retry_jitter", "jitter")):
            val = getattr(self, hint)
            if val is not None:
                out[kw] = val
        return out

    @classmethod
    def from_dict(cls, info: Mapping[str, Any]) -> "IOHints":
        """Build from a plain ``{hint-name: value}`` mapping (MPI_Info analog)."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(info) - known
        if unknown:
            raise MPIIOError(f"unknown hint(s): {sorted(unknown)}")
        kwargs = dict(info)
        if "cb_config_ranks" in kwargs and kwargs["cb_config_ranks"] is not None:
            kwargs["cb_config_ranks"] = tuple(kwargs["cb_config_ranks"])
        return cls(**kwargs)

    def with_(self, **kwargs: Any) -> "IOHints":
        """Copy with overrides (validated)."""
        if "cb_config_ranks" in kwargs and kwargs["cb_config_ranks"] is not None:
            kwargs["cb_config_ranks"] = tuple(kwargs["cb_config_ranks"])
        return replace(self, **kwargs)
