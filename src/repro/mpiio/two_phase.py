"""The extended two-phase (ext2ph) collective I/O engine.

Faithful to the ROMIO structure the paper dissects (Section 2.2):

1. **file range gathering** — allgather each process's (start, end)
   physical extent ('sync');
2. **file domain partitioning** — the accessed range is split into one
   contiguous file domain per I/O aggregator;
3. **round agreement** — allreduce(MAX) of the per-aggregator round count
   (domain bytes / ``cb_buffer_size``) ('sync');
4. **interleaved rounds** — each round moves one collective-buffer window
   per aggregator: an alltoall of per-aggregator byte counts ('sync'),
   point-to-point data exchange ('exchange'), and the aggregator's file
   read/write ('io').

The per-round alltoall is the global synchronization whose cost grows
with the process count — the *collective wall*.  ParColl reuses this very
engine per subgroup, which is why shrinking the group shrinks the wall.

Data moves for real in verified mode: writers slice their dense buffers,
aggregators merge by file offset and write; readers get exact bytes back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.cluster.machine import Machine
from repro.datatypes.flatten import Segments, coalesce, intersect_range
from repro.errors import MPIIOError
from repro.lustre.fs import LustreFS, LustreFile
from repro.mpiio.aggregation import default_aggregators, partition_file_domains
from repro.mpiio.hints import IOHints
from repro.perf import perf_counters
from repro.sim.effects import Join, Sleep, Spawn
from repro.simmpi.payload import Payload
from repro.simmpi.reduce_ops import MAX
from repro.simmpi.world import Communicator

#: tag base for two-phase data exchange (clear of workload tags)
TP_TAG = 1 << 20
#: tag base for read replies (distinct from request/data tags)
REPLY_TAG = TP_TAG + 10_000_000

#: modeled wire bytes per (offset, length) pair in a request list
SEG_HEADER_BYTES = 16

#: vectorized-copy heuristic: fancy-index gather/scatter pays off only in
#: the many-small-segments regime; larger segments keep the slice loop
#: (memcpy beats building an index array one entry per byte)
_VEC_MIN_SEGS = 8
_VEC_MAX_AVG_BYTES = 512


def _gather_index(starts: np.ndarray, lens: np.ndarray,
                  total: int) -> np.ndarray:
    """Flat source indices for densely packing segments ``[starts, +lens)``."""
    out_first = np.zeros(lens.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=out_first[1:])
    reps = np.repeat(starts - out_first, lens)
    return np.arange(total, dtype=np.int64) + reps


@dataclass
class IOEnv:
    """Everything one collective call needs besides the access itself."""

    comm: Communicator
    machine: Machine
    fs: LustreFS
    lfile: LustreFile
    hints: IOHints
    #: effective RetryPolicy for this file's RPCs (None = the fs default)
    retry: Optional[object] = None
    #: active correctness oracle (:class:`repro.validate.Validator`);
    #: None = validation off, the hooks below cost nothing
    validator: Optional[object] = None

    @property
    def breakdown(self):
        return self.comm.proc.breakdown

    def charge_io(self, t0: float) -> None:
        """Charge time since ``t0`` to 'io', splitting out fault retries.

        Pops the retry seconds the file system accumulated for this rank
        since the last charge and books them as ``fault_retry`` (count =
        lost RPCs); the remainder stays 'io'.  Capped at the elapsed
        wall time: retries of an overlapped (pipelined) write may hide
        under exchange time already charged elsewhere.
        """
        elapsed = self.comm.now - t0
        retry_s, failures = self.fs.take_retry(self.comm.proc.rank)
        if failures:
            retry_s = min(retry_s, elapsed)
            self.breakdown.add("fault_retry", retry_s, n=failures)
            self.breakdown.add("io", elapsed - retry_s)
        else:
            self.breakdown.add("io", elapsed)


def data_positions(offs: np.ndarray, prefix: np.ndarray,
                   sub_offs: np.ndarray) -> np.ndarray:
    """Dense-buffer positions of sub-segment starts within a segment list.

    ``prefix[i]`` is the dense position of segment ``i``'s first byte;
    every ``sub_offs`` entry must fall inside some segment.
    """
    idx = np.searchsorted(offs, sub_offs, side="right") - 1
    return prefix[idx] + (sub_offs - offs[idx])


def extract_data(segs: Segments, prefix: np.ndarray, data: np.ndarray,
                 sub: Segments) -> np.ndarray:
    """Slice the dense bytes of ``sub`` (a subset of ``segs``) out of ``data``."""
    sub_offs, sub_lens = sub
    if sub_offs.size == 0:
        return np.empty(0, dtype=np.uint8)
    starts = data_positions(segs[0], prefix, sub_offs)
    n = sub_offs.size
    total = int(sub_lens.sum())
    if n >= _VEC_MIN_SEGS and total < n * _VEC_MAX_AVG_BYTES:
        perf_counters.segments_vectorized += n
        return data[_gather_index(starts, sub_lens, total)]
    return _extract_data_reference(starts, sub_lens, data)


def _extract_data_reference(starts: np.ndarray, sub_lens: np.ndarray,
                            data: np.ndarray) -> np.ndarray:
    """Slice-loop copy (retained reference; also the few/large-segments path)."""
    pieces = [data[s:s + l] for s, l in zip(starts.tolist(), sub_lens.tolist())]
    return np.concatenate(pieces)


def place_data(segs: Segments, prefix: np.ndarray, out: np.ndarray,
               sub: Segments, incoming: np.ndarray) -> None:
    """Inverse of :func:`extract_data`: write ``incoming`` into ``out``."""
    sub_offs, sub_lens = sub
    if sub_offs.size == 0:
        return
    starts = data_positions(segs[0], prefix, sub_offs)
    n = sub_offs.size
    total = int(sub_lens.sum())
    if n >= _VEC_MIN_SEGS and total < n * _VEC_MAX_AVG_BYTES:
        perf_counters.segments_vectorized += n
        out[_gather_index(starts, sub_lens, total)] = incoming[:total]
        return
    _place_data_reference(starts, sub_lens, out, incoming)


def _place_data_reference(starts: np.ndarray, sub_lens: np.ndarray,
                          out: np.ndarray, incoming: np.ndarray) -> None:
    """Slice-loop scatter (retained reference; few/large-segments path)."""
    pos = 0
    for s, l in zip(starts.tolist(), sub_lens.tolist()):
        out[s:s + l] = incoming[pos:pos + l]
        pos += l


def _prefix_of(lens: np.ndarray) -> np.ndarray:
    prefix = np.zeros(lens.size, dtype=np.int64)
    if lens.size > 1:
        np.cumsum(lens[:-1], out=prefix[1:])
    return prefix


def _setup(env: IOEnv, segs: Segments
           ) -> Generator[Any, Any, Optional[tuple]]:
    """Shared phases 1-3; returns (aggs, starts, ends, ntimes) or None."""
    comm = env.comm
    offs, lens = segs
    lo = int(offs[0]) if offs.size else -1
    hi = int(offs[-1] + lens[-1]) if offs.size else -1
    extents = yield from comm.allgather((lo, hi), category="sync")
    nonempty = [(l, h) for (l, h) in extents if l >= 0]
    if not nonempty:
        return None
    fd_min = min(l for l, _ in nonempty)
    fd_max = max(h for _, h in nonempty)
    members = comm.desc.members
    aggs = default_aggregators(members, env.machine, env.hints)
    align = env.lfile.layout if env.hints.align_file_domains else None
    starts, ends = partition_file_domains(fd_min, fd_max, len(aggs), align)
    cb = env.hints.cb_buffer_size
    my_idx = aggs.index(comm.rank) if comm.rank in aggs else -1
    my_rounds = 0
    if my_idx >= 0:
        my_rounds = int(-(-(ends[my_idx] - starts[my_idx]) // cb))
    ntimes = yield from comm.allreduce(my_rounds, op=MAX, nbytes=8,
                                       category="sync")
    return aggs, starts, ends, int(ntimes), my_idx


def _send_lists_for_round(segs: Segments, aggs: list[int],
                          starts: np.ndarray, ends: np.ndarray,
                          rnd: int, cb: int) -> dict[int, Segments]:
    """My non-empty intersections with each aggregator's round window.

    Retained as the per-round reference implementation: the hot paths use
    :func:`plan_rounds` (one vectorized pass over all rounds), and the
    property tests assert the two agree on random fragmented patterns.

    Only the domains overlapping my overall extent are inspected — with
    hundreds of aggregators a rank typically touches one or two, and
    scanning all of them per round would cost O(P^2) across ranks.
    """
    offs, lens = segs
    if offs.size == 0:
        return {}
    my_lo = int(offs[0])
    my_hi = int(offs[-1] + lens[-1])
    a_first = int(np.searchsorted(ends, my_lo, side="right"))
    a_last = int(np.searchsorted(starts, my_hi, side="left"))
    out: dict[int, Segments] = {}
    for a in range(a_first, min(a_last, len(aggs))):
        w_lo = int(starts[a]) + rnd * cb
        w_hi = min(int(ends[a]), w_lo + cb)
        sub = intersect_range(segs, w_lo, w_hi)
        if sub[0].size:
            out[a] = sub
    return out


def plan_rounds(segs: Segments, aggs: list[int], starts: np.ndarray,
                ends: np.ndarray, cb: int
                ) -> list[tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
    """Precompute every round's window intersections in one pass.

    For each overlapping aggregator domain the segments are clipped once
    and split at collective-buffer window boundaries; each resulting
    piece is labeled with its round index.  Segments are sorted and
    non-overlapping, so piece round labels are non-decreasing and one
    round's send list is a ``searchsorted`` slice — the per-round
    ``intersect_range`` scans disappear entirely.

    Returns ``[(agg_index, piece_offs, piece_lens, piece_rounds), ...]``;
    feed to :func:`_send_lists_from_plan`.
    """
    offs, lens = segs
    if offs.size == 0:
        return []
    my_lo = int(offs[0])
    my_hi = int(offs[-1] + lens[-1])
    a_first = int(np.searchsorted(ends, my_lo, side="right"))
    a_last = min(int(np.searchsorted(starts, my_hi, side="left")), len(aggs))
    plan = []
    planned = 0
    for a in range(a_first, a_last):
        base = int(starts[a])
        d_offs, d_lens = intersect_range(segs, base, int(ends[a]))
        if d_offs.size == 0:
            continue
        d_ends = d_offs + d_lens
        w_first = (d_offs - base) // cb
        w_last = (d_ends - 1 - base) // cb
        npieces = w_last - w_first + 1
        total = int(npieces.sum())
        if total == d_offs.size:
            # no segment straddles a window boundary
            p_offs, p_lens, p_w = d_offs, d_lens, w_first
        else:
            seg_idx = np.repeat(np.arange(d_offs.size), npieces)
            first = np.zeros(d_offs.size, dtype=np.int64)
            np.cumsum(npieces[:-1], out=first[1:])
            k = np.arange(total, dtype=np.int64) - first[seg_idx]
            p_w = w_first[seg_idx] + k
            win_lo = base + p_w * cb
            p_offs = np.maximum(d_offs[seg_idx], win_lo)
            p_lens = np.minimum(d_ends[seg_idx], win_lo + cb) - p_offs
        plan.append((a, p_offs, p_lens, p_w))
        planned += total
    perf_counters.rounds_planned += planned
    return plan


def _send_lists_from_plan(plan, rnd: int) -> dict[int, Segments]:
    """One round's send lists out of a :func:`plan_rounds` result."""
    out: dict[int, Segments] = {}
    for a, p_offs, p_lens, p_w in plan:
        i0 = int(np.searchsorted(p_w, rnd, side="left"))
        i1 = int(np.searchsorted(p_w, rnd + 1, side="left"))
        if i1 > i0:
            out[a] = (p_offs[i0:i1], p_lens[i0:i1])
    return out


def _counts_vector(send_lists: dict[int, Segments], aggs: list[int],
                   size: int) -> np.ndarray:
    counts = np.zeros(size, dtype=np.int64)
    for a, (so, sl) in send_lists.items():
        counts[aggs[a]] = int(sl.sum())
    return counts


def collective_write(env: IOEnv, segs: Segments,
                     data: Optional[np.ndarray],
                     translate=None) -> Generator[Any, Any, int]:
    """ext2ph collective write of my ``segs`` (+dense ``data``); returns bytes.

    ``translate(sub) -> Segments`` (optional) maps the sender's window
    intersections to a different file space before they are shipped —
    ParColl's intermediate file views run the protocol in *logical* space
    and translate to physical segments at this boundary.  The translation
    must preserve total bytes and data order.
    """
    comm = env.comm
    setup = yield from _setup(env, segs)
    if setup is None:
        return 0
    aggs, starts, ends, ntimes, my_idx = setup
    cb = env.hints.cb_buffer_size
    offs, lens = segs
    prefix = _prefix_of(lens)
    total = int(lens.sum())
    if data is not None:
        data = np.asarray(data, dtype=np.uint8).ravel()
        if data.size != total:
            raise MPIIOError(f"data has {data.size} bytes, view covers {total}")
    model = data is None and env.lfile.store is None
    if data is None and env.lfile.store is not None:
        raise MPIIOError("verified-mode collective write requires data")

    memcpy_bw = comm.world.network.params.memcpy_bandwidth
    use_batch = comm.backend.fidelity("exchange", comm=comm) == "macro"
    pending: list = []
    node_info = None
    if env.hints.cb_node_consolidation:
        from repro.mpiio.consolidation import node_groups

        node_info = node_groups(comm, env.machine)
    plan = plan_rounds(segs, aggs, starts, ends, cb)
    if env.validator is not None:
        env.validator.check_exchange_plan(segs, plan, ntimes)
    for rnd in range(ntimes):
        send_lists = _send_lists_from_plan(plan, rnd)
        if node_info is not None:
            from repro.mpiio.consolidation import consolidated_write_round

            pieces_by_agg = {}
            for a, sub in send_lists.items():
                piece_data = (None if model
                              else extract_data(segs, prefix, data, sub))
                if translate is not None:
                    sub = translate(sub)
                pieces_by_agg[a] = (sub, piece_data)
            leader, members = node_info
            yield from consolidated_write_round(
                env, aggs, my_idx, rnd, pieces_by_agg, leader, members,
                memcpy_bw, _aggregate_and_write, _counts_vector)
            continue
        counts = _counts_vector(send_lists, aggs, comm.size)
        all_counts = yield from comm.alltoall(counts, nbytes_each=8,
                                              category="sync")
        # dispatch my pieces (local piece short-circuits the network)
        reqs = []
        batch: list = []
        local_piece = None
        for a, sub in send_lists.items():
            piece_data = None if model else extract_data(segs, prefix, data, sub)
            if translate is not None:
                sub = translate(sub)
            nbytes = int(sub[1].sum()) + SEG_HEADER_BYTES * sub[0].size
            if aggs[a] == comm.rank:
                local_piece = (sub, piece_data)
                continue
            payload = Payload(nbytes, (sub[0], sub[1], piece_data))
            if use_batch:
                batch.append((aggs[a], payload))
            else:
                reqs.append(comm.isend(payload, dest=aggs[a],
                                       tag=TP_TAG + rnd))
        if batch:
            reqs = comm.isend_batch(batch, tag=TP_TAG + rnd)
        if my_idx >= 0:
            yield from _aggregate_and_write(env, all_counts, local_piece,
                                            rnd, memcpy_bw, pending)
        if reqs:
            yield from comm.waitall(reqs, category="exchange")
    if pending:
        # split-phase: wait for the overlapped writes to drain
        t0 = comm.now
        for task in pending:
            yield Join(task)
        env.charge_io(t0)
    return total


def merge_pieces(pieces: list[tuple[Segments, Optional[np.ndarray]]],
                 verified: bool
                 ) -> tuple[Segments, Optional[np.ndarray]]:
    """Merge ``(segments, dense-data)`` pieces by file offset.

    Returns coalesced segments plus the correspondingly reordered dense
    bytes (None in model mode).  Raises on overlap — collective writers
    must target disjoint regions.
    """
    all_offs = np.concatenate([p[0][0] for p in pieces])
    all_lens = np.concatenate([p[0][1] for p in pieces])
    order = np.argsort(all_offs, kind="stable")
    sorted_offs = all_offs[order]
    sorted_lens = all_lens[order]
    merged_data = None
    if verified:
        # each piece's data is its segments densely packed in order, so
        # the concatenation of all piece datas holds segment k's bytes at
        # the exclusive prefix sum of all_lens — the reorder is a single
        # gather on the sorted segment permutation
        cat = np.concatenate([p[1] for p in pieces])
        src_start = _prefix_of(all_lens)[order]
        total = int(sorted_lens.sum())
        n = sorted_lens.size
        if n >= _VEC_MIN_SEGS and total < n * _VEC_MAX_AVG_BYTES:
            perf_counters.segments_vectorized += n
            merged_data = (cat[_gather_index(src_start, sorted_lens, total)]
                           if total else np.empty(0, np.uint8))
        else:
            merged_data = _merge_reorder_reference(cat, src_start,
                                                   sorted_lens)
    w_offs, w_lens = coalesce(sorted_offs, sorted_lens)
    if int(w_lens.sum()) != int(sorted_lens.sum()):
        raise MPIIOError(
            "overlapping segments reached one merge point; "
            "collective writes must target disjoint file regions"
        )
    return (w_offs, w_lens), merged_data


def _merge_reorder_reference(cat: np.ndarray, src_start: np.ndarray,
                             sorted_lens: np.ndarray) -> np.ndarray:
    """Chunk-loop reorder (retained reference; few/large-segments path)."""
    chunks = [cat[s:s + l]
              for s, l in zip(src_start.tolist(), sorted_lens.tolist())]
    return np.concatenate(chunks) if chunks else np.empty(0, np.uint8)


def _aggregate_and_write(env: IOEnv, all_counts: np.ndarray,
                         local_piece, rnd: int, memcpy_bw: float,
                         pending: Optional[list] = None
                         ) -> Generator[Any, Any, None]:
    """Aggregator side of one write round: collect, merge, write.

    With ``pipelined_io`` the file write runs as a background task
    (double-buffered split-phase I/O): the aggregator proceeds to the
    next round's exchange while the OST drains this round's window, and
    the caller joins all outstanding writes after the last round.
    """
    comm = env.comm
    sources = [s for s in range(comm.size)
               if s != comm.rank and int(all_counts[s]) > 0]
    recv_reqs = [comm.irecv(source=s, tag=TP_TAG + rnd) for s in sources]
    pieces = []
    if local_piece is not None:
        pieces.append(local_piece)
    got = yield from comm.waitall(recv_reqs, category="exchange")
    for payload, _status in got:
        sub_offs, sub_lens, piece_data = payload.data
        pieces.append(((sub_offs, sub_lens), piece_data))
    if not pieces:
        if env.validator is not None:
            env.validator.check_round_conservation(
                int(np.asarray(all_counts).sum()), 0, 0, rnd)
        return
    (w_offs, w_lens), merged_data = merge_pieces(
        pieces, verified=env.lfile.store is not None)
    # copy into the collective buffer costs a memcpy
    nbytes = int(w_lens.sum())
    if env.validator is not None:
        env.validator.check_round_conservation(
            int(np.asarray(all_counts).sum()),
            sum(int(p[0][1].sum()) for p in pieces), nbytes, rnd)
    copy_t = nbytes / memcpy_bw
    yield Sleep(copy_t)
    env.breakdown.add("compute", copy_t)
    write_gen = env.fs.write(env.lfile, client=comm.proc.rank,
                             offsets=w_offs, lengths=w_lens,
                             data=merged_data, retry=env.retry)
    if pending is not None and env.hints.pipelined_io:
        task = yield Spawn(write_gen, ("pipelined-write", rnd))
        pending.append(task)
        return
    t0 = comm.now
    yield from write_gen
    env.charge_io(t0)


def collective_read(env: IOEnv, segs: Segments,
                    translate=None) -> Generator[Any, Any, Optional[np.ndarray]]:
    """ext2ph collective read of my ``segs``; returns dense bytes (None in model).

    ``translate`` as in :func:`collective_write`: requests ship translated
    (physical) segments while placement into the caller's dense buffer
    uses the original (logical) ones.
    """
    comm = env.comm
    setup = yield from _setup(env, segs)
    if setup is None:
        return None if env.lfile.store is None else np.empty(0, np.uint8)
    aggs, starts, ends, ntimes, my_idx = setup
    cb = env.hints.cb_buffer_size
    offs, lens = segs
    prefix = _prefix_of(lens)
    total = int(lens.sum())
    verified = env.lfile.store is not None
    out = np.empty(total, dtype=np.uint8) if verified else None

    memcpy_bw = comm.world.network.params.memcpy_bandwidth
    use_batch = comm.backend.fidelity("exchange", comm=comm) == "macro"
    plan = plan_rounds(segs, aggs, starts, ends, cb)
    if env.validator is not None:
        env.validator.check_exchange_plan(segs, plan, ntimes)
    for rnd in range(ntimes):
        want_lists = _send_lists_from_plan(plan, rnd)
        counts = _counts_vector(want_lists, aggs, comm.size)
        all_counts = yield from comm.alltoall(counts, nbytes_each=8,
                                              category="sync")
        # send my request lists to remote aggregators (translated if needed)
        sent_lists = (want_lists if translate is None
                      else {a: translate(sub) for a, sub in want_lists.items()})
        req_reqs = []
        req_batch: list = []
        local_want = None
        for a, sub in sent_lists.items():
            if aggs[a] == comm.rank:
                local_want = sub
                continue
            nbytes = SEG_HEADER_BYTES * sub[0].size
            payload = Payload(nbytes, (sub[0], sub[1]))
            if use_batch:
                req_batch.append((aggs[a], payload))
            else:
                req_reqs.append(comm.isend(payload, dest=aggs[a],
                                           tag=TP_TAG + rnd))
        if req_batch:
            req_reqs = comm.isend_batch(req_batch, tag=TP_TAG + rnd)
        local_reply = None
        reply_reqs: list = []
        if my_idx >= 0:
            local_reply, reply_reqs = yield from _read_and_reply(
                env, all_counts, local_want, rnd, memcpy_bw)
        # collect replies for my requests; my own outbound replies are
        # still in flight (isends) — waiting for them before receiving
        # would deadlock two aggregators serving each other
        for a, sub in want_lists.items():
            if aggs[a] == comm.rank:
                if verified:
                    place_data(segs, prefix, out, sub, local_reply)
                continue
            payload = yield from comm.recv(source=aggs[a],
                                           tag=REPLY_TAG + rnd,
                                           category="exchange")
            if verified:
                place_data(segs, prefix, out, sub, payload.data)
        if reply_reqs:
            yield from comm.waitall(reply_reqs, category="exchange")
        if req_reqs:
            yield from comm.waitall(req_reqs, category="exchange")
    return out


def _read_and_reply(env: IOEnv, all_counts: np.ndarray, local_want,
                    rnd: int, memcpy_bw: float
                    ) -> Generator[Any, Any,
                                   tuple[Optional[np.ndarray], list]]:
    """Aggregator side of one read round: gather requests, read, reply.

    Returns ``(local_reply, reply_requests)`` — the reply isends are NOT
    awaited here: the caller must first receive its own incoming replies
    (two aggregators serving each other would otherwise cycle).
    """
    comm = env.comm
    sources = [s for s in range(comm.size)
               if s != comm.rank and int(all_counts[s]) > 0]
    reqs = [comm.irecv(source=s, tag=TP_TAG + rnd) for s in sources]
    got = yield from comm.waitall(reqs, category="exchange")
    requests: list[tuple[int, Segments]] = []
    for (payload, status) in got:
        sub_offs, sub_lens = payload.data
        src = comm.desc.rank_of.get(status.source, status.source)
        requests.append((src, (sub_offs, sub_lens)))
    if local_want is not None:
        requests.append((comm.rank, local_want))
    if not requests:
        return None, []
    union = coalesce(np.concatenate([r[1][0] for r in requests]),
                     np.concatenate([r[1][1] for r in requests]))
    t0 = comm.now
    union_data = yield from env.fs.read(env.lfile, client=comm.proc.rank,
                                        offsets=union[0], lengths=union[1],
                                        retry=env.retry)
    env.charge_io(t0)
    nbytes = int(union[1].sum())
    copy_t = nbytes / memcpy_bw
    yield Sleep(copy_t)
    env.breakdown.add("compute", copy_t)
    union_prefix = _prefix_of(union[1])
    local_reply = None
    verified = union_data is not None
    # replies go out as isends: a blocking (rendezvous) send here could
    # deadlock against a requester still waiting on another aggregator
    use_batch = comm.backend.fidelity("exchange", comm=comm) == "macro"
    reply_reqs = []
    reply_batch: list = []
    for src, sub in requests:
        piece = (extract_data(union, union_prefix, union_data, sub)
                 if verified else None)
        if src == comm.rank:
            local_reply = piece
            continue
        reply_bytes = int(sub[1].sum())
        payload = Payload(reply_bytes, piece)
        if use_batch:
            reply_batch.append((src, payload))
        else:
            reply_reqs.append(comm.isend(payload, dest=src,
                                         tag=REPLY_TAG + rnd))
    if reply_batch:
        reply_reqs = comm.isend_batch(reply_batch, tag=REPLY_TAG + rnd)
    return local_reply, reply_reqs
