"""The ``nodeagg`` protocol: intra-node request aggregation.

Two-level collective I/O in the style of Kang et al.: before any
inter-node exchange, the cores of one physical node funnel their whole
access (request list + data) to a node *leader* — intra-node traffic is a
memcpy-priced hop — and only the leaders run a collective over a derived
leaders-only communicator.  Where ``cb_node_consolidation`` consolidates
*per exchange round inside* ext2ph, this protocol aggregates *whole
requests before* the protocol runs, so the inter-node collective sees one
(merged, coalesced) request per node and its synchronization cost scales
with the node count, not the core count.

The inner collective composes with FA partitioning: with
``parcoll_ngroups > 1`` the leaders run ParColl over the leaders
communicator (grouped file areas of node-merged requests); otherwise
they run plain ext2ph.  Inner reads always use ext2ph — the read union
is re-derived per call and must not trip ParColl's stationary-pattern
replan guard.

Shared-state slots: ``("leaders", rank)`` caches this rank's
leaders-communicator handle (None on non-leaders), ``"fa_cache"`` holds
the inner ParColl grouping.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.datatypes.flatten import Segments, coalesce
from repro.mpiio.consolidation import _SEG_HEADER, node_groups
from repro.mpiio.protocols import (CollectiveProtocol, _reject_options,
                                   register_protocol)
from repro.mpiio.two_phase import (IOEnv, _prefix_of, collective_read,
                                   collective_write, extract_data,
                                   merge_pieces)
from repro.sim.effects import Sleep
from repro.simmpi.payload import Payload

#: tag bases for node-aggregation traffic (clear of two-phase and
#: consolidation tags)
NA_DATA_TAG = (1 << 20) + 30_000_000
NA_REQ_TAG = (1 << 20) + 40_000_000
NA_REP_TAG = (1 << 20) + 50_000_000

_EMPTY_SEGS = (np.empty(0, np.int64), np.empty(0, np.int64))


def _leaders_comm(comm, machine, state) -> Generator[Any, Any, Any]:
    """The leaders-only communicator (None on non-leaders), cached.

    The first collective call on the file pays one ``comm.split``; the
    result depends only on the (communicator, machine) pair, so it is
    cached per rank in the protocol's state slot.
    """
    key = ("leaders", comm.rank)
    if key in state:
        return state[key]
    leader, _members = node_groups(comm, machine)
    sub = yield from comm.split(color=0 if comm.rank == leader else None,
                                category="sync")
    state[key] = sub
    return sub


def _inner_env(env: IOEnv, sub, fa: bool) -> IOEnv:
    """The leaders-communicator environment for the inner collective.

    Parent-communicator aggregator placements (``cb_config_ranks``) do
    not translate to leader ranks, so the inner collective falls back to
    the default per-node aggregator selection; node consolidation is
    moot (one rank per node already).  The node-merged union is
    re-derived per call, so the inner FA plan must not assume a
    stationary pattern: ``parcoll_replan='once'`` is upgraded to
    ``'auto'`` (an explicit ``'always'`` is respected).
    """
    hints = env.hints.with_(cb_config_ranks=None,
                            cb_node_consolidation=False,
                            parcoll_ngroups=env.hints.parcoll_ngroups
                            if fa else 1,
                            parcoll_replan="auto"
                            if env.hints.parcoll_replan == "once"
                            else env.hints.parcoll_replan)
    return IOEnv(comm=sub, machine=env.machine, fs=env.fs, lfile=env.lfile,
                 hints=hints, retry=env.retry, validator=env.validator)


def _charge_memcpy(env: IOEnv, nbytes: int) -> Generator[Any, Any, None]:
    """Assembling/splitting the node buffer is a memcpy on the leader."""
    if nbytes <= 0:
        return
    copy_t = nbytes / env.comm.world.network.params.memcpy_bandwidth
    yield Sleep(copy_t)
    env.breakdown.add("compute", copy_t)


def nodeagg_write(env: IOEnv, segs: Segments, data: Optional[np.ndarray],
                  state: dict) -> Generator[Any, Any, int]:
    """Node-aggregated collective write; returns bytes this rank wrote."""
    comm = env.comm
    leader, members = node_groups(comm, env.machine)
    sub = yield from _leaders_comm(comm, env.machine, state)
    offs, lens = segs
    total = int(lens.sum())
    verified = env.lfile.store is not None
    if comm.rank != leader:
        nbytes = total + _SEG_HEADER * int(offs.size)
        req = comm.isend(Payload(nbytes, (offs, lens, data)), dest=leader,
                         tag=NA_DATA_TAG)
        yield from comm.waitall([req], category="exchange")
        return total

    # leader: gather the node's requests, merge, run the inner collective
    pieces = [(segs, data)] if offs.size else []
    for m in members:
        if m == comm.rank:
            continue
        payload = yield from comm.recv(source=m, tag=NA_DATA_TAG,
                                       category="exchange")
        m_offs, m_lens, m_data = payload.data
        if m_offs.size:
            pieces.append(((m_offs, m_lens), m_data))
    if not pieces:
        m_segs, m_data = _EMPTY_SEGS, (np.empty(0, np.uint8) if verified
                                       else None)
    elif len(pieces) == 1:
        m_segs, m_data = pieces[0]
    else:
        m_segs, m_data = merge_pieces(pieces, verified)
        yield from _charge_memcpy(env, int(m_segs[1].sum()))
    sub_env = _inner_env(env, sub, fa=env.hints.parcoll_ngroups > 1)
    if env.hints.parcoll_ngroups > 1:
        from repro.parcoll.driver import parcoll_write

        yield from parcoll_write(sub_env, m_segs, m_data,
                                 state.setdefault("fa_cache", {}))
    else:
        yield from collective_write(sub_env, m_segs, m_data)
    return total


def nodeagg_read(env: IOEnv, segs: Segments, state: dict
                 ) -> Generator[Any, Any, Optional[np.ndarray]]:
    """Node-aggregated collective read; returns this rank's dense bytes."""
    comm = env.comm
    leader, members = node_groups(comm, env.machine)
    sub = yield from _leaders_comm(comm, env.machine, state)
    offs, lens = segs
    total = int(lens.sum())
    verified = env.lfile.store is not None
    if comm.rank != leader:
        req = comm.isend(Payload(_SEG_HEADER * int(offs.size), (offs, lens)),
                         dest=leader, tag=NA_REQ_TAG)
        yield from comm.waitall([req], category="exchange")
        payload = yield from comm.recv(source=leader, tag=NA_REP_TAG,
                                       category="exchange")
        return payload.data

    # leader: gather request lists, read the node union, scatter replies
    requests = [(comm.rank, segs)]
    for m in members:
        if m == comm.rank:
            continue
        payload = yield from comm.recv(source=m, tag=NA_REQ_TAG,
                                       category="exchange")
        requests.append((m, payload.data))
    nonempty = [sub_segs for _, sub_segs in requests if sub_segs[0].size]
    union = (coalesce(np.concatenate([s[0] for s in nonempty]),
                      np.concatenate([s[1] for s in nonempty]))
             if nonempty else _EMPTY_SEGS)
    union_data = yield from collective_read(_inner_env(env, sub, fa=False),
                                            union)
    have_data = union_data is not None
    union_prefix = _prefix_of(union[1])
    forwarded = sum(int(s[1].sum()) for m, s in requests if m != comm.rank)
    if len(members) > 1:
        yield from _charge_memcpy(env, forwarded)
    use_batch = comm.backend.fidelity("exchange", comm=comm) == "macro"
    reply_reqs = []
    reply_batch: list = []
    my_piece: Optional[np.ndarray] = None
    for src, sub_segs in requests:
        piece = (extract_data(union, union_prefix, union_data, sub_segs)
                 if have_data else None)
        if src == comm.rank:
            my_piece = piece
            continue
        payload = Payload(int(sub_segs[1].sum()), piece)
        if use_batch:
            reply_batch.append((src, payload))
        else:
            reply_reqs.append(comm.isend(payload, dest=src, tag=NA_REP_TAG))
    if reply_batch:
        reply_reqs = comm.isend_batch(reply_batch, tag=NA_REP_TAG)
    if reply_reqs:
        yield from comm.waitall(reply_reqs, category="exchange")
    if my_piece is None and verified:
        my_piece = np.empty(0, np.uint8)
    return my_piece


class NodeAggProtocol(CollectiveProtocol):
    """Intra-node request aggregation before the inter-node exchange."""

    name = "nodeagg"

    def write_all(self, env, segs, data, state, view):
        return nodeagg_write(env, segs, data, state)

    def read_all(self, env, segs, state, view):
        return nodeagg_read(env, segs, state)

    @classmethod
    def from_spec(cls, options: str) -> "NodeAggProtocol":
        _reject_options(cls.name, options)
        return cls()


register_protocol(NodeAggProtocol.name, NodeAggProtocol.from_spec)
