"""The ``parcoll`` protocol: partitioned collective I/O.

A thin registry adapter over :mod:`repro.parcoll.driver`.  The protocol's
shared-state slot *is* the old ``shared.parcoll_cache`` dict — same key
shapes (``("plan", rank)`` for the held grouping, ``(plan.cache_key(),
rank)`` for split subcommunicators), so cached groupings survive the
registry migration byte-for-byte and the determinism gate stays green.
"""

from __future__ import annotations

from repro.mpiio.protocols import (CollectiveProtocol, _reject_options,
                                   register_protocol)


class ParCollProtocol(CollectiveProtocol):
    """Partitioned collective I/O (the paper's contribution)."""

    name = "parcoll"

    def write_all(self, env, segs, data, state, view):
        from repro.parcoll.driver import parcoll_write

        return parcoll_write(env, segs, data, state, view)

    def read_all(self, env, segs, state, view):
        from repro.parcoll.driver import parcoll_read

        return parcoll_read(env, segs, state, view)

    @classmethod
    def from_spec(cls, options: str) -> "ParCollProtocol":
        _reject_options(cls.name, options)
        return cls()


register_protocol(ParCollProtocol.name, ParCollProtocol.from_spec)
