"""The ``listio`` protocol: direct list I/O over the flattened extent list.

PVFS-style list I/O (Ching et al.): instead of aggregating through
two-phase exchange, each rank ships its flattened (offset, length) list
to the file system directly — but, unlike ``independent``'s single
unbounded call, in batches of at most ``listio_max_segments`` extents per
request, mirroring the fixed-size accessor arrays of a real list-I/O API.
Adjacent extents are coalesced first (the flattening step), so dense
accesses collapse to few large batches while fragmented interleaves pay
one round of per-call costs (RPC setup, lock traffic, seeks) per batch —
the cost shape that separates list I/O from both independent I/O and
collective aggregation.

No inter-process coordination happens at all: like ``independent`` this
is a collective in name only, so it needs no shared state.

Spec options: ``listio:<n>`` overrides the ``listio_max_segments`` hint
for this file (e.g. ``listio:16``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.datatypes.flatten import Segments, coalesce
from repro.errors import ParCollError
from repro.mpiio.protocols import CollectiveProtocol, register_protocol


def listio_write(env, segs: Segments, data: Optional[np.ndarray],
                 max_segments: int) -> Generator[Any, Any, int]:
    """Write my extent list in bounded batches; returns bytes written."""
    offs, lens = coalesce(*segs)
    total = int(lens.sum())
    if total == 0:
        return 0
    comm = env.comm
    t0 = comm.now
    pos = 0
    for i in range(0, offs.size, max_segments):
        batch_offs = offs[i:i + max_segments]
        batch_lens = lens[i:i + max_segments]
        batch_bytes = int(batch_lens.sum())
        batch_data = (None if data is None
                      else data[pos:pos + batch_bytes])
        pos += batch_bytes
        yield from env.fs.write(env.lfile, client=comm.proc.rank,
                                offsets=batch_offs, lengths=batch_lens,
                                data=batch_data, retry=env.retry)
    env.charge_io(t0)
    return total


def listio_read(env, segs: Segments, max_segments: int
                ) -> Generator[Any, Any, Optional[np.ndarray]]:
    """Read my extent list in bounded batches; dense bytes (None in model)."""
    offs, lens = coalesce(*segs)
    total = int(lens.sum())
    verified = env.lfile.store is not None
    if total == 0:
        return np.empty(0, np.uint8) if verified else None
    comm = env.comm
    t0 = comm.now
    out = []
    for i in range(0, offs.size, max_segments):
        got = yield from env.fs.read(env.lfile, client=comm.proc.rank,
                                     offsets=offs[i:i + max_segments],
                                     lengths=lens[i:i + max_segments],
                                     retry=env.retry)
        if got is not None:
            out.append(got)
    env.charge_io(t0)
    if not verified:
        return None
    return np.concatenate(out) if out else np.empty(0, np.uint8)


class ListIOProtocol(CollectiveProtocol):
    """List/datatype I/O: the extent list goes to the server directly."""

    name = "listio"

    def __init__(self, max_segments: Optional[int] = None):
        #: per-request extent cap; None defers to the hint
        self.max_segments = max_segments

    def _limit(self, env) -> int:
        return (self.max_segments if self.max_segments is not None
                else env.hints.listio_max_segments)

    def write_all(self, env, segs, data, state, view):
        return listio_write(env, segs, data, self._limit(env))

    def read_all(self, env, segs, state, view):
        return listio_read(env, segs, self._limit(env))

    def describe(self) -> str:
        if self.max_segments is None:
            return self.name
        return f"{self.name}:{self.max_segments}"

    @classmethod
    def from_spec(cls, options: str) -> "ListIOProtocol":
        if not options:
            return cls()
        try:
            max_segments = int(options)
        except ValueError:
            raise ParCollError(
                f"listio: expected an integer max-segments option, "
                f"got {options!r}"
            ) from None
        if max_segments <= 0:
            raise ParCollError(
                f"listio: max segments must be positive, got {max_segments}")
        return cls(max_segments)


register_protocol(ListIOProtocol.name, ListIOProtocol.from_spec)
