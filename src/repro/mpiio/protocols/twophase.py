"""The ``ext2ph`` protocol: extended two-phase over the full communicator.

A thin registry adapter over :mod:`repro.mpiio.two_phase` — the paper's
baseline and the engine ParColl reuses per subgroup.  Delegating keeps
the event sequence identical to the pre-registry dispatch, which the
``ref_hotpath.json`` determinism gate pins down.
"""

from __future__ import annotations

from repro.mpiio.protocols import (CollectiveProtocol, _reject_options,
                                   register_protocol)
from repro.mpiio.two_phase import collective_read, collective_write


class Ext2PhProtocol(CollectiveProtocol):
    """ROMIO-style extended two-phase collective I/O (Section 2.2)."""

    name = "ext2ph"

    def write_all(self, env, segs, data, state, view):
        return collective_write(env, segs, data)

    def read_all(self, env, segs, state, view):
        return collective_read(env, segs)

    @classmethod
    def from_spec(cls, options: str) -> "Ext2PhProtocol":
        _reject_options(cls.name, options)
        return cls()


register_protocol(Ext2PhProtocol.name, Ext2PhProtocol.from_spec)
