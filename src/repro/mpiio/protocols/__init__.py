"""Pluggable collective-I/O protocols.

A :class:`CollectiveProtocol` turns one collective access — an
:class:`~repro.mpiio.two_phase.IOEnv` plus the rank's physical segments —
into simulation events.  The file layer (:mod:`repro.mpiio.file`) holds no
strategy logic of its own: ``write_at_all``/``read_at_all`` resolve the
``protocol`` hint through this registry and delegate, so a rival strategy
is a new module that registers itself here, never an edit to the file
layer.

Implementations register themselves on import (see the builtin modules in
this package); call sites resolve them by spec string only:

``"independent"``
    every rank issues its own file-system operation (the paper's
    "w/o Coll" configuration);
``"ext2ph"``
    the extended two-phase engine over the whole communicator (the
    paper's baseline);
``"parcoll"``
    partitioned collective I/O (:mod:`repro.parcoll`);
``"nodeagg"``
    intra-node request aggregation: cores funnel requests through a node
    leader before the inter-node exchange (Kang et al.);
``"listio"`` / ``"listio:<max_segments>"``
    list I/O: the flattened extent list goes to the file system directly,
    in bounded batches (Ching et al., PVFS).

Like collective backends, every rank of a communicator must run one
collective call through the same protocol — the file layer enforces this
with a symmetry ledger and raises :class:`~repro.errors.ParCollError` on
divergence, mirroring the backend fidelity-symmetry check.

Per-protocol shared state (cached subgroup communicators, partition
plans, leader communicators) lives in named slots on the shared file
handle (``_SharedFile.state_for(name)``) — each protocol sees only its
own dict, passed to every call as ``state``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Union

import numpy as np

from repro.datatypes.flatten import Segments
from repro.errors import ParCollError


class CollectiveProtocol:
    """One collective-I/O strategy: segments + data -> simulation events.

    ``write_all``/``read_all`` are generator functions driven by the
    simulation engine exactly like the rank programs themselves; they run
    on every rank of the communicator (collective semantics) and may use
    any :class:`~repro.simmpi.world.Communicator` operation.

    ``state`` is this protocol's private slot of the shared file handle:
    one dict per (file, protocol-name) pair, shared by all ranks, empty
    on first use and invalidated by the file layer when the protocol or a
    partitioning-relevant hint changes mid-file.
    """

    #: registry name of this protocol (set by subclasses)
    name: str = "?"

    def write_all(self, env, segs: Segments, data: Optional[np.ndarray],
                  state: dict, view) -> Generator[Any, Any, int]:
        """Collectively write ``segs`` (+dense ``data``); returns bytes
        written by this rank."""
        raise NotImplementedError

    def read_all(self, env, segs: Segments, state: dict, view
                 ) -> Generator[Any, Any, Optional[np.ndarray]]:
        """Collectively read ``segs``; returns dense bytes (None in model
        mode)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Canonical spec string that reconstructs this protocol."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()!r}>"


#: name -> factory(option string after ':') -> protocol instance
_REGISTRY: dict[str, Callable[[str], CollectiveProtocol]] = {}


def register_protocol(name: str,
                      factory: Callable[[str], CollectiveProtocol]) -> None:
    """Register a protocol factory under ``name``."""
    _REGISTRY[name] = factory


def _ensure_builtins() -> None:
    """Import the builtin protocol modules so their registrations run."""
    import repro.mpiio.protocols.direct  # noqa: F401  ('independent')
    import repro.mpiio.protocols.twophase  # noqa: F401  ('ext2ph')
    import repro.mpiio.protocols.partitioned  # noqa: F401  ('parcoll')
    import repro.mpiio.protocols.nodeagg  # noqa: F401  ('nodeagg')
    import repro.mpiio.protocols.listio  # noqa: F401  ('listio')


def available_protocols() -> tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def resolve_protocol(spec: Union[str, CollectiveProtocol]
                     ) -> CollectiveProtocol:
    """Turn a spec string (or a ready protocol) into a protocol instance.

    Unknown names raise :class:`~repro.errors.ParCollError` naming the
    registered protocols (the hint layer re-wraps this as
    :class:`~repro.errors.MPIIOError` for invalid-hint call sites).
    """
    if isinstance(spec, CollectiveProtocol):
        return spec
    if not isinstance(spec, str):
        raise ParCollError(
            f"protocol spec must be a string or a CollectiveProtocol, "
            f"got {type(spec).__name__}"
        )
    _ensure_builtins()
    name, _, options = spec.partition(":")
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ParCollError(
            f"unknown collective protocol {name!r}; registered protocols: "
            f"{', '.join(available_protocols())}"
        )
    return factory(options)


def _reject_options(name: str, options: str) -> None:
    if options:
        raise ParCollError(
            f"collective protocol {name!r} takes no options, got {options!r}"
        )
