"""The ``independent`` protocol: no coordination, no aggregation.

A thin registry adapter over :mod:`repro.mpiio.independent` — every rank
translates its own view access and issues the file-system operation
itself (the paper's "Cray w/o Coll" configuration).  Delegating keeps the
event sequence identical to the pre-registry dispatch, which the
``ref_hotpath.json`` determinism gate pins down.
"""

from __future__ import annotations

from repro.mpiio.independent import independent_read, independent_write
from repro.mpiio.protocols import (CollectiveProtocol, _reject_options,
                                   register_protocol)


class IndependentProtocol(CollectiveProtocol):
    """Every rank writes/reads directly; collective in name only."""

    name = "independent"

    def write_all(self, env, segs, data, state, view):
        return independent_write(env, segs, data)

    def read_all(self, env, segs, state, view):
        return independent_read(env, segs)

    @classmethod
    def from_spec(cls, options: str) -> "IndependentProtocol":
        _reject_options(cls.name, options)
        return cls()


register_protocol(IndependentProtocol.name, IndependentProtocol.from_spec)
