"""Data sieving: ROMIO's independent-I/O optimization.

A noncontiguous independent access touching many small extents can beat
per-extent I/O by operating on whole *sieve windows*:

* **reads** fetch the covering window once and filter in memory (already
  available through :func:`repro.mpiio.independent.independent_read`);
* **writes** must read-modify-write: fetch the window, overlay the new
  bytes, write the window back — and hold the window's extent lock
  exclusively meanwhile (in real ROMIO this is what makes concurrent
  sieved writes to shared regions so painful).

This module implements the write side with the classic trade-off
surfaced: fewer, larger I/O operations versus extra read traffic and
wider lock footprints.  The two-phase engine makes sieved writes mostly
unnecessary (aggregated windows are dense), which is itself one of the
paper's background points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.datatypes.flatten import Segments
from repro.datatypes.packing import scatter_segments
from repro.errors import MPIIOError
from repro.mpiio.two_phase import IOEnv


@dataclass(frozen=True)
class SieveConfig:
    """Sieving policy knobs (ROMIO's ind_wr_buffer_size analog)."""

    buffer_size: int = 512 << 10
    #: sieve only when covered/span density is at least this
    min_density: float = 0.1
    #: never sieve accesses with fewer extents than this (direct is fine)
    min_extents: int = 4

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise MPIIOError("sieve buffer_size must be positive")
        if not 0 < self.min_density <= 1:
            raise MPIIOError("min_density must be in (0, 1]")


def should_sieve(segs: Segments, cfg: SieveConfig) -> bool:
    """Decide whether sieving pays for this access."""
    offs, lens = segs
    if offs.size < cfg.min_extents:
        return False
    span = int(offs[-1] + lens[-1] - offs[0])
    if span <= 0:
        return False
    return int(lens.sum()) >= cfg.min_density * span


def sieved_write(env: IOEnv, segs: Segments, data: Optional[np.ndarray],
                 cfg: Optional[SieveConfig] = None
                 ) -> Generator[Any, Any, int]:
    """Write ``segs`` via read-modify-write sieve windows.

    Falls back to the direct path when sieving would not pay.  Returns
    bytes of user data written (window traffic is accounted in the file
    system's counters, visible as read amplification).
    """
    from repro.mpiio.independent import independent_write

    cfg = cfg or SieveConfig()
    offs, lens = segs
    total = int(lens.sum())
    if total == 0:
        return 0
    if not should_sieve(segs, cfg):
        return (yield from independent_write(env, segs, data))

    comm = env.comm
    verified = env.lfile.store is not None
    if verified and data is None:
        raise MPIIOError("verified-mode sieved write requires data")
    if data is not None:
        data = np.asarray(data, dtype=np.uint8).ravel()
        if data.size != total:
            raise MPIIOError(f"data has {data.size} bytes, access covers {total}")

    span_lo = int(offs[0])
    span_hi = int(offs[-1] + lens[-1])
    pos = 0  # cursor into the dense user data
    t0 = comm.now
    w_lo = span_lo
    while w_lo < span_hi:
        w_hi = min(w_lo + cfg.buffer_size, span_hi)
        # extents of this access inside the window
        from repro.datatypes.flatten import intersect_range

        sub_offs, sub_lens = intersect_range(segs, w_lo, w_hi)
        sub_total = int(sub_lens.sum())
        if sub_total:
            window = yield from env.fs.read(env.lfile, client=comm.proc.rank,
                                            offsets=[w_lo],
                                            lengths=[w_hi - w_lo],
                                            retry=env.retry)
            if verified:
                scatter_segments(window, sub_offs - w_lo, sub_lens,
                                 data[pos:pos + sub_total])
            pos += sub_total
            yield from env.fs.write(env.lfile, client=comm.proc.rank,
                                    offsets=[w_lo], lengths=[w_hi - w_lo],
                                    data=window, retry=env.retry)
        w_lo = w_hi
    env.charge_io(t0)
    return total
