"""MPI-IO file objects: open/view/read/write/close.

``MPIIO`` is the per-simulation library instance (binds the world to a
file system); ``MPIFile`` is one rank's handle on an open file.  Explicit
offsets are in *etype units* (MPI semantics); data buffers are dense
``uint8`` arrays matching the view's data order, or ``None`` with an
explicit ``nbytes`` in model mode.

``*_all`` operations resolve the ``protocol`` hint through the
:mod:`repro.mpiio.protocols` registry and delegate — the file layer holds
no strategy logic of its own.  Builtins: ``ext2ph`` (the paper's
baseline), ``parcoll`` (partitioned collective I/O), ``independent``
(the paper's "w/o Coll" configuration), ``nodeagg`` (intra-node request
aggregation) and ``listio`` (direct list I/O).  All ranks of one
collective call must resolve the same protocol; divergence raises
:class:`~repro.errors.ParCollError` (the same symmetry contract the
collective backends enforce).

On close, every rank's per-category times since open are gathered to rank
0 — the run summary the paper's profiling reports at file close.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, Optional

import numpy as np

from repro.datatypes.base import BYTE, Datatype
from repro.errors import MPIIOError, ParCollError
from repro.lustre.fs import LustreFS
from repro.mpiio.fileview import FileView
from repro.mpiio.hints import IOHints
from repro.mpiio.independent import independent_read, independent_write
from repro.mpiio.protocols import available_protocols, resolve_protocol
from repro.mpiio.two_phase import IOEnv
from repro.simmpi.world import Communicator, World

#: hints whose change invalidates cached per-protocol shared state:
#: the protocol itself, plus everything a cached grouping / aggregator
#: placement / leader split was derived from
_STATE_HINTS = ("protocol", "parcoll_ngroups", "parcoll_intermediate_views",
                "parcoll_data_path", "parcoll_replan", "cb_nodes",
                "cb_config_ranks", "cb_buffer_size", "align_file_domains")


class _SharedFile:
    """State shared by all ranks holding one (communicator, file) pair."""

    __slots__ = ("lfile", "protocol_state", "protocol_ops")

    def __init__(self, lfile):
        self.lfile = lfile
        #: per-protocol shared-state slots, keyed by protocol name
        #: (cached subgroup communicators, partition plans, leader comms)
        self.protocol_state: dict[str, dict] = {}
        #: per-collective-op protocol ledger for the symmetry check
        self.protocol_ops: dict[int, list] = {}

    def state_for(self, name: str) -> dict:
        """This protocol's private shared-state slot (created on demand)."""
        return self.protocol_state.setdefault(name, {})

    def invalidate_state(self) -> None:
        """Drop every protocol's cached shared state (hints changed)."""
        self.protocol_state.clear()

    @property
    def parcoll_cache(self) -> dict:
        """ParColl's state slot (kept under its historical name)."""
        return self.state_for("parcoll")


class MPIIO:
    """The MPI-IO library instance for one simulated world.

    ``validate`` turns on the :mod:`repro.validate` correctness oracle
    for every file opened through this instance: ``True``/``False`` are
    explicit, ``None`` (default) defers to the ``REPRO_VALIDATE``
    environment variable.  Files may override per open via the
    ``parcoll_validate`` hint.
    """

    def __init__(self, world: World, fs: LustreFS,
                 validate: Optional[bool] = None,
                 default_hints: Optional[Mapping[str, Any]] = None):
        self.world = world
        self.fs = fs
        #: hint defaults applied under every dict/None ``open`` (explicit
        #: IOHints instances bypass them); how ExperimentConfig threads a
        #: platform-wide protocol choice through to workloads
        self.default_hints = dict(default_hints) if default_hints else None
        self._shared: dict[tuple, _SharedFile] = {}
        if validate is None:
            from repro.validate import env_validate_enabled

            validate = env_validate_enabled()
        self.validator = None
        if validate:
            from repro.validate import Validator

            self.validator = Validator()

    def _hint_validator(self, hints: IOHints):
        """The validator a file with ``hints`` should use (or None).

        A ``parcoll_validate=True`` hint on a non-validating platform
        creates the shared validator lazily, so single-file validation
        needs no platform plumbing.
        """
        if hints.parcoll_validate is False:
            return None
        if hints.parcoll_validate and self.validator is None:
            from repro.validate import Validator

            self.validator = Validator()
        return self.validator

    def open(self, comm: Communicator, name: str,
             hints: Optional[IOHints | dict] = None,
             stripe_count: Optional[int] = None,
             stripe_size: Optional[int] = None
             ) -> Generator[Any, Any, "MPIFile"]:
        """Collective open: every rank of ``comm`` must call."""
        if hints is None or isinstance(hints, dict):
            merged = dict(self.default_hints or {})
            merged.update(hints or {})
            hints = IOHints.from_dict(merged)
        t0 = comm.now
        lfile = yield from self.fs.open(name, create=True,
                                        stripe_count=stripe_count,
                                        stripe_size=stripe_size,
                                        client=comm.proc.rank)
        comm.proc.breakdown.add("meta", comm.now - t0)
        key = (comm.desc.ctx, name)
        shared = self._shared.get(key)
        if shared is None:
            shared = _SharedFile(lfile)
            self._shared[key] = shared
        return MPIFile(self, comm, shared, hints)


class MPIFile:
    """One rank's handle on an open file."""

    def __init__(self, io: MPIIO, comm: Communicator, shared: _SharedFile,
                 hints: IOHints):
        self.io = io
        #: the communicator the file was opened on (no backend override)
        self._caller_comm = comm
        self.shared = shared
        self.hints = hints
        self.comm = self._hinted_comm()
        self._protocol = resolve_protocol(hints.protocol)
        self.view = FileView(0, BYTE, BYTE)
        self._fp = 0  # individual file pointer, in etype units
        self._coll_seq = 0  # collective-op counter (protocol symmetry)
        self._open_snapshot = comm.proc.breakdown.snapshot()
        self._closed = False
        #: active correctness oracle for this file (None = off)
        self._validator = io._hint_validator(hints)

    def _hinted_comm(self) -> Communicator:
        """The file's working communicator: the caller's, with the
        ``collective_mode`` hint installed as a backend override.  All
        ranks open with the same hints, so overrides stay symmetric."""
        if self.hints.collective_mode is None:
            return self._caller_comm
        return self._caller_comm.with_backend(self.hints.collective_mode)

    # ------------------------------------------------------------------
    @property
    def lfile(self):
        return self.shared.lfile

    def _env(self) -> IOEnv:
        return IOEnv(comm=self.comm, machine=self.io.world.machine,
                     fs=self.io.fs, lfile=self.lfile, hints=self.hints,
                     retry=self._retry_policy(), validator=self._validator)

    def _retry_policy(self):
        """Effective RetryPolicy: the fs default plus any hint overrides.

        None (no overrides) keeps the platform policy — the env then
        defers to ``fs.retry`` at each call, so zero-fault runs build no
        policy objects at all.
        """
        overrides = self.hints.retry_overrides()
        if not overrides:
            return None
        try:
            return self.io.fs.retry.with_(**overrides)
        except Exception as exc:  # ConfigError from RetryPolicy validation
            raise MPIIOError(f"invalid retry hints: {exc}") from exc

    def set_view(self, disp: int = 0, etype: Datatype = BYTE,
                 filetype: Optional[Datatype] = None) -> None:
        """Install a new file view; resets the individual file pointer."""
        self._check_open()
        self.view = FileView(disp, etype, filetype)
        self._fp = 0

    def set_hints(self, **kwargs: Any) -> None:
        """Adjust hints on an open file (e.g. switch protocol per phase).

        Like ``MPI_File_set_info`` this is called symmetrically on every
        rank.  Changing the protocol or any hint a cached grouping was
        derived from (:data:`_STATE_HINTS`) drops the per-protocol shared
        state: a ParColl partition plan or a nodeagg leader communicator
        cached under the old hints must not leak into the new epoch.
        """
        old = self.hints
        self.hints = old.with_(**kwargs)
        if "collective_mode" in kwargs:
            self.comm = self._hinted_comm()
        if "parcoll_validate" in kwargs:
            self._validator = self.io._hint_validator(self.hints)
        self._protocol = resolve_protocol(self.hints.protocol)
        if any(getattr(old, h) != getattr(self.hints, h)
               for h in _STATE_HINTS):
            self.shared.invalidate_state()

    def set_info(self, info: Mapping[str, Any]) -> None:
        """MPI_File_set_info analog: apply a hint mapping to an open file."""
        self.set_hints(**dict(info))

    def _dispatch(self):
        """The (protocol, shared-state slot) for one collective op.

        Mirrors the backend fidelity-symmetry check: each rank logs the
        protocol it resolved for its n-th collective op in a shared
        ledger; the first divergence raises :class:`ParCollError` on the
        rank that exposes it.  Entries clear once every rank arrived, so
        the ledger stays O(in-flight ops).
        """
        proto = self._protocol
        spec = proto.describe()
        ledger = self.shared.protocol_ops
        self._coll_seq += 1
        entry = ledger.get(self._coll_seq)
        if entry is None:
            entry = [spec, self.comm.rank, 0]
            ledger[self._coll_seq] = entry
        elif entry[0] != spec:
            raise ParCollError(
                f"collective protocol mismatch on {self.lfile.name!r} "
                f"op #{self._coll_seq}: rank {self.comm.rank} uses "
                f"{spec!r} but rank {entry[1]} used {entry[0]!r}; all "
                f"ranks must resolve the same protocol (registered: "
                f"{', '.join(available_protocols())})"
            )
        entry[2] += 1
        if entry[2] == self.comm.size:
            del ledger[self._coll_seq]
        return proto, self.shared.state_for(proto.name)

    def _check_open(self) -> None:
        if self._closed:
            raise MPIIOError("operation on a closed file")

    def _access(self, offset_et: int, nbytes: int):
        if offset_et < 0 or nbytes < 0:
            raise MPIIOError(f"invalid access (offset {offset_et}, {nbytes}B)")
        es = self.view.etype.size
        lo = offset_et * es
        return self.view.segments_for(lo, lo + nbytes)

    @staticmethod
    def _data_nbytes(data: Optional[np.ndarray], nbytes: Optional[int]) -> int:
        if data is not None:
            arr = np.asarray(data)
            return int(arr.size * arr.itemsize)
        if nbytes is None:
            raise MPIIOError("model-mode access needs an explicit nbytes")
        return int(nbytes)

    @staticmethod
    def _as_bytes(data: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if data is None:
            return None
        arr = np.asarray(data)
        return np.frombuffer(arr.tobytes(), dtype=np.uint8) if arr.dtype != np.uint8 \
            else arr.ravel()

    # ------------------------------------------------------------------
    # collective operations (every rank of the communicator must call)
    # ------------------------------------------------------------------
    def write_at_all(self, offset_et: int, data: Optional[np.ndarray] = None,
                     nbytes: Optional[int] = None
                     ) -> Generator[Any, Any, int]:
        """Collective write at an explicit offset (etype units)."""
        self._check_open()
        n = self._data_nbytes(data, nbytes)
        segs = self._access(offset_et, n)
        payload = self._as_bytes(data)
        env = self._env()
        if self._validator is not None:
            self._validator.record_write(self.lfile, segs, payload)
        proto, state = self._dispatch()
        written = yield from proto.write_all(env, segs, payload, state,
                                             self.view)
        if self._validator is not None:
            self._validator.after_collective_write(self.lfile, self.comm.size)
        return written

    def read_at_all(self, offset_et: int, nbytes: int
                    ) -> Generator[Any, Any, Optional[np.ndarray]]:
        """Collective read at an explicit offset (etype units)."""
        self._check_open()
        segs = self._access(offset_et, nbytes)
        env = self._env()
        proto, state = self._dispatch()
        out = yield from proto.read_all(env, segs, state, self.view)
        if self._validator is not None:
            self._validator.check_read(self.lfile, segs, out)
        return out

    def write_all(self, data: Optional[np.ndarray] = None,
                  nbytes: Optional[int] = None) -> Generator[Any, Any, int]:
        """Collective write at the individual file pointer."""
        n = self._data_nbytes(data, nbytes)
        es = self.view.etype.size
        if n % es:
            raise MPIIOError(f"access of {n}B is not a multiple of etype ({es}B)")
        written = yield from self.write_at_all(self._fp, data, nbytes)
        self._fp += n // es
        return written

    def read_all(self, nbytes: int) -> Generator[Any, Any, Optional[np.ndarray]]:
        """Collective read at the individual file pointer."""
        es = self.view.etype.size
        if nbytes % es:
            raise MPIIOError(f"access of {nbytes}B is not a multiple of etype")
        out = yield from self.read_at_all(self._fp, nbytes)
        self._fp += nbytes // es
        return out

    # ------------------------------------------------------------------
    # independent operations
    # ------------------------------------------------------------------
    def write_at(self, offset_et: int, data: Optional[np.ndarray] = None,
                 nbytes: Optional[int] = None, data_sieving: bool = False
                 ) -> Generator[Any, Any, int]:
        """Independent write at an explicit offset (etype units).

        ``data_sieving`` enables the read-modify-write sieve path for
        fragmented accesses (MPI-IO default nonatomic semantics: sieved
        windows of concurrently-writing processes must not overlap).
        """
        self._check_open()
        n = self._data_nbytes(data, nbytes)
        segs = self._access(offset_et, n)
        payload = self._as_bytes(data)
        token = None
        if self._validator is not None:
            token = self._validator.record_write(self.lfile, segs, payload)
            if data_sieving:
                # sieve windows read-modify-write bytes outside segs
                self._validator.shadow(
                    self.lfile.name,
                    self.lfile.store is not None).exact_coverage = False
        if data_sieving:
            from repro.mpiio.data_sieving import sieved_write

            written = yield from sieved_write(self._env(), segs, payload)
        else:
            written = yield from independent_write(self._env(), segs,
                                                   payload)
        if self._validator is not None:
            # the calling rank applied its own bytes, so call return
            # means the write landed: retire its happens-before token
            self._validator.after_write(self.lfile, token)
        return written

    def read_at(self, offset_et: int, nbytes: int, data_sieving: bool = False
                ) -> Generator[Any, Any, Optional[np.ndarray]]:
        """Independent read at an explicit offset (etype units)."""
        self._check_open()
        segs = self._access(offset_et, nbytes)
        out = yield from independent_read(self._env(), segs,
                                          data_sieving=data_sieving)
        if self._validator is not None:
            # oracle-checked only when the read provably happens after
            # every overlapping write (shadow happens-before tracker)
            self._validator.check_independent_read(self.lfile, segs, out)
        return out

    # ------------------------------------------------------------------
    def close(self) -> Generator[Any, Any, Optional[dict]]:
        """Collective close; rank 0 gets the per-category time summary."""
        self._check_open()
        comm = self.comm
        yield from comm.barrier(category="sync")
        if self._validator is not None and comm.rank == 0:
            # all ranks passed the barrier, so every recorded write —
            # collective or independent — has reached the file system
            self._validator.check_file(self.lfile)
        t0 = comm.now
        yield from self.io.fs.mds_close(client=comm.proc.rank)
        comm.proc.breakdown.add("meta", comm.now - t0)
        delta = {
            cat: t - self._open_snapshot.get(cat, 0.0)
            for cat, t in comm.proc.breakdown.snapshot().items()
        }
        all_deltas = yield from comm.gather(delta, root=0, category="sync")
        self._closed = True
        if comm.rank != 0:
            return None
        cats = sorted({c for d in all_deltas for c in d})
        return {
            c: {
                "max": max(d.get(c, 0.0) for d in all_deltas),
                "mean": sum(d.get(c, 0.0) for d in all_deltas) / len(all_deltas),
            }
            for c in cats
        }
