"""I/O aggregator selection and file-domain partitioning (ROMIO analogs).

Default aggregator choice follows ROMIO on clusters: one process per
physical node, in node order, optionally capped by the ``cb_nodes`` hint
or replaced outright by an explicit ``cb_config_ranks`` list.

File domains: the accessed byte range ``[fd_min, fd_max)`` is divided into
one contiguous domain per aggregator — evenly, or snapped to stripe
boundaries when ``align_file_domains`` is set (avoids two aggregators
sharing an OST object and ping-ponging its lock).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import Machine
from repro.errors import MPIIOError
from repro.lustre.layout import StripeLayout
from repro.mpiio.hints import IOHints


def default_aggregators(member_world_ranks: list[int], machine: Machine,
                        hints: IOHints) -> list[int]:
    """Aggregators as *communicator ranks*, lowest rank per node first.

    With ``cb_config_ranks`` the user's list is validated and used as-is.
    Otherwise one process per node is chosen (node order), then the list
    is truncated to ``cb_nodes`` if given.
    """
    size = len(member_world_ranks)
    if hints.cb_config_ranks is not None:
        for r in hints.cb_config_ranks:
            if not 0 <= r < size:
                raise MPIIOError(
                    f"cb_config_ranks entry {r} out of range for size {size}"
                )
        return list(hints.cb_config_ranks)
    seen_nodes: dict[int, int] = {}
    for grank, wrank in enumerate(member_world_ranks):
        node = machine.node_of_rank(wrank)
        if node not in seen_nodes:
            seen_nodes[node] = grank
    aggs = [seen_nodes[n] for n in sorted(seen_nodes)]
    if hints.cb_nodes is not None:
        aggs = aggs[: hints.cb_nodes]
    return aggs


def partition_file_domains(fd_min: int, fd_max: int, naggs: int,
                           align: StripeLayout | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Split ``[fd_min, fd_max)`` into ``naggs`` contiguous domains.

    Returns ``(starts, ends)`` arrays of length ``naggs`` (empty domains
    allowed: start == end).  With ``align`` given, interior boundaries snap
    to the nearest stripe boundary.
    """
    if naggs <= 0:
        raise MPIIOError(f"need at least one aggregator, got {naggs}")
    if fd_max < fd_min:
        raise MPIIOError(f"invalid file range [{fd_min}, {fd_max})")
    span = fd_max - fd_min
    base = span // naggs
    rem = span % naggs
    sizes = np.full(naggs, base, dtype=np.int64)
    sizes[:rem] += 1
    bounds = np.empty(naggs + 1, dtype=np.int64)
    bounds[0] = fd_min
    np.cumsum(sizes, out=bounds[1:])
    bounds[1:] += fd_min
    if align is not None and span > 0:
        S = align.stripe_size
        snapped = ((bounds[1:-1] + S // 2) // S) * S
        bounds[1:-1] = np.clip(snapped, fd_min, fd_max)
        bounds = np.maximum.accumulate(bounds)  # keep monotone
    return bounds[:-1].copy(), bounds[1:].copy()


def domain_of_offsets(offsets: np.ndarray, starts: np.ndarray,
                      ends: np.ndarray) -> np.ndarray:
    """Index of the domain containing each offset (domains sorted, disjoint)."""
    # searchsorted over domain starts; offsets below the first start or in
    # an empty domain's gap map to the previous non-empty domain
    idx = np.searchsorted(ends, offsets, side="right")
    return np.clip(idx, 0, starts.size - 1)
