"""File views: displacement + etype + filetype, tiled across the file.

A view defines a *linear data space* (the bytes a process can see, in
order) over a *physical file space*.  ``segments_for(lo, hi)`` maps any
byte range of the data space to physical file segments; the math tiles
the filetype's flattened form without materializing repeats, so views
spanning gigabytes stay O(segments-per-tile) in memory.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import BYTE, Datatype
from repro.datatypes.flatten import Segments, coalesce
from repro.errors import MPIIOError


class FileView:
    """An MPI-IO file view for one process."""

    __slots__ = ("disp", "etype", "filetype", "_offs", "_lens", "_prefix",
                 "_dense")

    def __init__(self, disp: int = 0, etype: Datatype = BYTE,
                 filetype: Datatype | None = None):
        if disp < 0:
            raise MPIIOError(f"view displacement must be >= 0, got {disp}")
        filetype = etype if filetype is None else filetype
        if etype.size <= 0:
            raise MPIIOError("etype must have positive size")
        if filetype.size % etype.size != 0:
            raise MPIIOError(
                f"filetype size {filetype.size} is not a multiple of "
                f"etype size {etype.size}"
            )
        if filetype.size == 0:
            raise MPIIOError("filetype must contain data")
        self.disp = int(disp)
        self.etype = etype
        self.filetype = filetype
        offs, lens = filetype.segments()
        self._offs = offs
        self._lens = lens
        # prefix[i] = data bytes before segment i within one tile
        self._prefix = np.zeros(offs.size + 1, dtype=np.int64)
        np.cumsum(lens, out=self._prefix[1:])
        #: dense filetypes (size == extent, one run) map data linearly
        self._dense = (offs.size == 1 and int(offs[0]) == 0
                       and filetype.size == filetype.extent)

    @property
    def tile_data_bytes(self) -> int:
        """Data bytes per filetype instance."""
        return self.filetype.size

    @property
    def tile_extent(self) -> int:
        """File bytes spanned per filetype instance."""
        return self.filetype.extent

    @property
    def is_contiguous(self) -> bool:
        return self.filetype.is_contiguous and self.disp == 0

    # ------------------------------------------------------------------
    # data-space <-> file-space mapping
    # ------------------------------------------------------------------
    def segments_for(self, lo: int, hi: int) -> Segments:
        """Physical segments of data-space bytes [lo, hi).

        Vectorized over whole tiles; the partial head and tail tiles are
        clipped by cutting the flattened per-tile arrays at the right data
        positions.
        """
        if lo < 0 or hi < lo:
            raise MPIIOError(f"invalid data range [{lo}, {hi})")
        if hi == lo:
            return (np.empty(0, np.int64), np.empty(0, np.int64))
        if self._dense:
            # dense filetype: data space maps linearly onto the file —
            # never enumerate tiles (an identity BYTE view would otherwise
            # build one entry per byte)
            return (np.array([self.disp + lo], dtype=np.int64),
                    np.array([hi - lo], dtype=np.int64))
        s = self.tile_data_bytes
        e = self.tile_extent
        first_tile = lo // s
        last_tile = (hi - 1) // s
        parts_o: list[np.ndarray] = []
        parts_l: list[np.ndarray] = []
        # head / tail partial tiles, plus the dense run of full tiles
        full_start, full_stop = first_tile, last_tile + 1
        if lo % s != 0 or (first_tile == last_tile and hi % s != 0):
            o, l = self._clip_tile(lo - first_tile * s,
                                   min(hi - first_tile * s, s))
            parts_o.append(o + first_tile * e)
            parts_l.append(l)
            full_start = first_tile + 1
        if last_tile >= full_start and hi % s != 0:
            o, l = self._clip_tile(0, hi - last_tile * s)
            parts_o.append(o + last_tile * e)
            parts_l.append(l)
            full_stop = last_tile
        if full_start < full_stop:
            ntiles = full_stop - full_start
            bases = (np.arange(full_start, full_stop, dtype=np.int64) * e)
            offs = (bases[:, None] + self._offs[None, :]).ravel()
            lens = np.broadcast_to(self._lens,
                                   (ntiles, self._lens.size)).ravel()
            parts_o.append(offs)
            parts_l.append(lens)
        offs = np.concatenate(parts_o) + self.disp
        lens = np.concatenate(parts_l)
        return coalesce(offs, lens)

    def _clip_tile(self, dlo: int, dhi: int) -> Segments:
        """Segments of data bytes [dlo, dhi) within ONE tile (tile-relative)."""
        prefix = self._prefix
        i0 = int(np.searchsorted(prefix, dlo, side="right") - 1)
        i1 = int(np.searchsorted(prefix, dhi, side="left"))
        offs = self._offs[i0:i1].copy()
        lens = self._lens[i0:i1].copy()
        if offs.size == 0:
            return offs, lens
        # trim the first and last segment to the data positions
        head_skip = dlo - int(prefix[i0])
        offs[0] += head_skip
        lens[0] -= head_skip
        tail_cut = int(prefix[min(i1, prefix.size - 1)]) - dhi
        if tail_cut > 0:
            lens[-1] -= tail_cut
        keep = lens > 0
        return offs[keep], lens[keep]

    def data_extent(self, lo: int, hi: int) -> tuple[int, int]:
        """Physical (start, end) bounds of data-space bytes [lo, hi)."""
        offs, lens = self.segments_for(lo, hi)
        if offs.size == 0:
            return (self.disp, self.disp)
        return int(offs[0]), int(offs[-1] + lens[-1])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FileView(disp={self.disp}, etype={self.etype!r}, "
                f"filetype={self.filetype!r})")
