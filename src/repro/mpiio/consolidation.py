"""Node-level request consolidation (the paper's Section 6 future work).

The paper closes by proposing to "consolidate I/O requests from different
cores to maximize the utilization of in-core bandwidth".  This module
implements that extension for the two-phase write path: per exchange
round, the cores of one node first funnel their window pieces to a node
*leader* (the lowest communicator rank on the node — intra-node traffic
is a memcpy on Catamount), the leader merges adjacent pieces, and only
leaders talk to the I/O aggregators.

Effects the simulation captures: inter-node message count drops by the
cores-per-node factor, aggregator incast shrinks, and pieces from
neighbouring cores coalesce before they travel.  The cost is an extra
intra-node hop and serialization through the leader.  Enabled by the
``cb_node_consolidation`` hint; quantified in
``benchmarks/bench_ablation_node_consolidation.py``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.datatypes.flatten import Segments
from repro.simmpi.payload import Payload

#: tag base for intra-node consolidation traffic
NODE_TAG = (1 << 20) + 20_000_000

#: modeled wire bytes per (offset, length) pair
_SEG_HEADER = 16


def node_groups(comm, machine) -> tuple[int, list[int]]:
    """This rank's (leader, node members) in communicator ranks.

    The leader is the lowest communicator rank on the physical node —
    which is also what the default aggregator selection picks, so
    aggregators are usually leaders and pay no extra hop.

    The result depends only on the (communicator, machine) pair, both
    fixed for a world's lifetime, so it is computed once per node per
    communicator and cached on the shared descriptor instead of being
    rebuilt inside every collective call.
    """
    cache = comm.desc.node_cache
    my_node = machine.node_of_rank(comm.desc.members[comm.rank])
    cached = cache.get(my_node)
    if cached is not None:
        return cached
    members = [r for r in range(comm.size)
               if machine.node_of_rank(comm.desc.members[r]) == my_node]
    out = (members[0], members)
    cache[my_node] = out
    return out


def consolidated_write_round(env, aggs: list[int], my_idx: int, rnd: int,
                             pieces_by_agg: dict[int, tuple[Segments,
                                                            Optional[np.ndarray]]],
                             leader: int, members: list[int],
                             memcpy_bw: float,
                             aggregate_and_write,
                             counts_vector) -> Generator[Any, Any, None]:
    """One write round with node consolidation.

    ``pieces_by_agg`` holds this rank's (already translated) window
    pieces.  Non-leaders ship everything to the leader and only join the
    count exchange with zeros; leaders merge per aggregator and forward.
    """
    from repro.mpiio.two_phase import TP_TAG, merge_pieces

    comm = env.comm
    verified = env.lfile.store is not None
    if comm.rank != leader:
        nbytes = sum(int(sub[1].sum()) + _SEG_HEADER * sub[0].size
                     for (sub, _d) in pieces_by_agg.values())
        up_req = comm.isend(Payload(nbytes, pieces_by_agg), dest=leader,
                            tag=NODE_TAG + rnd)
        counts = np.zeros(comm.size, dtype=np.int64)
        all_counts = yield from comm.alltoall(counts, nbytes_each=8,
                                              category="sync")
        if my_idx >= 0:
            yield from aggregate_and_write(env, all_counts, None, rnd,
                                           memcpy_bw)
        yield from comm.waitall([up_req], category="exchange")
        return

    # leader: gather the node's pieces (every member sends every round)
    collected: list[dict] = [pieces_by_agg]
    for m in members:
        if m == comm.rank:
            continue
        payload = yield from comm.recv(source=m, tag=NODE_TAG + rnd,
                                       category="exchange")
        collected.append(payload.data)
    merged: dict[int, tuple[Segments, Optional[np.ndarray]]] = {}
    all_for: dict[int, list] = {}
    for d in collected:
        for a, piece in d.items():
            all_for.setdefault(a, []).append(piece)
    merge_bytes = 0
    for a, pieces in all_for.items():
        if len(pieces) == 1:
            merged[a] = pieces[0]
        else:
            merged[a] = merge_pieces(pieces, verified)
        merge_bytes += int(merged[a][0][1].sum())
    if merge_bytes:
        # assembling the node buffer is a memcpy
        from repro.sim.effects import Sleep

        copy_t = merge_bytes / memcpy_bw
        yield Sleep(copy_t)
        env.breakdown.add("compute", copy_t)

    send_lists = {a: seg for a, (seg, _d) in merged.items()}
    counts = counts_vector(send_lists, aggs, comm.size)
    all_counts = yield from comm.alltoall(counts, nbytes_each=8,
                                          category="sync")
    reqs = []
    local_piece = None
    for a, (sub, mdata) in merged.items():
        nbytes = int(sub[1].sum()) + _SEG_HEADER * sub[0].size
        if aggs[a] == comm.rank:
            local_piece = (sub, mdata)
            continue
        reqs.append(comm.isend(Payload(nbytes, (sub[0], sub[1], mdata)),
                               dest=aggs[a], tag=TP_TAG + rnd))
    if my_idx >= 0:
        yield from aggregate_and_write(env, all_counts, local_piece, rnd,
                                       memcpy_bw)
    if reqs:
        yield from comm.waitall(reqs, category="exchange")
