"""Byte-level file-content oracles.

The paper's central correctness claim is that FA partitioning plus
intermediate file views produce *the same file bytes* as the
unpartitioned extended two-phase engine.  This module materializes the
expected bytes without running any protocol at all:

:func:`sequential_golden`
    a sequential golden writer — applies each rank's flattened view
    segments and dense data to a plain array, in rank order, exactly as
    MPI-IO semantics demand for disjoint collective writes.  No
    aggregation, no rounds, no exchange: just datatype flattening.
:class:`ShadowFile`
    the same golden state grown incrementally, one recorded write at a
    time, next to a live simulation.  In verified mode it holds real
    bytes; in model mode it tracks written extents only, so the oracle
    still checks *coverage* when experiments never materialize data.
:class:`OracleDiff`
    a structured mismatch report (first diverging offset, expected/got
    context bytes) that harnesses can dump as a CI artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.datatypes.flatten import Segments, coalesce
from repro.errors import ValidationError

#: bump when oracle semantics change: part of every RunCache key, so a
#: cached result validated under old semantics is never trusted by new ones
ORACLE_VERSION = 1

#: bytes of context shown around the first mismatch
_DIFF_CONTEXT = 8


@dataclass
class OracleDiff:
    """One file-content mismatch between a run and its golden oracle."""

    file: str
    #: 'bytes' (verified mode) or 'extents' (model mode)
    kind: str
    #: first diverging file offset (byte granularity)
    offset: int
    #: total mismatching bytes
    nbytes: int
    expected: list[int] = field(default_factory=list)
    got: list[int] = field(default_factory=list)

    def describe(self) -> str:
        exp = " ".join(f"{b:02x}" for b in self.expected)
        got = " ".join(f"{b:02x}" for b in self.got)
        return (f"file {self.file!r}: {self.kind} diverge from the golden "
                f"oracle at offset {self.offset} ({self.nbytes} byte(s) "
                f"differ); expected [{exp}] got [{got}]")

    def to_dict(self) -> dict[str, Any]:
        return {"file": self.file, "kind": self.kind, "offset": self.offset,
                "nbytes": self.nbytes, "expected": list(self.expected),
                "got": list(self.got)}

    def raise_(self) -> None:
        raise ValidationError("file_oracle", self.describe(),
                              detail=self.to_dict())


def sequential_golden(size: int,
                      writes: Sequence[tuple[Segments, np.ndarray]]
                      ) -> np.ndarray:
    """Expected file bytes of ``writes`` applied sequentially.

    Each write is ``(segments, dense_data)`` — the flattened form of one
    rank's file view plus the bytes in data order.  Writes are applied
    in sequence, so later writes win on overlap (MPI-IO write ordering
    for non-concurrent operations; collective writers within one call
    must be disjoint anyway).
    """
    out = np.zeros(size, dtype=np.uint8)
    for (offs, lens), data in writes:
        flat = np.asarray(data, dtype=np.uint8).ravel()
        total = int(np.asarray(lens).sum()) if len(lens) else 0
        if flat.size != total:
            raise ValidationError(
                "golden_writer",
                f"data has {flat.size} bytes, segments cover {total}")
        pos = 0
        for o, l in zip(np.asarray(offs).tolist(),
                        np.asarray(lens).tolist()):
            out[o:o + l] = flat[pos:pos + l]
            pos += l
    return out


def _segments_overlap(a: Segments, b: Segments) -> bool:
    """Whether two segment lists touch any common byte.

    Both sides are coalesced (sorted, disjoint), so a merge walk over
    interval boundaries decides in one pass.
    """
    a_offs, a_lens = a
    b_offs, b_lens = b
    if len(a_offs) == 0 or len(b_offs) == 0:
        return False
    a_offs = np.asarray(a_offs, dtype=np.int64)
    a_ends = a_offs + np.asarray(a_lens, dtype=np.int64)
    b_offs = np.asarray(b_offs, dtype=np.int64)
    b_ends = b_offs + np.asarray(b_lens, dtype=np.int64)
    # for each a-interval, the first b-interval that ends after a starts
    idx = np.searchsorted(b_ends, a_offs, side="right")
    valid = idx < b_offs.size
    if not valid.any():
        return False
    return bool((b_offs[idx[valid]] < a_ends[valid]).any())


class ShadowFile:
    """The golden state of one simulated file, grown write by write.

    ``verified`` mirrors the platform: with real bytes the shadow holds
    a dense array; without, it accumulates written extents.  Both sides
    start as all-zeros / nothing-written, matching a fresh
    :class:`~repro.lustre.store.ByteStore` / ``ExtentTracker``.

    The shadow also tracks *happens-before*: every recorded write stays
    **pending** until the caller marks it complete (its data provably
    landed in the simulated file system).  A read is oracle-checkable
    only over bytes whose every overlapping write has completed — a read
    racing an in-flight write may legitimately observe either state, so
    the oracle must not judge it (:meth:`checkable_read`).
    """

    def __init__(self, name: str, verified: bool):
        self.name = name
        self.verified = verified
        self._buf = np.zeros(4096, dtype=np.uint8)
        self.size = 0
        self._offs: list[int] = []
        self._lens: list[int] = []
        #: writes recorded (for report counting)
        self.writes = 0
        #: total bytes recorded, counting overlap multiplicity; differs
        #: from ``covered_bytes`` once any write rewrote covered bytes
        self.total_recorded = 0
        #: False once a write legitimately touched bytes outside its
        #: recorded segments (data sieving's read-modify-write windows);
        #: the model-mode extent oracle is then advisory only
        self.exact_coverage = True
        #: recorded-but-not-landed writes: token -> coalesced segments
        self._pending: dict[int, Segments] = {}
        self._next_token = 0
        #: byte ranges two unordered writes both touched: the shadow
        #: applies them in record order but the file may land them in
        #: either order, so reads there are never checkable
        self._unordered_offs: list[int] = []
        self._unordered_lens: list[int] = []

    # -- recording ------------------------------------------------------
    def _ensure(self, end: int) -> None:
        if end > self._buf.size:
            cap = self._buf.size
            while cap < end:
                cap *= 2
            buf = np.zeros(cap, dtype=np.uint8)
            buf[: self._buf.size] = self._buf
            self._buf = buf

    def record(self, segs: Segments, data: Optional[np.ndarray]) -> int:
        """Apply one rank's write (its view segments + dense bytes).

        Returns a happens-before token: the write counts as *pending*
        (in flight) until :meth:`complete` is called with the token, or
        :meth:`complete_all` marks a quiescent point.
        """
        offs, lens = segs
        offs = np.asarray(offs, dtype=np.int64).ravel()
        lens = np.asarray(lens, dtype=np.int64).ravel()
        total = int(lens.sum())
        self.writes += 1
        mine = coalesce(offs, lens)
        for other in self._pending.values():
            if _segments_overlap(mine, other):
                # racing writers: the landing order is undefined, so
                # permanently blind the read oracle on both extents
                for o, l in zip(*mine):
                    self._unordered_offs.append(int(o))
                    self._unordered_lens.append(int(l))
                for o, l in zip(*other):
                    self._unordered_offs.append(int(o))
                    self._unordered_lens.append(int(l))
                break
        self._next_token += 1
        token = self._next_token
        self._pending[token] = mine
        if self.verified:
            if data is None:
                raise ValidationError(
                    "file_oracle",
                    f"verified-mode write on {self.name!r} recorded "
                    "without data")
            flat = np.asarray(data, dtype=np.uint8).ravel()
            if flat.size != total:
                raise ValidationError(
                    "file_oracle",
                    f"recorded write on {self.name!r} has {flat.size} "
                    f"data bytes but covers {total}")
            if total:
                self._ensure(int(offs[-1] + lens[-1]))
                pos = 0
                for o, l in zip(offs.tolist(), lens.tolist()):
                    self._buf[o:o + l] = flat[pos:pos + l]
                    pos += l
        self._offs.extend(offs.tolist())
        self._lens.extend(lens.tolist())
        self.total_recorded += total
        if total:
            self.size = max(self.size, int(offs[-1] + lens[-1]))
        return token

    # -- happens-before tracking ----------------------------------------
    @property
    def pending_writes(self) -> int:
        """Recorded writes whose data has not provably landed yet."""
        return len(self._pending)

    def complete(self, token: Optional[int]) -> None:
        """Mark one recorded write landed (its call returned and the
        simulated fs applied its bytes)."""
        if token is not None:
            self._pending.pop(token, None)

    def complete_all(self) -> None:
        """Quiescent point: every recorded write has landed (e.g. all
        ranks passed a close barrier, or coverage equality proved no
        write is still in flight)."""
        self._pending.clear()

    def checkable_read(self, segs: Segments) -> bool:
        """Whether a read of ``segs`` provably happens after every
        overlapping write: no overlapping write is pending and no byte
        was ever touched by unordered (racing) writers."""
        offs, lens = segs
        read = coalesce(np.asarray(offs, dtype=np.int64).ravel(),
                        np.asarray(lens, dtype=np.int64).ravel())
        for pending in self._pending.values():
            if _segments_overlap(read, pending):
                return False
        if self._unordered_offs:
            unordered = coalesce(
                np.asarray(self._unordered_offs, dtype=np.int64),
                np.asarray(self._unordered_lens, dtype=np.int64))
            if _segments_overlap(read, unordered):
                return False
        return True

    # -- oracle views ---------------------------------------------------
    @property
    def bytes(self) -> np.ndarray:
        """The expected file contents up to the current size (copy)."""
        return self._buf[: self.size].copy()

    @property
    def extents(self) -> Segments:
        """Coalesced extents every recorded write covered."""
        return coalesce(np.array(self._offs, dtype=np.int64),
                        np.array(self._lens, dtype=np.int64))

    @property
    def covered_bytes(self) -> int:
        """Distinct bytes the recorded writes cover (coalesced measure)."""
        return int(self.extents[1].sum())

    def expected_read(self, segs: Segments) -> np.ndarray:
        """The dense bytes a correct read of ``segs`` must return."""
        offs, lens = segs
        total = int(np.asarray(lens).sum()) if len(lens) else 0
        out = np.zeros(total, dtype=np.uint8)
        end = int(offs[-1] + lens[-1]) if total else 0
        self._ensure(end)
        pos = 0
        for o, l in zip(np.asarray(offs).tolist(),
                        np.asarray(lens).tolist()):
            out[pos:pos + l] = self._buf[o:o + l]
            pos += l
        return out

    # -- diffing --------------------------------------------------------
    def diff_bytes(self, actual: np.ndarray) -> Optional[OracleDiff]:
        """First divergence of ``actual`` from the golden bytes, or None.

        ``actual`` may be shorter than the shadow (trailing zero bytes
        are never stored by the simulated fs) — missing tail bytes
        compare as zero, exactly like a short read would return them.
        """
        expected = self.bytes
        got = np.zeros(expected.size, dtype=np.uint8)
        n = min(expected.size, np.asarray(actual).size)
        got[:n] = np.asarray(actual, dtype=np.uint8).ravel()[:n]
        bad = np.flatnonzero(expected != got)
        if bad.size == 0:
            return None
        first = int(bad[0])
        lo = max(0, first - _DIFF_CONTEXT // 2)
        hi = min(expected.size, first + _DIFF_CONTEXT)
        return OracleDiff(file=self.name, kind="bytes", offset=first,
                          nbytes=int(bad.size),
                          expected=expected[lo:hi].tolist(),
                          got=got[lo:hi].tolist())

    def diff_extents(self, offsets, lengths) -> Optional[OracleDiff]:
        """Model-mode oracle: written coverage must match exactly."""
        want_o, want_l = self.extents
        got_o, got_l = coalesce(np.asarray(offsets, dtype=np.int64),
                                np.asarray(lengths, dtype=np.int64))
        if (want_o.size == got_o.size and np.array_equal(want_o, got_o)
                and np.array_equal(want_l, got_l)):
            return None
        # first offset where the coverage maps disagree
        want_set = set(zip(want_o.tolist(), want_l.tolist()))
        got_set = set(zip(got_o.tolist(), got_l.tolist()))
        odd = sorted(want_set.symmetric_difference(got_set))
        first = odd[0][0] if odd else 0
        missing = sum(l for _, l in want_set - got_set)
        extra = sum(l for _, l in got_set - want_set)
        return OracleDiff(file=self.name, kind="extents", offset=int(first),
                          nbytes=int(missing + extra))
