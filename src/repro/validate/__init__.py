"""Differential correctness oracle for the ParColl reproduction.

Three layers, described in ``docs/testing.md``:

1. **file-content oracles** (:mod:`repro.validate.oracle`) — a
   sequential golden writer materializes the expected file bytes for
   any workload/file view directly from datatype flattening; a shadow
   file diffs them against the simulated Lustre file after every
   collective write (and on read-back);
2. **runtime invariant checks** (:mod:`repro.validate.invariants`,
   driven by :class:`Validator`) — opt-in via the ``parcoll_validate``
   MPI-IO hint, the ``--validate`` CLI flag, an
   :class:`~repro.harness.runner.ExperimentConfig`'s ``validate`` field,
   or ``REPRO_VALIDATE=1``;
3. **generator fleet** (:mod:`repro.validate.strategies`,
   :mod:`repro.validate.differential`) — Hypothesis strategies plus a
   seeded differential harness asserting that ext2ph, ParColl, and every
   registered collective backend produce byte-identical files against
   the golden oracle, with replay-deterministic virtual-time metrics.
"""

from repro.errors import ValidationError
from repro.validate.oracle import (ORACLE_VERSION, OracleDiff, ShadowFile,
                                   sequential_golden)
from repro.validate.validator import (ValidationReport, Validator,
                                      env_validate_enabled)

__all__ = [
    "ORACLE_VERSION",
    "OracleDiff",
    "ShadowFile",
    "ValidationError",
    "ValidationReport",
    "Validator",
    "env_validate_enabled",
    "sequential_golden",
]
