"""The seeded differential harness: protocols x backends vs the oracle.

One :class:`DiffCase` is a randomly drawn but fully reproducible
configuration — an access pattern from the paper's Figure 4 families (or
a ``btio``/``flash_io`` workload program), Lustre striping, a ParColl
grouping, a collective-fidelity backend, and (sometimes) a fault plan.
:func:`run_case` executes it as a small verified-mode simulation per
protocol/backend combination — every protocol registered in
:mod:`repro.mpiio.protocols` races — and asserts:

* every combination produces **byte-identical file contents** against
  :func:`~repro.validate.oracle.sequential_golden` (synthetic patterns)
  or against each other (workload programs, whose runs the byte-level
  shadow oracle already checks individually; the runtime
  :class:`~repro.validate.Validator` is live in every combination, so
  all invariant checks and the read-back oracle run for free);
* virtual-time metrics are **replay-deterministic**: running the same
  combination twice yields the same elapsed time, message count, and
  per-category breakdown.

Cases are drawn by :func:`generate_cases` from a seeded PCG64 stream, so
``repro.cli validate differential --cases N --seed S`` is a stable CI
gate — no Hypothesis shrinking, no flakiness, and the JSON report names
the exact failing case for replay.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.cluster import MachineConfig, NetworkParams
from repro.datatypes import BYTE
from repro.lustre import LustreFS, LustreParams
from repro.mpiio import MPIIO, available_protocols
from repro.simmpi import World
from repro.validate.oracle import OracleDiff, sequential_golden
from repro.workloads.base import deterministic_bytes
from repro.workloads.synthetic import (SyntheticConfig, file_bytes_total,
                                       filetype_for,
                                       rank_offsets_for_interleaved)

#: every registered collective-fidelity backend family gets coverage
BACKENDS = (
    "analytic",
    "detailed",
    "macro",
    "hybrid:sync=analytic,default=detailed",
    "hybrid:sync=macro,default=detailed",
    "sizethreshold:2048",
)

#: the paper's pattern families: (a) serial, (b) tiled, (c) interleaved,
#: plus seeded random disjoint sets
PATTERNS = ("serial", "tiled", "interleaved", "random")

#: case sources: synthetic patterns plus the paper's workload programs
WORKLOADS = ("synthetic", "btio", "flash_io")


@dataclass(frozen=True)
class DiffCase:
    """One reproducible differential-test point."""

    pattern: str
    nprocs: int
    bytes_per_rank: int
    piece_bytes: int
    seed: int
    stripe_size: int
    stripe_count: int
    n_osts: int
    ngroups: int
    data_path: str
    backend: str
    #: FaultPlan.to_dict() mapping, or None for a fault-free platform
    faults: Optional[dict] = None
    #: case source: 'synthetic' runs a Figure 4 pattern (``pattern`` et
    #: al. apply); 'btio'/'flash_io' run the workload program (``pattern``
    #: and ``piece_bytes`` are labels only, ``nprocs`` must be square for
    #: btio)
    workload: str = "synthetic"

    def synthetic(self) -> SyntheticConfig:
        return SyntheticConfig(pattern=self.pattern, nprocs=self.nprocs,
                               bytes_per_rank=self.bytes_per_rank,
                               piece_bytes=self.piece_bytes, seed=self.seed)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def generate_cases(n: int, seed: int = 0) -> list[DiffCase]:
    """Draw ``n`` cases from a seeded stream (same seed = same cases).

    Pattern families and backends cycle deterministically so even small
    ``n`` covers all of (a)/(b)/(c)/random and every backend; the other
    dimensions are sampled.  Roughly one case in five carries a fault
    plan (a straggling OST, a slow node, or lost RPCs under a generous
    retry budget) — faults must never change file bytes.  One case in
    five runs a workload program instead of a synthetic pattern (BT-IO's
    diagonal multi-partitioning, Flash's checkpoint), so the fleet also
    exercises derived-datatype views and multi-dataset files.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    cases = []
    for i in range(n):
        n_osts = int(rng.choice([2, 4]))
        faults = None
        draw = rng.random()
        if draw < 0.08:
            faults = {"events": [{
                "kind": "ost_degrade", "ost": int(rng.integers(n_osts)),
                "factor": float(np.round(rng.uniform(0.25, 0.75), 3)),
                "start": 0.0, "end": None}]}
        elif draw < 0.14:
            faults = {"events": [{
                "kind": "node_slowdown", "node": 0,
                "factor": float(np.round(rng.uniform(0.3, 0.8), 3)),
                "start": 0.0, "end": None}]}
        elif draw < 0.2:
            faults = {"events": [{
                "kind": "flaky_rpc", "ost": int(rng.integers(n_osts)),
                "prob": float(np.round(rng.uniform(0.02, 0.12), 3)),
                "start": 0.0, "end": None}]}
        workload = "synthetic"
        if i % 10 == 4:
            workload = "btio"
        elif i % 10 == 9:
            workload = "flash_io"
        nprocs = int(rng.choice([2, 4, 6, 8]))
        if workload == "btio":
            nprocs = int(rng.choice([4, 9]))  # BT needs a square count
        cases.append(DiffCase(
            workload=workload,
            pattern=PATTERNS[i % len(PATTERNS)],
            nprocs=nprocs,
            bytes_per_rank=int(rng.choice([256, 1024, 2048, 4096])),
            piece_bytes=int(rng.choice([64, 128, 256])),
            seed=int(rng.integers(0, 100_000)),
            stripe_size=int(rng.choice([256, 512, 1024])),
            stripe_count=int(rng.choice([2, n_osts])),
            n_osts=n_osts,
            ngroups=int(rng.choice([2, 3, 4, 8])),
            data_path=("physical", "logical")[int(rng.integers(2))],
            backend=BACKENDS[i % len(BACKENDS)],
            faults=faults,
        ))
    return cases


def golden_bytes(cfg: SyntheticConfig) -> np.ndarray:
    """The oracle file contents for one synthetic pattern."""
    writes = []
    for rank in range(cfg.nprocs):
        ft = filetype_for(cfg, rank)
        offs, lens = ft.segments()
        disp = (rank_offsets_for_interleaved(cfg, rank)
                if cfg.pattern == "interleaved" else 0)
        writes.append(((offs + disp, lens),
                       deterministic_bytes(rank, int(lens.sum()))))
    return sequential_golden(file_bytes_total(cfg), writes)


def _case_program(case: DiffCase, hints: dict, io: MPIIO):
    """``(program(comm), checked_file_name)`` for one case's workload."""
    if case.workload == "btio":
        from repro.workloads.btio import BTIOConfig, btio_program

        q = BTIOConfig.q_of(case.nprocs)
        cfg = BTIOConfig(grid_points=q * 2, nsteps=2, verify_read=True,
                         seed=case.seed, filename="diff", hints=hints)
        return (lambda comm: btio_program(cfg, comm, io)), "diff"
    if case.workload == "flash_io":
        from repro.workloads.flash_io import FlashIOConfig, flash_io_program

        cfg = FlashIOConfig(nxb=2, nyb=2, nzb=2, blocks_per_proc=2,
                            nvars=2, filename="diff", hints=hints)
        return (lambda comm: flash_io_program(cfg, comm, io)), "diff_chk"
    syn = case.synthetic()

    def program(comm):
        ft = filetype_for(syn, comm.rank)
        disp = (rank_offsets_for_interleaved(syn, comm.rank)
                if syn.pattern == "interleaved" else 0)
        f = yield from io.open(comm, "diff", hints=hints)
        f.set_view(disp, BYTE, ft)
        data = deterministic_bytes(comm.rank, ft.size)
        yield from f.write_at_all(0, data)
        got = yield from f.read_at_all(0, ft.size)
        yield from f.close()
        return got

    return program, "diff"


def _run_combo(case: DiffCase, hints: dict) -> dict[str, Any]:
    """One verified-mode simulation of ``case`` under ``hints``.

    The correctness oracle is always on, so the run itself raises
    :class:`~repro.errors.ValidationError` on any invariant or oracle
    violation; the returned metrics feed the replay-determinism check.
    """
    from repro.faults import FaultInjector, FaultPlan

    injector = None
    plan = FaultPlan.coerce(case.faults)
    if not plan.is_empty:
        injector = FaultInjector(plan, seed=case.seed)
    machine = MachineConfig(nprocs=case.nprocs, cores_per_node=2)
    world = World(machine, net_params=NetworkParams(), faults=injector)
    fs = LustreFS(world.engine,
                  LustreParams(n_osts=case.n_osts,
                               default_stripe_count=case.stripe_count,
                               default_stripe_size=case.stripe_size,
                               store_data=True),
                  seed=case.seed, faults=injector)
    if injector is not None:
        injector.validate_platform(fs.params.n_osts, machine.nnodes)
    io = MPIIO(world, fs, validate=True)
    if any(plan.has_flaky(ost) for ost in range(case.n_osts)):
        # lost RPCs must never exhaust the retry budget in a gate run
        hints = {**hints, "retry_max_attempts": 12}
    program, fname = _case_program(case, hints, io)
    world.launch(program)
    raw = fs.lookup(fname).contents()
    if case.workload == "synthetic":
        full = np.zeros(file_bytes_total(case.synthetic()), dtype=np.uint8)
        full[: raw.size] = raw
    else:
        full = raw
    return {
        "bytes": full,
        "elapsed": world.engine.now,
        "messages": world.network.messages_sent,
        "events": world.engine.effects_dispatched,
        "report": io.validator.report.to_dict(),
        "checks": io.validator.report.total_checks,
    }


def _byte_diff(name: str, expected: np.ndarray,
               got: np.ndarray) -> Optional[OracleDiff]:
    if expected.size != got.size:
        # workload combos must agree on the written length too
        n = max(expected.size, got.size)
        expected = np.pad(expected, (0, n - expected.size))
        got = np.pad(got, (0, n - got.size))
    bad = np.flatnonzero(expected != got)
    if bad.size == 0:
        return None
    first = int(bad[0])
    lo, hi = max(0, first - 4), min(expected.size, first + 8)
    return OracleDiff(file=name, kind="bytes", offset=first,
                      nbytes=int(bad.size),
                      expected=expected[lo:hi].tolist(),
                      got=got[lo:hi].tolist())


def protocol_combos(case: DiffCase) -> list[tuple[str, dict]]:
    """The (label, hints) grid one case races.

    Every protocol registered in :mod:`repro.mpiio.protocols` runs on the
    analytic backend; the protocols that actually communicate (parcoll,
    nodeagg) additionally run on the case's drawn backend, and nodeagg
    runs once more composed with FA partitioning — the full protocol
    cross-product a new registration joins automatically.
    """
    parcoll_hints = {"protocol": "parcoll", "parcoll_ngroups": case.ngroups,
                     "parcoll_data_path": case.data_path}
    special = {
        "parcoll": parcoll_hints,
        "listio": {"protocol": "listio", "listio_max_segments": 8},
    }
    combos = []
    for name in available_protocols():
        hints = dict(special.get(name, {"protocol": name}))
        combos.append((f"{name}@analytic", hints))
        if name in ("parcoll", "nodeagg") and case.backend != "analytic":
            combos.append((f"{name}@{case.backend}",
                           {**hints, "collective_mode": case.backend}))
    combos.append(("nodeagg+fa@analytic",
                   {"protocol": "nodeagg",
                    "parcoll_ngroups": max(2, case.ngroups)}))
    return combos


def run_case(case: DiffCase) -> dict[str, Any]:
    """Run every protocol/backend combination of one case.

    Returns ``{"case", "ok", "checks", "failures"}`` where failures
    carry enough context (combo label, diff/exception) to replay.
    Synthetic cases diff every combo against the sequential golden;
    workload cases diff combos against the first combo's bytes (each run
    is already byte-checked by its own shadow oracle).
    """
    golden = (golden_bytes(case.synthetic())
              if case.workload == "synthetic" else None)
    combos = protocol_combos(case)
    failures: list[dict[str, Any]] = []
    checks = 0
    replay_probe = None
    for label, hints in combos:
        try:
            out = _run_combo(case, hints)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            failures.append({"combo": label, "error": f"{type(exc).__name__}: {exc}"})
            continue
        checks += out["checks"]
        if golden is None:
            golden = out["bytes"]
        diff = _byte_diff(label, golden, out["bytes"])
        if diff is not None:
            failures.append({"combo": label, "diff": diff.to_dict()})
        if label.startswith("parcoll@") and "@analytic" not in label:
            replay_probe = (label, hints, out)
    if replay_probe is not None:
        label, hints, first = replay_probe
        try:
            second = _run_combo(case, hints)
        except Exception as exc:  # noqa: BLE001
            failures.append({"combo": f"replay:{label}",
                             "error": f"{type(exc).__name__}: {exc}"})
        else:
            checks += 1
            for metric in ("elapsed", "messages", "events"):
                if first[metric] != second[metric]:
                    failures.append({
                        "combo": f"replay:{label}",
                        "error": (f"non-deterministic {metric}: "
                                  f"{first[metric]!r} != {second[metric]!r}")})
    return {"case": case.to_dict(), "ok": not failures, "checks": checks,
            "failures": failures}


@dataclass
class DifferentialSummary:
    """Aggregated outcome of one harness run (the CI artifact)."""

    seed: int
    cases: int = 0
    passed: int = 0
    checks: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.passed == self.cases

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "cases": self.cases, "passed": self.passed,
                "checks": self.checks, "ok": self.ok,
                "failures": self.failures}

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def run_differential(cases: Sequence[DiffCase] | int, seed: int = 0,
                     progress=None) -> DifferentialSummary:
    """Run the harness over ``cases`` (a list, or a count to generate).

    ``progress`` is an optional ``fn(done, total)`` callback.
    """
    if isinstance(cases, int):
        cases = generate_cases(cases, seed=seed)
    summary = DifferentialSummary(seed=seed)
    total = len(cases)
    for i, case in enumerate(cases):
        out = run_case(case)
        summary.cases += 1
        summary.checks += out["checks"]
        if out["ok"]:
            summary.passed += 1
        else:
            summary.failures.append({"case": out["case"],
                                     "failures": out["failures"]})
        if progress is not None:
            progress(i + 1, total)
    return summary
