"""The seeded differential harness: protocols x backends vs the oracle.

One :class:`DiffCase` is a randomly drawn but fully reproducible
configuration — an access pattern from the paper's Figure 4 families,
Lustre striping, a ParColl grouping, a collective-fidelity backend, and
(sometimes) a fault plan.  :func:`run_case` executes it as a small
verified-mode simulation per protocol/backend combination and asserts:

* every combination produces **byte-identical file contents** against
  :func:`~repro.validate.oracle.sequential_golden` (the runtime
  :class:`~repro.validate.Validator` is live too, so all invariant
  checks and the read-back oracle run for free);
* virtual-time metrics are **replay-deterministic**: running the same
  combination twice yields the same elapsed time, message count, and
  per-category breakdown.

Cases are drawn by :func:`generate_cases` from a seeded PCG64 stream, so
``repro.cli validate differential --cases N --seed S`` is a stable CI
gate — no Hypothesis shrinking, no flakiness, and the JSON report names
the exact failing case for replay.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.cluster import MachineConfig, NetworkParams
from repro.datatypes import BYTE
from repro.lustre import LustreFS, LustreParams
from repro.mpiio import MPIIO
from repro.simmpi import World
from repro.validate.oracle import OracleDiff, sequential_golden
from repro.workloads.base import deterministic_bytes
from repro.workloads.synthetic import (SyntheticConfig, file_bytes_total,
                                       filetype_for,
                                       rank_offsets_for_interleaved)

#: every registered collective-fidelity backend family gets coverage
BACKENDS = (
    "analytic",
    "detailed",
    "hybrid:sync=analytic,default=detailed",
    "sizethreshold:2048",
)

#: the paper's pattern families: (a) serial, (b) tiled, (c) interleaved,
#: plus seeded random disjoint sets
PATTERNS = ("serial", "tiled", "interleaved", "random")


@dataclass(frozen=True)
class DiffCase:
    """One reproducible differential-test point."""

    pattern: str
    nprocs: int
    bytes_per_rank: int
    piece_bytes: int
    seed: int
    stripe_size: int
    stripe_count: int
    n_osts: int
    ngroups: int
    data_path: str
    backend: str
    #: FaultPlan.to_dict() mapping, or None for a fault-free platform
    faults: Optional[dict] = None

    def synthetic(self) -> SyntheticConfig:
        return SyntheticConfig(pattern=self.pattern, nprocs=self.nprocs,
                               bytes_per_rank=self.bytes_per_rank,
                               piece_bytes=self.piece_bytes, seed=self.seed)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def generate_cases(n: int, seed: int = 0) -> list[DiffCase]:
    """Draw ``n`` cases from a seeded stream (same seed = same cases).

    Pattern families and backends cycle deterministically so even small
    ``n`` covers all of (a)/(b)/(c)/random and every backend; the other
    dimensions are sampled.  Roughly one case in five carries a fault
    plan (a straggling OST, a slow node, or lost RPCs under a generous
    retry budget) — faults must never change file bytes.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    cases = []
    for i in range(n):
        n_osts = int(rng.choice([2, 4]))
        faults = None
        draw = rng.random()
        if draw < 0.08:
            faults = {"events": [{
                "kind": "ost_degrade", "ost": int(rng.integers(n_osts)),
                "factor": float(np.round(rng.uniform(0.25, 0.75), 3)),
                "start": 0.0, "end": None}]}
        elif draw < 0.14:
            faults = {"events": [{
                "kind": "node_slowdown", "node": 0,
                "factor": float(np.round(rng.uniform(0.3, 0.8), 3)),
                "start": 0.0, "end": None}]}
        elif draw < 0.2:
            faults = {"events": [{
                "kind": "flaky_rpc", "ost": int(rng.integers(n_osts)),
                "prob": float(np.round(rng.uniform(0.02, 0.12), 3)),
                "start": 0.0, "end": None}]}
        cases.append(DiffCase(
            pattern=PATTERNS[i % len(PATTERNS)],
            nprocs=int(rng.choice([2, 4, 6, 8])),
            bytes_per_rank=int(rng.choice([256, 1024, 2048, 4096])),
            piece_bytes=int(rng.choice([64, 128, 256])),
            seed=int(rng.integers(0, 100_000)),
            stripe_size=int(rng.choice([256, 512, 1024])),
            stripe_count=int(rng.choice([2, n_osts])),
            n_osts=n_osts,
            ngroups=int(rng.choice([2, 3, 4, 8])),
            data_path=("physical", "logical")[int(rng.integers(2))],
            backend=BACKENDS[i % len(BACKENDS)],
            faults=faults,
        ))
    return cases


def golden_bytes(cfg: SyntheticConfig) -> np.ndarray:
    """The oracle file contents for one synthetic pattern."""
    writes = []
    for rank in range(cfg.nprocs):
        ft = filetype_for(cfg, rank)
        offs, lens = ft.segments()
        disp = (rank_offsets_for_interleaved(cfg, rank)
                if cfg.pattern == "interleaved" else 0)
        writes.append(((offs + disp, lens),
                       deterministic_bytes(rank, int(lens.sum()))))
    return sequential_golden(file_bytes_total(cfg), writes)


def _run_combo(case: DiffCase, hints: dict) -> dict[str, Any]:
    """One verified-mode simulation of ``case`` under ``hints``.

    The correctness oracle is always on, so the run itself raises
    :class:`~repro.errors.ValidationError` on any invariant or oracle
    violation; the returned metrics feed the replay-determinism check.
    """
    from repro.faults import FaultInjector, FaultPlan

    cfg = case.synthetic()
    injector = None
    plan = FaultPlan.coerce(case.faults)
    if not plan.is_empty:
        injector = FaultInjector(plan, seed=case.seed)
    machine = MachineConfig(nprocs=cfg.nprocs, cores_per_node=2)
    world = World(machine, net_params=NetworkParams(), faults=injector)
    fs = LustreFS(world.engine,
                  LustreParams(n_osts=case.n_osts,
                               default_stripe_count=case.stripe_count,
                               default_stripe_size=case.stripe_size,
                               store_data=True),
                  seed=case.seed, faults=injector)
    if injector is not None:
        injector.validate_platform(fs.params.n_osts, machine.nnodes)
    io = MPIIO(world, fs, validate=True)
    if any(plan.has_flaky(ost) for ost in range(case.n_osts)):
        # lost RPCs must never exhaust the retry budget in a gate run
        hints = {**hints, "retry_max_attempts": 12}

    def program(comm, _io):
        ft = filetype_for(cfg, comm.rank)
        disp = (rank_offsets_for_interleaved(cfg, comm.rank)
                if cfg.pattern == "interleaved" else 0)
        f = yield from io.open(comm, "diff", hints=hints)
        f.set_view(disp, BYTE, ft)
        data = deterministic_bytes(comm.rank, ft.size)
        yield from f.write_at_all(0, data)
        got = yield from f.read_at_all(0, ft.size)
        yield from f.close()
        return got

    world.launch(lambda comm: program(comm, io))
    raw = fs.lookup("diff").contents()
    full = np.zeros(file_bytes_total(cfg), dtype=np.uint8)
    full[: raw.size] = raw
    return {
        "bytes": full,
        "elapsed": world.engine.now,
        "messages": world.network.messages_sent,
        "events": world.engine.effects_dispatched,
        "report": io.validator.report.to_dict(),
        "checks": io.validator.report.total_checks,
    }


def _byte_diff(name: str, expected: np.ndarray,
               got: np.ndarray) -> Optional[OracleDiff]:
    bad = np.flatnonzero(expected != got)
    if bad.size == 0:
        return None
    first = int(bad[0])
    lo, hi = max(0, first - 4), min(expected.size, first + 8)
    return OracleDiff(file=name, kind="bytes", offset=first,
                      nbytes=int(bad.size),
                      expected=expected[lo:hi].tolist(),
                      got=got[lo:hi].tolist())


def run_case(case: DiffCase) -> dict[str, Any]:
    """Run every protocol/backend combination of one case.

    Returns ``{"case", "ok", "checks", "failures"}`` where failures
    carry enough context (combo label, diff/exception) to replay.
    """
    golden = golden_bytes(case.synthetic())
    parcoll_hints = {"protocol": "parcoll", "parcoll_ngroups": case.ngroups,
                     "parcoll_data_path": case.data_path}
    combos = [
        ("ext2ph@analytic", {"protocol": "ext2ph"}),
        ("parcoll@analytic", dict(parcoll_hints)),
        (f"parcoll@{case.backend}",
         {**parcoll_hints, "collective_mode": case.backend}),
    ]
    failures: list[dict[str, Any]] = []
    checks = 0
    replay_probe = None
    for label, hints in combos:
        try:
            out = _run_combo(case, hints)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            failures.append({"combo": label, "error": f"{type(exc).__name__}: {exc}"})
            continue
        checks += out["checks"]
        diff = _byte_diff(label, golden, out["bytes"])
        if diff is not None:
            failures.append({"combo": label, "diff": diff.to_dict()})
        if label.startswith("parcoll@") and "@analytic" not in label:
            replay_probe = (label, hints, out)
    if replay_probe is not None:
        label, hints, first = replay_probe
        try:
            second = _run_combo(case, hints)
        except Exception as exc:  # noqa: BLE001
            failures.append({"combo": f"replay:{label}",
                             "error": f"{type(exc).__name__}: {exc}"})
        else:
            checks += 1
            for metric in ("elapsed", "messages", "events"):
                if first[metric] != second[metric]:
                    failures.append({
                        "combo": f"replay:{label}",
                        "error": (f"non-deterministic {metric}: "
                                  f"{first[metric]!r} != {second[metric]!r}")})
    return {"case": case.to_dict(), "ok": not failures, "checks": checks,
            "failures": failures}


@dataclass
class DifferentialSummary:
    """Aggregated outcome of one harness run (the CI artifact)."""

    seed: int
    cases: int = 0
    passed: int = 0
    checks: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.passed == self.cases

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "cases": self.cases, "passed": self.passed,
                "checks": self.checks, "ok": self.ok,
                "failures": self.failures}

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def run_differential(cases: Sequence[DiffCase] | int, seed: int = 0,
                     progress=None) -> DifferentialSummary:
    """Run the harness over ``cases`` (a list, or a count to generate).

    ``progress`` is an optional ``fn(done, total)`` callback.
    """
    if isinstance(cases, int):
        cases = generate_cases(cases, seed=seed)
    summary = DifferentialSummary(seed=seed)
    total = len(cases)
    for i, case in enumerate(cases):
        out = run_case(case)
        summary.cases += 1
        summary.checks += out["checks"]
        if out["ok"]:
            summary.passed += 1
        else:
            summary.failures.append({"case": out["case"],
                                     "failures": out["failures"]})
        if progress is not None:
            progress(i + 1, total)
    return summary
