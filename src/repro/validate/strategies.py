"""Hypothesis strategies for the validation generator fleet.

Kept in the package (not the test tree) so property tests, the CI smoke
harness, and future fuzz drivers share one vocabulary of "interesting"
configurations.  Importing this module requires Hypothesis; nothing else
in :mod:`repro.validate` does.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.validate.differential import BACKENDS, PATTERNS, DiffCase
from repro.workloads.synthetic import SyntheticConfig


def synthetic_configs(max_procs: int = 8) -> st.SearchStrategy[SyntheticConfig]:
    """Random file views: the Figure 4 families over small rank counts."""
    return st.builds(
        SyntheticConfig,
        pattern=st.sampled_from(PATTERNS),
        nprocs=st.integers(2, max_procs),
        bytes_per_rank=st.sampled_from([256, 512, 1024, 2048, 4096]),
        piece_bytes=st.sampled_from([64, 128, 256]),
        seed=st.integers(0, 100_000),
    )


def stripe_settings() -> st.SearchStrategy[dict]:
    """Lustre tilings: stripe size/count over a small OST pool."""
    return st.sampled_from([2, 4]).flatmap(lambda n_osts: st.fixed_dictionaries({
        "stripe_size": st.sampled_from([256, 512, 1024]),
        "stripe_count": st.sampled_from(sorted({1, 2, n_osts})),
        "n_osts": st.just(n_osts),
    }))


def backend_modes() -> st.SearchStrategy[str]:
    """Every registered collective-fidelity backend family."""
    return st.sampled_from(BACKENDS)


def protocol_hints() -> st.SearchStrategy[dict]:
    """Hint dicts spanning every registered collective protocol."""
    parcoll = st.fixed_dictionaries({
        "protocol": st.just("parcoll"),
        "parcoll_ngroups": st.sampled_from([2, 3, 4, 8]),
        "parcoll_data_path": st.sampled_from(["physical", "logical"]),
    })
    ext2ph = st.fixed_dictionaries({
        "protocol": st.just("ext2ph"),
        "cb_buffer_size": st.sampled_from([512, 4 << 20]),
    })
    nodeagg = st.fixed_dictionaries({
        "protocol": st.just("nodeagg"),
        "parcoll_ngroups": st.sampled_from([1, 2, 4]),
    })
    listio = st.fixed_dictionaries({
        "protocol": st.sampled_from(["listio", "listio:16"]),
        "listio_max_segments": st.sampled_from([2, 8, 64]),
    })
    return st.one_of(st.just({"protocol": "independent"}), ext2ph, parcoll,
                     nodeagg, listio)


def fault_plans() -> st.SearchStrategy[FaultPlan]:
    """Byte-preserving fault plans (perf-only faults, or none at all)."""
    return st.one_of(
        st.just(FaultPlan()),
        st.builds(FaultPlan.straggler_ost,
                  ost=st.integers(0, 1),
                  factor=st.floats(0.25, 0.9)),
        st.builds(FaultPlan.slow_node,
                  node=st.just(0),
                  factor=st.floats(0.3, 0.9)),
    )


def diff_cases(workload: str = "synthetic") -> st.SearchStrategy[DiffCase]:
    """Full differential-harness cases (see :func:`run_case`).

    ``workload`` selects the case source: ``'synthetic'`` (default)
    draws Figure 4 patterns, ``'btio'``/``'flash_io'`` run the workload
    program (btio cases pin a square process count).
    """
    def build(cfg: SyntheticConfig, stripes: dict, backend: str,
              ngroups: int, data_path: str, plan: FaultPlan,
              nprocs_sq: int) -> DiffCase:
        return DiffCase(
            workload=workload,
            pattern=cfg.pattern,
            nprocs=nprocs_sq if workload == "btio" else cfg.nprocs,
            bytes_per_rank=cfg.bytes_per_rank,
            piece_bytes=cfg.piece_bytes, seed=cfg.seed,
            stripe_size=stripes["stripe_size"],
            stripe_count=stripes["stripe_count"],
            n_osts=stripes["n_osts"],
            ngroups=ngroups, data_path=data_path, backend=backend,
            faults=None if plan.is_empty else plan.to_dict(),
        )

    return st.builds(
        build,
        cfg=synthetic_configs(),
        stripes=stripe_settings(),
        backend=backend_modes(),
        ngroups=st.sampled_from([2, 3, 4, 8]),
        data_path=st.sampled_from(["physical", "logical"]),
        plan=fault_plans(),
        nprocs_sq=st.sampled_from([4, 9]),
    )


def workload_cases() -> st.SearchStrategy[DiffCase]:
    """BT-IO and Flash I/O differential cases (the PR 5 leftover):
    derived-datatype views and multi-dataset checkpoints through the same
    protocol-racing harness as the synthetic patterns."""
    return st.sampled_from(["btio", "flash_io"]).flatmap(diff_cases)
