"""Runtime invariant checks for the partitioned-collective protocol.

Pure functions over protocol state, each raising
:class:`~repro.errors.ValidationError` on violation.  They encode the
contracts the paper's correctness argument rests on:

* a :class:`~repro.parcoll.partition.PartitionPlan` must *tile* the
  accessed file: every rank grouped, File Areas pairwise disjoint, and
  (in intermediate mode) the logical FAs covering [0, total) exactly
  once (:func:`check_partition_plan`);
* an aggregator distribution must satisfy Section 4.2's three placement
  constraints (:func:`check_aggregator_distribution`);
* an intermediate-view translation must round-trip logical↔physical
  without creating or losing bytes (:func:`check_iview_roundtrip`);
* the vectorized two-phase round plan must cover each access byte
  exactly once across all rounds (:func:`check_exchange_plan`), and each
  aggregator round must conserve the bytes the alltoall announced
  (:func:`check_round_conservation`).

The checks are deliberately *independent* re-derivations — they never
call back into the code they validate.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.datatypes.flatten import Segments, coalesce
from repro.errors import ValidationError


def _fail(check: str, message: str, **detail) -> None:
    raise ValidationError(check, message, detail=detail or None)


def _same_segments(a: Segments, b: Segments) -> bool:
    return (a[0].size == b[0].size and np.array_equal(a[0], b[0])
            and np.array_equal(a[1], b[1]))


# ---------------------------------------------------------------------------
# File Area partitioning (Section 4.1)
# ---------------------------------------------------------------------------
def check_partition_plan(plan, extents: Sequence[tuple[int, int, int]]) -> None:
    """FA partitions must tile the accessed file exactly once.

    ``extents`` is the allgathered ``(lo, hi, nbytes)`` list the plan was
    computed from (``lo = -1`` marks an idle rank).
    """
    size = len(extents)
    check = "fa_partition"
    if len(plan.group_of) != size:
        _fail(check, f"plan covers {len(plan.group_of)} ranks, "
                     f"extents describe {size}")
    gids = set(plan.group_of)
    if gids != set(range(plan.ngroups)):
        _fail(check, f"group ids {sorted(gids)} are not exactly "
                     f"0..{plan.ngroups - 1}")
    active = [r for r in range(size)
              if extents[r][0] >= 0 and extents[r][2] > 0]
    if not active:
        return
    if plan.uses_intermediate_view:
        if plan.logical_prefix is None:
            _fail(check, "intermediate plan without logical prefixes")
        prefix = plan.logical_prefix
        total = sum(extents[r][2] for r in range(size))
        # every group's logical FA must hull its members
        for g, (lo, hi) in enumerate(plan.fa_bounds):
            members = [r for r in active if plan.group_of[r] == g]
            if not members:
                _fail(check, f"group {g} has no active members but a "
                             f"File Area [{lo}, {hi})")
            want_lo = min(prefix[r] for r in members)
            want_hi = max(prefix[r] + extents[r][2] for r in members)
            if (lo, hi) != (want_lo, want_hi):
                _fail(check, f"group {g} logical FA [{lo}, {hi}) is not "
                             f"the hull [{want_lo}, {want_hi}) of its "
                             "members", group=g)
        bounds = sorted(plan.fa_bounds)
        if bounds[0][0] != 0 or bounds[-1][1] != total:
            _fail(check, f"logical FAs {bounds} do not span [0, {total})")
        for (lo_a, hi_a), (lo_b, hi_b) in zip(bounds, bounds[1:]):
            if hi_a != lo_b:
                _fail(check, f"logical FAs leave a gap or overlap at "
                             f"[{hi_a}, {lo_b})")
        return
    # direct mode: physical FAs hull their members and stay disjoint
    for g, (lo, hi) in enumerate(plan.fa_bounds):
        members = [r for r in active if plan.group_of[r] == g]
        if not members:
            continue
        want_lo = min(extents[r][0] for r in members)
        want_hi = max(extents[r][1] for r in members)
        if (lo, hi) != (want_lo, want_hi):
            _fail(check, f"group {g} FA [{lo}, {hi}) is not the hull "
                         f"[{want_lo}, {want_hi}) of its members", group=g)
    occupied = sorted((lo, hi) for g, (lo, hi) in enumerate(plan.fa_bounds)
                      if any(plan.group_of[r] == g for r in active))
    for (lo_a, hi_a), (lo_b, hi_b) in zip(occupied, occupied[1:]):
        if hi_a > lo_b:
            _fail(check, f"File Areas overlap: [{lo_a}, {hi_a}) and "
                         f"[{lo_b}, {hi_b}) — a byte would belong to two "
                         "subgroups")


# ---------------------------------------------------------------------------
# Aggregator distribution (Section 4.2)
# ---------------------------------------------------------------------------
def check_aggregator_distribution(groups: Sequence[Sequence[int]],
                                  assignment: Sequence[Sequence[int]],
                                  agg_nodes: Sequence[int],
                                  node_of: Callable[[int], int]) -> None:
    """The paper's three placement constraints.

    (a) every subgroup holds at least one aggregator;
    (b) a physical node aggregates for at most one subgroup — except
        through the documented fallback (requirement (a) overrides (b)):
        a subgroup the round-robin left empty-handed takes its
        lowest-ranked member, whose node may already serve another
        subgroup.  A fallback assignment is exactly one aggregator equal
        to the subgroup's minimum member, so at most one *non*-fallback-
        shaped subgroup may claim any node;
    (c) no aggregator node slot hosting members goes unassigned, and
        when every subgroup reaches every slot the per-group counts
        differ by at most one.
    """
    check = "aggregator_distribution"
    if len(groups) != len(assignment):
        _fail(check, f"{len(groups)} groups but {len(assignment)} "
                     "assignment lists")
    agg_node_set = set(agg_nodes)
    #: node -> subgroups with an aggregator there
    node_claims: dict[int, list[int]] = {}
    fallback_shaped = set()
    for g, (members, aggs) in enumerate(zip(groups, assignment)):
        if not aggs:
            _fail(check, f"subgroup {g} got no aggregator "
                         "(constraint (a))", group=g)
        mset = set(members)
        seen_nodes = set()
        for a in aggs:
            if a not in mset:
                _fail(check, f"aggregator rank {a} assigned to subgroup "
                             f"{g} is not one of its members", group=g)
            n = node_of(a)
            if n in seen_nodes:
                _fail(check, f"subgroup {g} holds two aggregators on "
                             f"node {n}", group=g, node=n)
            seen_nodes.add(n)
            node_claims.setdefault(n, []).append(g)
        if len(aggs) == 1 and aggs[0] == min(members):
            fallback_shaped.add(g)
    # (b): a node shared by two subgroups is legal only when all but
    # (at most) one of them look like requirement-(a) fallbacks
    for n, claimants in sorted(node_claims.items()):
        non_fb = [g for g in claimants if g not in fallback_shaped]
        if len(non_fb) > 1:
            _fail(check, f"node {n} aggregates for subgroups {non_fb[0]} "
                         f"and {non_fb[1]} (constraint (b))", node=n)
    # (c) part 1: a slot hosting members of any subgroup must be used
    hosting = set()
    for members in groups:
        for r in members:
            n = node_of(r)
            if n in agg_node_set:
                hosting.add(n)
    unused = hosting - set(node_claims)
    if unused:
        _fail(check, f"aggregator node slot(s) {sorted(unused)} host "
                     "subgroup members but serve no subgroup "
                     "(constraint (c))")
    # (c) part 2: with full reach, counts are balanced to within one
    reach_all = all(
        agg_node_set <= {node_of(r) for r in members} for members in groups)
    if reach_all and len(groups) > len(fallback_shaped):
        counts = [len(a) for g, a in enumerate(assignment)
                  if g not in fallback_shaped]
        if max(counts) - min(counts) > 1:
            _fail(check, f"aggregator counts {counts} differ by more "
                         "than one although every subgroup reaches every "
                         "slot (constraint (c))")


# ---------------------------------------------------------------------------
# Intermediate-view translation
# ---------------------------------------------------------------------------
def check_iview_roundtrip(iview) -> None:
    """Logical↔physical translation must conserve bytes and partition
    the physical access.

    Probes the translator with the full logical range and a split at an
    interior point: each piece must keep its byte count, and the pieces
    of any disjoint logical cover must reassemble to exactly the
    original physical segments.
    """
    check = "iview_roundtrip"
    total = iview.total
    if total == 0:
        return
    base = iview.logical_base
    phys = coalesce(*iview.phys_segs)

    def probe(lo: int, hi: int) -> Segments:
        seg = (np.array([base + lo], dtype=np.int64),
               np.array([hi - lo], dtype=np.int64))
        out = iview.translate(seg)
        got = int(out[1].sum()) if out[0].size else 0
        if got != hi - lo:
            _fail(check, f"translating logical [{lo}, {hi}) yielded "
                         f"{got} physical bytes, expected {hi - lo}",
                  lo=lo, hi=hi, got=got)
        return out

    full = probe(0, total)
    if not _same_segments(coalesce(*full), phys):
        _fail(check, "translating the full logical range does not "
                     "reproduce the physical segments")
    mid = total // 2
    if 0 < mid < total:
        left = probe(0, mid)
        right = probe(mid, total)
        joined = coalesce(np.concatenate([left[0], right[0]]),
                          np.concatenate([left[1], right[1]]))
        if not _same_segments(joined, phys):
            _fail(check, f"splitting the logical range at {mid} loses or "
                         "duplicates physical bytes")


# ---------------------------------------------------------------------------
# Two-phase exchange conservation
# ---------------------------------------------------------------------------
def check_exchange_plan(segs: Segments, plan, ntimes: int) -> None:
    """The vectorized round plan must cover the access exactly once.

    Every byte of ``segs`` appears in exactly one (aggregator, round)
    piece, every piece is non-empty, and no piece targets a round beyond
    the agreed count.
    """
    check = "exchange_plan"
    want = coalesce(*segs)
    if not plan:
        if want[0].size:
            _fail(check, f"empty round plan for an access of "
                         f"{int(want[1].sum())} bytes")
        return
    all_offs = np.concatenate([p[1] for p in plan])
    all_lens = np.concatenate([p[2] for p in plan])
    all_rounds = np.concatenate([p[3] for p in plan])
    if all_lens.size and int(all_lens.min()) <= 0:
        _fail(check, "round plan contains an empty piece")
    if all_rounds.size and (int(all_rounds.min()) < 0
                            or int(all_rounds.max()) >= ntimes):
        _fail(check, f"round plan targets round "
                     f"{int(all_rounds.max())} of an agreed {ntimes}")
    total = int(all_lens.sum())
    want_total = int(want[1].sum())
    if total != want_total:
        _fail(check, f"round plan moves {total} bytes for an access of "
                     f"{want_total} (bytes created or lost)")
    got = coalesce(all_offs, all_lens)
    if int(got[1].sum()) != want_total:
        _fail(check, "round plan pieces overlap: some byte is shipped "
                     "twice")
    if not _same_segments(got, want):
        _fail(check, "round plan pieces do not reassemble the access "
                     "segments")


def check_round_conservation(announced: int, received: int,
                             written: int, rnd: int) -> None:
    """One aggregator round: alltoall counts == received == written."""
    check = "round_conservation"
    if received != announced:
        _fail(check, f"round {rnd}: alltoall announced {announced} "
                     f"bytes but {received} arrived", round=rnd)
    if written != received:
        _fail(check, f"round {rnd}: {received} bytes arrived but "
                     f"{written} were merged for the file write",
              round=rnd)
