"""The runtime validation context threaded through one simulated platform.

One :class:`Validator` is shared by every rank of a simulation (ranks
are generators inside one process, so sharing is free).  The MPI-IO
layer calls its hooks when validation is enabled — via the
``parcoll_validate`` MPI-IO hint, the ``validate`` field of an
:class:`~repro.harness.runner.ExperimentConfig`, the CLI ``--validate``
flag, or the ``REPRO_VALIDATE`` environment variable:

* :meth:`record_write` / :meth:`after_collective_write` maintain the
  per-file :class:`~repro.validate.oracle.ShadowFile` and diff it
  against the simulated Lustre file once the last rank of the
  communicator leaves each collective write (and again at close, which
  also covers independent writes);
* :meth:`check_read` asserts a read returned exactly the oracle bytes;
* the ``check_*`` wrappers dispatch to :mod:`repro.validate.invariants`
  and count every check into the :class:`ValidationReport`.

Checks fail *loudly*: the first violation raises
:class:`~repro.errors.ValidationError` out of the simulation.  The
report records how many checks ran — a run that reports zero checks
validated nothing.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.datatypes.flatten import Segments
from repro.validate import invariants
from repro.validate.oracle import OracleDiff, ShadowFile


def env_validate_enabled(environ: Optional[dict] = None) -> bool:
    """Whether ``REPRO_VALIDATE`` asks for validation (unset/0/'' = no)."""
    raw = (environ if environ is not None else os.environ).get(
        "REPRO_VALIDATE", "")
    return str(raw).strip().lower() not in ("", "0", "false", "no", "off")


@dataclass
class ValidationReport:
    """What one validated run actually checked."""

    #: check name -> number of times it ran (and passed)
    checks: Counter = field(default_factory=Counter)
    #: oracle diffs encountered (non-empty only if a caller collected
    #: instead of raising; the default hooks raise on the first diff)
    violations: list = field(default_factory=list)

    @property
    def total_checks(self) -> int:
        return int(sum(self.checks.values()))

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {"checks": dict(self.checks),
                "violations": [v.to_dict() if isinstance(v, OracleDiff)
                               else str(v) for v in self.violations]}

    def summary(self) -> str:
        if not self.checks:
            return "validation: no checks ran"
        parts = ", ".join(f"{name} x{n}"
                          for name, n in sorted(self.checks.items()))
        state = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return f"validation {state}: {self.total_checks} checks ({parts})"


class Validator:
    """Shared validation state for one simulated platform."""

    def __init__(self) -> None:
        self.report = ValidationReport()
        self._shadows: dict[str, ShadowFile] = {}
        #: per-file counters of recorded writes started / completed
        self._write_started: Counter = Counter()
        self._write_done: Counter = Counter()

    # ------------------------------------------------------------------
    # file-content oracle hooks (MPIFile level)
    # ------------------------------------------------------------------
    def shadow(self, name: str, verified: bool) -> ShadowFile:
        sh = self._shadows.get(name)
        if sh is None:
            sh = ShadowFile(name, verified)
            self._shadows[name] = sh
        return sh

    def record_write(self, lfile, segs: Segments,
                     data: Optional[np.ndarray]) -> int:
        """Register one rank's contribution before the protocol runs.

        Returns the shadow's happens-before token for this write; the
        completion hooks take it back so the read oracle knows which
        writes have provably landed.
        """
        self._write_started[lfile.name] += 1
        return self.shadow(lfile.name,
                           lfile.store is not None).record(segs, data)

    def after_write(self, lfile, token: Optional[int] = None) -> None:
        """Mark one recorded write (collective or independent) landed.

        Only independent writes pass a ``token``: their data is applied
        by the calling rank itself, so call return implies the bytes are
        in the store.  A collective write's call may return before its
        data lands (eager sends), so its token is only retired at
        quiescent points (:meth:`after_collective_write` coverage
        equality, or the close barrier).
        """
        self._write_done[lfile.name] += 1
        if token is not None:
            sh = self._shadows.get(lfile.name)
            if sh is not None:
                sh.complete(token)

    def after_collective_write(self, lfile, comm_size: int) -> None:
        """Diff shadow vs simulated file at quiescent epoch boundaries.

        Ranks are *not* in lockstep: a fast rank may have entered (and
        recorded) the next collective before the slowest finishes this
        one, and eager sends let a rank's call complete before its data
        reaches the aggregator that writes it.  The mid-file check
        therefore fires only when the run is quiescent by coverage:
        every call that recorded a write has returned, and the file has
        received exactly the bytes the shadow recorded (no write still
        in flight, no overlapping rewrite that would hide one).  The
        close hook still runs the unconditional check after a barrier.
        """
        self.after_write(lfile)
        name = lfile.name
        if (self._write_done[name] % comm_size
                or self._write_done[name] != self._write_started[name]):
            return
        sh = self._shadows.get(name)
        if sh is None:
            return
        cov = sh.covered_bytes
        if sh.total_recorded != cov:
            # rewrites make coverage equality blind to in-flight data
            return
        if lfile.tracker.covered_bytes != cov:
            return  # some recorded bytes have not landed yet
        self.check_file(lfile)

    def check_file(self, lfile) -> None:
        """Byte- (verified) or extent-level (model) oracle comparison.

        Runs only at quiescent points (coverage equality mid-run, or
        after the close barrier), so every recorded write has landed —
        the happens-before tracker retires all pending tokens here.
        """
        sh = self._shadows.get(lfile.name)
        if sh is None:
            return
        sh.complete_all()
        if lfile.store is not None:
            diff = sh.diff_bytes(lfile.store.snapshot())
            self.report.checks["file_oracle_bytes"] += 1
        else:
            if not sh.exact_coverage:
                # sieved writes touch bytes outside their segments; the
                # coverage map is then a superset and diffing would lie
                self.report.checks["file_oracle_extents_skipped"] += 1
                return
            offs, lens = lfile.tracker.extents
            diff = sh.diff_extents(offs, lens)
            self.report.checks["file_oracle_extents"] += 1
        if diff is not None:
            self.report.violations.append(diff)
            diff.raise_()

    def check_independent_read(self, lfile, segs: Segments,
                               got: Optional[np.ndarray]) -> None:
        """Read-back oracle for independent ``read_at``.

        Independent reads carry no collective synchronization, so the
        oracle only judges reads that provably happen after every
        overlapping write (the shadow's happens-before tracker: no
        overlapping write pending, no unordered racing writers).  A read
        racing a write may legitimately observe either state and is
        counted as skipped instead.
        """
        if lfile.store is None or got is None:
            return
        sh = self.shadow(lfile.name, True)
        if not sh.checkable_read(segs):
            self.report.checks["read_oracle_skipped"] += 1
            return
        self.check_read(lfile, segs, got)

    def check_read(self, lfile, segs: Segments,
                   got: Optional[np.ndarray]) -> None:
        """Read-back oracle: the returned bytes must match the shadow."""
        if lfile.store is None or got is None:
            return
        sh = self.shadow(lfile.name, True)
        expected = sh.expected_read(segs)
        got = np.asarray(got, dtype=np.uint8).ravel()
        self.report.checks["read_oracle"] += 1
        if got.size != expected.size or not np.array_equal(got, expected):
            bad = np.flatnonzero(expected[:min(expected.size, got.size)]
                                 != got[:min(expected.size, got.size)])
            first = int(bad[0]) if bad.size else min(expected.size, got.size)
            diff = OracleDiff(file=lfile.name, kind="read", offset=first,
                              nbytes=int(bad.size)
                              or abs(expected.size - got.size))
            self.report.violations.append(diff)
            diff.raise_()

    # ------------------------------------------------------------------
    # invariant hooks (protocol level)
    # ------------------------------------------------------------------
    def check_partition_plan(self, plan,
                             extents: Sequence[tuple[int, int, int]]) -> None:
        invariants.check_partition_plan(plan, extents)
        self.report.checks["fa_partition"] += 1

    def check_aggregator_distribution(
            self, groups: Sequence[Sequence[int]],
            assignment: Sequence[Sequence[int]],
            agg_nodes: Sequence[int],
            node_of: Callable[[int], int]) -> None:
        invariants.check_aggregator_distribution(groups, assignment,
                                                 agg_nodes, node_of)
        self.report.checks["aggregator_distribution"] += 1

    def check_iview_roundtrip(self, iview) -> None:
        invariants.check_iview_roundtrip(iview)
        self.report.checks["iview_roundtrip"] += 1

    def check_exchange_plan(self, segs: Segments, plan,
                            ntimes: int) -> None:
        invariants.check_exchange_plan(segs, plan, ntimes)
        self.report.checks["exchange_plan"] += 1

    def check_round_conservation(self, announced: int, received: int,
                                 written: int, rnd: int) -> None:
        invariants.check_round_conservation(announced, received, written,
                                            rnd)
        self.report.checks["round_conservation"] += 1
