"""The file system facade: MDS, OSTs, files, and timed client operations.

All client operations are generators (``yield from``) so callers block for
the modeled service time; callers charge the elapsed time to their own
category ('io' in the MPI-IO layer).

Timing of a write/read of a segment list from one client:

1. split segments into stripe chunks (``StripeLayout.chunks``);
2. per touched OST: lock check (revocation penalties), then one FIFO
   reservation covering the OST's bytes plus per-RPC overheads (requests
   are chunked into ``max_rpc_size`` RPCs) and deterministic jitter;
3. the client blocks until the slowest OST finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.datatypes.packing import gather_segments
from repro.errors import FileSystemError
from repro.lustre.layout import StripeLayout
from repro.lustre.locks import LockManager
from repro.lustre.store import ByteStore, ExtentTracker
from repro.sim.effects import Sleep, WaitEvent
from repro.sim.engine import _K_CALL1, Engine, Event
from repro.sim.resources import FIFOResource
from repro.sim.rng import RngStreams

#: heap-seq band for same-instant file-system commits.  Every FS
#: operation defers its state mutation (resource reservation, lock
#: access, jitter draw, store update) to an entry at
#: ``(now, _FS_COMMIT_SEQ + client)``: all ordinary engine traffic at an
#: instant runs first, then the FS commits in client-rank order.  That
#: makes the global service order of same-time requests *canonical* —
#: a deterministic function of (time, client) instead of an artifact of
#: event-cascade scheduling — which is what lets a sharded run
#: (:mod:`repro.shard`) reproduce it exactly.  Far above any reachable
#: engine sequence number.
_FS_COMMIT_SEQ = 1 << 62
#: sub-band for anonymous (client < 0) callers, ordered by arrival
_FS_COMMIT_ANON = 1 << 63


@dataclass(frozen=True)
class LustreParams:
    """File-system configuration; defaults follow the paper's testbed.

    The paper's file system has 72 OSTs on 4 Gb FC links; test files are
    striped over 64 targets with 4 MB stripes.
    """

    n_osts: int = 72
    #: per-OST sustained bandwidth, bytes/second
    ost_bandwidth: float = 400e6
    #: fixed service overhead per RPC at the OST
    ost_rpc_overhead: float = 0.4e-3
    #: largest single RPC; bigger transfers become several RPCs
    max_rpc_size: int = 1 << 20
    #: per-discontiguous-extent cost (niobuf descriptor + OST extent
    #: processing); Lustre packs many extents into one bulk RPC, so this
    #: is far cheaper than a full RPC round-trip
    ost_chunk_overhead: float = 5e-6
    #: default striping for new files
    default_stripe_count: int = 64
    default_stripe_size: int = 4 << 20
    #: penalty per extent-lock revocation (round trip + dirty flush)
    lock_revoke_cost: float = 2.0e-3
    #: penalty per fresh lock grant (enqueue + server round trip)
    lock_grant_cost: float = 0.2e-3
    #: penalty when an OST *read* is not sequential with the previous
    #: request it served for the same file (disk head movement).  Writes
    #: are absorbed by the server's write-back cache and elevator, so
    #: by default they pay per-extent costs but not seeks.
    ost_seek_cost: float = 1.0e-3
    #: charge seeks on writes too (servers without write-back, e.g. the
    #: PVFS-like preset)
    seek_on_writes: bool = False
    #: MDS service time per open/create/close
    mds_op_cost: float = 0.5e-3
    #: client-side per-operation overhead (liblustre/SYSIO path)
    client_overhead: float = 20e-6
    #: deterministic service-time jitter fraction (skew source)
    jitter: float = 0.15
    #: store real bytes (verified mode) or track extents only (model mode)
    store_data: bool = True

    def __post_init__(self) -> None:
        if self.n_osts <= 0:
            raise FileSystemError("n_osts must be positive")
        if self.ost_bandwidth <= 0:
            raise FileSystemError("ost_bandwidth must be positive")
        if not 0 < self.default_stripe_count <= self.n_osts:
            raise FileSystemError("default_stripe_count must be in 1..n_osts")
        if self.default_stripe_size <= 0 or self.max_rpc_size <= 0:
            raise FileSystemError("stripe/rpc sizes must be positive")
        if self.jitter < 0:
            raise FileSystemError("jitter must be >= 0")


class LustreFile:
    """An open file: layout, lock state, and its backing store."""

    __slots__ = ("name", "layout", "locks", "store", "tracker")

    def __init__(self, name: str, layout: StripeLayout, store_data: bool):
        self.name = name
        self.layout = layout
        self.locks = LockManager()
        self.store: Optional[ByteStore] = ByteStore() if store_data else None
        self.tracker = ExtentTracker()

    @property
    def size(self) -> int:
        return self.tracker.size

    def contents(self) -> np.ndarray:
        if self.store is None:
            raise FileSystemError(
                f"file {self.name!r} is in model mode; no data stored"
            )
        return self.store.snapshot()


class LustreFS:
    """The shared file system instance for one simulated machine."""

    def __init__(self, engine: Engine, params: Optional[LustreParams] = None,
                 seed: int = 0, trace: Optional["object"] = None,
                 faults: Optional["object"] = None,
                 retry: Optional["object"] = None):
        self.engine = engine
        self.params = params or LustreParams()
        #: optional TraceRecorder receiving ('ost', {...}) events
        self.trace = trace
        #: optional FaultInjector (OST degradation/stalls/flaky RPCs)
        self.faults = faults
        p = self.params
        self.mds = FIFOResource(engine, "mds", rate=1e12, overhead=p.mds_op_cost)
        self.osts = [
            FIFOResource(engine, f"ost-{i}", rate=p.ost_bandwidth,
                         overhead=p.ost_rpc_overhead)
            for i in range(p.n_osts)
        ]
        if faults is not None:
            for i, res in enumerate(self.osts):
                res.profile = faults.ost_profile(i)
        #: default RetryPolicy for faulted RPCs (hints may override per file)
        if retry is None:
            from repro.faults.retry import RetryPolicy

            retry = RetryPolicy()
        self.retry = retry
        #: per-client (retry seconds, lost RPCs) since last take_retry()
        self._retry_accum: dict[int, tuple[float, int]] = {}
        #: arrival counter ordering anonymous (client < 0) commits
        self._anon_commits = 0
        self._rng = RngStreams(seed)
        self._ost_rngs = [self._rng.stream(f"ost-{i}") for i in range(p.n_osts)]
        #: last byte each OST served, per file (sequentiality tracking)
        self._ost_heads: list[dict[str, int]] = [{} for _ in range(p.n_osts)]
        self._files: dict[str, LustreFile] = {}
        self._next_start_ost = 0
        # statistics
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    # canonical commit ordering
    # ------------------------------------------------------------------
    def _commit(self, client: int, fn):
        """Run ``fn`` at this instant's canonical commit slot.

        Defers the operation's state mutation to the
        :data:`_FS_COMMIT_SEQ` heap band so same-time operations commit
        in client-rank order regardless of task scheduling order.
        Returns ``fn()``'s value; exceptions re-raise in the caller.
        """
        eng = self.engine
        if client >= 0:
            seq = _FS_COMMIT_SEQ + client
        else:
            self._anon_commits += 1
            seq = _FS_COMMIT_ANON + self._anon_commits
        ev = Event(eng, ("fs-commit", client))

        def run(_none):
            try:
                ev.fire((True, fn()))
            except Exception as exc:  # re-raised in the waiting task
                ev.fire((False, exc))

        eng._sched_at_seq(eng.now, seq, _K_CALL1, run, None)
        ok, out = yield WaitEvent(ev)
        if not ok:
            raise out
        return out

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def open(self, name: str, create: bool = True,
             stripe_count: Optional[int] = None,
             stripe_size: Optional[int] = None,
             client: int = -1) -> Generator[Any, Any, LustreFile]:
        """Open (and maybe create) a file; serializes through the MDS.

        ``client`` identifies the calling rank; it breaks same-instant
        ordering ties and keys the canonical global service order in
        sharded runs.
        """
        done = yield from self._commit(client, lambda: self.mds.reserve(0))
        yield Sleep(done - self.engine.now)
        f = self._files.get(name)
        if f is None:
            if not create:
                raise FileSystemError(f"no such file: {name!r}")
            p = self.params
            layout = StripeLayout(
                stripe_size=stripe_size or p.default_stripe_size,
                stripe_count=stripe_count or p.default_stripe_count,
                n_osts=p.n_osts,
                start_ost=self._next_start_ost,
            )
            self._next_start_ost = (self._next_start_ost + 1) % p.n_osts
            f = LustreFile(name, layout, p.store_data)
            self._files[name] = f
        return f

    def lookup(self, name: str) -> LustreFile:
        f = self._files.get(name)
        if f is None:
            raise FileSystemError(f"no such file: {name!r}")
        return f

    def unlink(self, name: str, client: int = -1) -> Generator[Any, Any, None]:
        done = yield from self._commit(client, lambda: self.mds.reserve(0))
        yield Sleep(done - self.engine.now)
        self._files.pop(name, None)

    def mds_close(self, client: int = -1) -> Generator[Any, Any, None]:
        """One close-time MDS round trip, attributable to ``client``."""
        done = yield from self._commit(client, lambda: self.mds.reserve(0))
        yield Sleep(done - self.engine.now)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _jitter_time(self, ost: int, stime: float) -> float:
        j = self.params.jitter
        if j <= 0:
            return 0.0
        return float(self._ost_rngs[ost].random()) * j * stime

    def take_retry(self, client: int) -> tuple[float, int]:
        """Pop (retry seconds, lost RPCs) accumulated for one client.

        The MPI-IO layer calls this at each io-charge site so that time
        lost to fault retries lands in the ``fault_retry`` breakdown
        category instead of ``io``.
        """
        return self._retry_accum.pop(client, (0.0, 0))

    def _do_io(self, f: LustreFile, client: int, offsets, lengths,
               mode: str, retry: Optional["object"] = None) -> float:
        """Reserve OST time for the access; returns the completion time."""
        p = self.params
        policy = retry if retry is not None else self.retry
        chunk_off, chunk_len, chunk_ost = f.layout.chunks(offsets, lengths)
        if chunk_len.size == 0:
            return self.engine.now
        done = self.engine.now
        # group chunks per OST: one reservation per OST per call
        order = np.argsort(chunk_ost, kind="stable")
        osts = chunk_ost[order]
        lens = chunk_len[order]
        boundaries = np.flatnonzero(np.diff(osts)) + 1
        groups = np.split(np.arange(osts.size), boundaries)
        sorted_off = chunk_off[order]
        for grp in groups:
            ost = int(osts[grp[0]])
            nbytes = int(lens[grp].sum())
            # bulk RPCs are sized by volume (Lustre packs discontiguous
            # extents into one BRW request); each extent adds a small
            # descriptor/processing cost on top
            nchunks = grp.size
            nrpcs = max(1, -(-nbytes // p.max_rpc_size))
            grants, revokes = f.locks.access(ost, client, mode)
            # sequentiality: a request picking up where the OST last left
            # off for this file streams; anything else pays a seek
            first = int(sorted_off[grp[0]])
            last = int(sorted_off[grp[-1]] + lens[grp[-1]])
            heads = self._ost_heads[ost]
            seek = 0.0
            if ((mode == "r" or p.seek_on_writes)
                    and heads.get(f.name) != first):
                seek = p.ost_seek_cost
            heads[f.name] = last
            res = self.osts[ost]
            extra = ((nrpcs - 1) * p.ost_rpc_overhead
                     + nchunks * p.ost_chunk_overhead
                     + grants * p.lock_grant_cost
                     + revokes * p.lock_revoke_cost
                     + seek)
            base = res.service_time(nbytes) + extra
            extra += self._jitter_time(ost, base)
            now = self.engine.now
            if self.faults is not None:
                # a lost RPC dies in transit: the OST is never occupied,
                # the client just re-issues after timeout + backoff, so
                # the request reaches the server `delay` seconds late
                delay, failures = self.faults.rpc_delay(ost, now, policy)
                if failures:
                    self.faults.record_retry(ost, delay, failures)
                    held_s, held_n = self._retry_accum.get(client, (0.0, 0))
                    self._retry_accum[client] = (held_s + delay,
                                                 held_n + failures)
                span_start, finished = res.reserve_span(now + delay, nbytes,
                                                        extra=extra)
            else:
                span_start, finished = res.reserve_span(now, nbytes,
                                                        extra=extra)
            if self.trace is not None:
                self.trace.record(self.engine.now, "ost", {
                    "ost": ost, "client": client, "mode": mode,
                    "start": span_start, "end": finished,
                    "nbytes": nbytes, "nchunks": nchunks,
                })
            done = max(done, finished)
        return done + p.client_overhead

    def write(self, f: LustreFile, client: int, offsets, lengths,
              data: Optional[np.ndarray] = None,
              retry: Optional["object"] = None
              ) -> Generator[Any, Any, int]:
        """Write segments (densely packed ``data``) as one client operation.

        Returns bytes written.  ``data=None`` is allowed only in model mode.
        """
        offsets = np.asarray(offsets, dtype=np.int64).ravel()
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        total = int(lengths.sum())
        if f.store is not None:
            if data is None:
                raise FileSystemError(
                    "verified-mode write requires data (or set store_data=False)"
                )
            flat = np.asarray(data, dtype=np.uint8).ravel()
            if flat.size != total:
                raise FileSystemError(
                    f"data has {flat.size} bytes, segments cover {total}"
                )
        else:
            flat = None

        def commit():
            if flat is not None:
                pos = 0
                for off, ln in zip(offsets.tolist(), lengths.tolist()):
                    f.store.write(off, flat[pos:pos + ln])
                    pos += ln
            for off, ln in zip(offsets.tolist(), lengths.tolist()):
                f.tracker.write(off, ln)
            return self._do_io(f, client, offsets, lengths, "w", retry=retry)

        done = yield from self._commit(client, commit)
        self.bytes_written += total
        yield Sleep(done - self.engine.now)
        return total

    def read(self, f: LustreFile, client: int, offsets, lengths,
             retry: Optional["object"] = None
             ) -> Generator[Any, Any, Optional[np.ndarray]]:
        """Read segments; returns densely packed bytes (None in model mode)."""
        offsets = np.asarray(offsets, dtype=np.int64).ravel()
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        total = int(lengths.sum())
        done = yield from self._commit(
            client,
            lambda: self._do_io(f, client, offsets, lengths, "r",
                                retry=retry))
        self.bytes_read += total
        yield Sleep(done - self.engine.now)
        if f.store is None:
            return None
        out = np.empty(total, dtype=np.uint8)
        pos = 0
        for off, ln in zip(offsets.tolist(), lengths.tolist()):
            out[pos:pos + ln] = f.store.read(off, ln)
            pos += ln
        return out
