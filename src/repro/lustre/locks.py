"""Extent-lock model per (file, OST) object.

Lustre grants a client an extent lock on an OST object and — to amortize
round-trips — expands it to cover as much of the object as possible.  The
consequence this model keeps: a client re-touching an object it already
holds pays nothing, while a *different* client touching the same object
forces a revocation round-trip (and cache flush) first.

Reads take shared locks (any number of concurrent readers), writes take
exclusive locks.  The per-access result is the number of revocations to
charge on the OST's service time.
"""

from __future__ import annotations

from repro.errors import FileSystemError


class _ObjectLock:
    """Lock state of one OST object: mode + holder set."""

    __slots__ = ("mode", "holders")

    def __init__(self) -> None:
        self.mode: str | None = None  # None | 'r' | 'w'
        self.holders: set[int] = set()


class LockManager:
    """All object locks of one file, plus revocation statistics."""

    __slots__ = ("_objects", "revocations", "grants")

    def __init__(self) -> None:
        self._objects: dict[int, _ObjectLock] = {}
        self.revocations = 0
        self.grants = 0

    def access(self, ost: int, client: int, mode: str) -> tuple[int, int]:
        """Record an access; returns ``(new_grants, revocations)``.

        A grant is a lock-acquisition round trip (the client did not
        already hold a sufficient lock); a revocation additionally forces
        other holders to flush and cancel.  Repeated access by the holder
        is free — which is why an aggregator owning a stable file domain
        writes cheaply while interleaved independent writers thrash.
        """
        if mode not in ("r", "w"):
            raise FileSystemError(f"lock mode must be 'r' or 'w', got {mode!r}")
        obj = self._objects.get(ost)
        if obj is None:
            obj = _ObjectLock()
            self._objects[ost] = obj
        if obj.mode is None:
            obj.mode = mode
            obj.holders = {client}
            self.grants += 1
            return 1, 0
        if mode == "r" and obj.mode == "r":
            if client not in obj.holders:
                obj.holders.add(client)
                self.grants += 1
                return 1, 0
            return 0, 0
        if client in obj.holders and obj.mode == mode:
            return 0, 0
        if obj.mode == "w" and obj.holders == {client}:
            # write-lock holder may read its own data
            return 0, 0
        # conflict: revoke every other holder, grant to this client
        revoked = len(obj.holders - {client})
        obj.mode = mode
        obj.holders = {client}
        self.revocations += revoked
        self.grants += 1
        return 1, revoked

    def holder_count(self, ost: int) -> int:
        obj = self._objects.get(ost)
        return 0 if obj is None else len(obj.holders)
