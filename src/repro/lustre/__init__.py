"""Simulated Lustre: striped object storage with contention and locks.

Models the parts of Lustre that shape collective-I/O performance on the
Cray XT:

* **striping** — a file is round-robin striped over ``stripe_count`` OSTs
  in ``stripe_size`` chunks (the paper uses 64 targets × 4 MB);
* **OST service queues** — each OST serves requests FIFO at a fixed
  bandwidth with per-RPC overhead and optional deterministic jitter, so
  many clients hitting one OST serialize and create the per-round skew
  that global synchronization then amplifies;
* **extent locks** — an OST object is protected by a client-granted lock;
  a different client touching the same object pays a revocation penalty.
  Interleaved fine-grained writes from many clients ping-pong locks
  (why Flash I/O without collective buffering collapses to ~60 MB/s),
  while aggregated, OST-aligned file domains keep locks stable;
* **MDS** — opens/creates serialize through a metadata server.

Data is real: verified runs store bytes (NumPy) and tests assert byte
equality; model runs track written extents only.
"""

from repro.lustre.fs import LustreFS, LustreParams
from repro.lustre.layout import StripeLayout
from repro.lustre.locks import LockManager
from repro.lustre.presets import preset
from repro.lustre.store import ByteStore, ExtentTracker

__all__ = [
    "LustreFS",
    "LustreParams",
    "StripeLayout",
    "LockManager",
    "preset",
    "ByteStore",
    "ExtentTracker",
]
