"""File-system presets: the paper's Section-6 cross-platform study.

The paper's future work proposes examining the collective wall "over
other massively parallel platforms with different underlying file
systems, such as GPFS and PVFS".  The simulated object store is
parameterized enough to approximate their contention characters:

* **lustre_xt** — the paper's testbed: 72 OSTs, 64-way 4 MB striping,
  client extent locks with grant/revocation costs (DLM), server
  write-back absorbing write seeks;
* **pvfs_like** — PVFS2: no client locking at all (the application is
  responsible for consistency), smaller stripe (64 KB default), lighter
  per-request server path — fine-grained interleaved writes do not
  thrash locks, but small requests still pay per-RPC costs;
* **gpfs_like** — GPFS: distributed byte-range tokens (cheaper grants,
  comparably expensive steals), large blocks (4 MB), strong per-block
  affinity.

These are *approximations by mechanism*, not calibrated models of real
deployments; the cross-FS benchmark compares how the same protocols
behave as the locking/striping character changes.
"""

from __future__ import annotations

from repro.lustre.fs import LustreParams

PRESET_NAMES = ("lustre_xt", "pvfs_like", "gpfs_like")


def preset(name: str, **overrides) -> LustreParams:
    """Build a :class:`LustreParams` for a named file-system character."""
    if name == "lustre_xt":
        base = dict(
            n_osts=72,
            ost_bandwidth=400e6,
            default_stripe_count=64,
            default_stripe_size=4 << 20,
            lock_grant_cost=0.2e-3,
            lock_revoke_cost=2.0e-3,
        )
    elif name == "pvfs_like":
        base = dict(
            n_osts=64,
            ost_bandwidth=350e6,
            default_stripe_count=64,
            default_stripe_size=64 << 10,
            # no client locks: consistency is the application's problem
            lock_grant_cost=0.0,
            lock_revoke_cost=0.0,
            # no server write-back either: seeks hit writes and reads
            ost_seek_cost=0.8e-3,
            seek_on_writes=True,
            ost_rpc_overhead=0.3e-3,
        )
    elif name == "gpfs_like":
        base = dict(
            n_osts=64,
            ost_bandwidth=450e6,
            default_stripe_count=64,
            default_stripe_size=4 << 20,
            # byte-range tokens: cheap to acquire, costly to steal
            lock_grant_cost=0.05e-3,
            lock_revoke_cost=3.0e-3,
            ost_rpc_overhead=0.3e-3,
        )
    else:
        raise ValueError(
            f"unknown file-system preset {name!r}; available: {PRESET_NAMES}"
        )
    base.update(overrides)
    return LustreParams(**base)
