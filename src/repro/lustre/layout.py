"""Striping math: file offsets to (OST, chunk) decomposition, vectorized."""

from __future__ import annotations

import numpy as np

from repro.errors import FileSystemError


class StripeLayout:
    """Round-robin striping of a file across OSTs.

    Byte ``b`` lives in stripe ``b // stripe_size``; stripe ``s`` lives on
    OST ``(start_ost + s) % n_osts`` restricted to the file's
    ``stripe_count`` targets.
    """

    __slots__ = ("stripe_size", "stripe_count", "start_ost", "n_osts")

    def __init__(self, stripe_size: int, stripe_count: int, n_osts: int,
                 start_ost: int = 0):
        if stripe_size <= 0:
            raise FileSystemError(f"stripe_size must be > 0, got {stripe_size}")
        if not 0 < stripe_count <= n_osts:
            raise FileSystemError(
                f"stripe_count {stripe_count} must be in 1..{n_osts}"
            )
        if not 0 <= start_ost < n_osts:
            raise FileSystemError(f"start_ost {start_ost} out of range")
        self.stripe_size = int(stripe_size)
        self.stripe_count = int(stripe_count)
        self.start_ost = int(start_ost)
        self.n_osts = int(n_osts)

    def ost_of_stripe(self, stripe_index) -> np.ndarray:
        """Global OST id(s) holding the given stripe index(es)."""
        s = np.asarray(stripe_index, dtype=np.int64)
        return (self.start_ost + s % self.stripe_count) % self.n_osts

    def ost_of_offset(self, offset) -> np.ndarray:
        return self.ost_of_stripe(np.asarray(offset, dtype=np.int64)
                                  // self.stripe_size)

    def chunks(self, offsets, lengths) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split segments at stripe boundaries.

        Returns ``(chunk_offsets, chunk_lengths, chunk_osts)`` — every chunk
        lies within one stripe, hence on one OST.  Fully vectorized.
        """
        offs = np.asarray(offsets, dtype=np.int64).ravel()
        lens = np.asarray(lengths, dtype=np.int64).ravel()
        if offs.shape != lens.shape:
            raise FileSystemError("offsets/lengths shape mismatch")
        keep = lens > 0
        offs, lens = offs[keep], lens[keep]
        if offs.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        if offs.min() < 0:
            raise FileSystemError("negative file offset")
        S = self.stripe_size
        first = offs // S
        last = (offs + lens - 1) // S
        nchunks = (last - first + 1)
        seg_of = np.repeat(np.arange(offs.size, dtype=np.int64), nchunks)
        # index of each chunk within its segment
        starts = np.zeros(offs.size, dtype=np.int64)
        np.cumsum(nchunks[:-1], out=starts[1:])
        within = np.arange(seg_of.size, dtype=np.int64) - starts[seg_of]
        stripe = first[seg_of] + within
        chunk_lo = np.maximum(offs[seg_of], stripe * S)
        chunk_hi = np.minimum(offs[seg_of] + lens[seg_of], (stripe + 1) * S)
        return chunk_lo, chunk_hi - chunk_lo, self.ost_of_stripe(stripe)

    def bytes_per_ost(self, offsets, lengths) -> dict[int, int]:
        """Total bytes each OST serves for the given segments."""
        _, clens, costs = self.chunks(offsets, lengths)
        out: dict[int, int] = {}
        if clens.size == 0:
            return out
        osts, totals = np.unique(costs, return_inverse=False), None
        sums = np.zeros(osts.size, dtype=np.int64)
        idx = np.searchsorted(osts, costs)
        np.add.at(sums, idx, clens)
        return {int(o): int(s) for o, s in zip(osts, sums)}

    def aligned_boundaries(self, lo: int, hi: int) -> np.ndarray:
        """Stripe boundaries within [lo, hi] — candidate file-domain cuts."""
        S = self.stripe_size
        first = -(-lo // S)
        last = hi // S
        if first > last:
            return np.empty(0, dtype=np.int64)
        return np.arange(first, last + 1, dtype=np.int64) * S
