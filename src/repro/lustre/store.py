"""Backing stores for simulated files.

:class:`ByteStore` keeps real bytes (verified mode); :class:`ExtentTracker`
records only which byte ranges were written (model mode), so experiments
with multi-gigabyte virtual files never allocate the data while tests can
still assert complete, non-overlapping coverage.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.flatten import coalesce
from repro.errors import FileSystemError

#: refuse to materialize verified-mode files beyond this size
MAX_VERIFIED_BYTES = 1 << 30


class ByteStore:
    """A growable flat byte array with explicit read/write extents."""

    def __init__(self, initial_capacity: int = 4096):
        self._buf = np.zeros(max(16, initial_capacity), dtype=np.uint8)
        self.size = 0  # highest written end

    def _ensure(self, end: int) -> None:
        if end > MAX_VERIFIED_BYTES:
            raise FileSystemError(
                f"verified-mode file would grow to {end} bytes "
                f"(cap {MAX_VERIFIED_BYTES}); use model mode for large runs"
            )
        if end > self._buf.size:
            new_cap = self._buf.size
            while new_cap < end:
                new_cap *= 2
            buf = np.zeros(new_cap, dtype=np.uint8)
            buf[: self._buf.size] = self._buf
            self._buf = buf

    def write(self, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8).ravel()
        if offset < 0:
            raise FileSystemError(f"negative offset {offset}")
        end = offset + data.size
        self._ensure(end)
        self._buf[offset:end] = data
        self.size = max(self.size, end)

    def read(self, offset: int, length: int) -> np.ndarray:
        if offset < 0 or length < 0:
            raise FileSystemError("negative offset/length")
        self._ensure(offset + length)
        return self._buf[offset:offset + length].copy()

    def snapshot(self) -> np.ndarray:
        """The file contents up to its current size (copy)."""
        return self._buf[: self.size].copy()


class ExtentTracker:
    """Records written extents without storing data (model mode).

    Extents are merged lazily; ``covered_bytes`` and ``extents`` give the
    coalesced view for coverage assertions.
    """

    def __init__(self) -> None:
        self._offs: list[int] = []
        self._lens: list[int] = []
        self._dirty = False
        self.size = 0

    def write(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise FileSystemError("negative offset/length")
        if length == 0:
            return
        self._offs.append(offset)
        self._lens.append(length)
        self._dirty = True
        self.size = max(self.size, offset + length)

    def _compact(self) -> None:
        if self._dirty:
            o, l = coalesce(np.array(self._offs, dtype=np.int64),
                            np.array(self._lens, dtype=np.int64))
            self._offs = o.tolist()
            self._lens = l.tolist()
            self._dirty = False

    @property
    def extents(self) -> tuple[np.ndarray, np.ndarray]:
        self._compact()
        return (np.array(self._offs, dtype=np.int64),
                np.array(self._lens, dtype=np.int64))

    @property
    def covered_bytes(self) -> int:
        self._compact()
        return int(sum(self._lens))

    def is_fully_covered(self, lo: int, hi: int) -> bool:
        """True when every byte of [lo, hi) has been written."""
        if hi <= lo:
            return True
        o, l = self.extents
        idx = np.searchsorted(o, lo, side="right") - 1
        return bool(idx >= 0 and o[idx] <= lo and o[idx] + l[idx] >= hi)
