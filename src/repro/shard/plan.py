"""Shardability analysis: when can the event space be partitioned?

ParColl's structure is the unlock (paper §3, ROADMAP item 1): between
global synchronizations the FA subgroups are causally independent — a
subgroup's exchange traffic, OST writes and subgroup collectives never
touch another subgroup's ranks.  The event space therefore partitions
cleanly along subgroup boundaries: one engine shard per worker process,
each owning a contiguous block of subgroups and their ranks' NIC/CPU
resources.

:func:`analyze` decides whether a configuration satisfies the partition
contract.  Every condition is conservative — if anything could make two
shards exchange per-message traffic, the plan falls back to
``effective=1`` (run unsharded) and records why, so a ``--shards 4``
request on an unshardable config degrades gracefully instead of
erroring mid-run.

The contract:

* the workload's collective-I/O protocol is ``parcoll`` with an explicit
  ``parcoll_ngroups`` hint — the subgroup boundaries must be known
  up front, before the run, because the shard partition *is* the
  subgroup partition;
* ``parcoll_ngroups`` divides evenly over the shards and ``nprocs`` over
  the groups, with block rank mapping, so each shard owns a contiguous
  world-rank range aligned to subgroup boundaries;
* a shard's rank range covers whole nodes (``cores_per_node`` divides
  the ranks per shard), so NIC/CPU :class:`FIFOResource` state is never
  shared across shards;
* world-spanning collectives run at the ``analytic`` fidelity (the
  ``analytic`` backend, or ``scoped:`` with ``world=analytic``), because
  only analytic synchronization sites can be bridged across engines by
  merging (value, arrival) sets — per-message detailed traffic cannot;
* no torus topology: torus links are machine-global resources with no
  per-shard ownership.

Shared-OST reservations, the MDS, Lustre lock-manager state and fault
RPC schedules remain machine-global; the coordinator owns the one real
:class:`~repro.lustre.LustreFS` and shards reach it through timestamped
round trips (see :mod:`repro.shard.coordinator`).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Mapping, Optional


@dataclass(frozen=True)
class ShardPlan:
    """The partition decision for one configuration.

    ``effective`` is the shard count actually used: equal to ``shards``
    when the config satisfies the partition contract, else 1 with
    ``reason`` naming the first violated condition.
    """

    shards: int
    effective: int
    reason: Optional[str] = None
    #: FA subgroups owned by each shard (0 when unsharded)
    groups_per_shard: int = 0
    #: world ranks owned by each shard (0 when unsharded)
    ranks_per_shard: int = 0

    @property
    def active(self) -> bool:
        return self.effective > 1

    def owned_ranks(self, shard_id: int) -> range:
        """The contiguous world-rank range shard ``shard_id`` owns."""
        lo = shard_id * self.ranks_per_shard
        return range(lo, lo + self.ranks_per_shard)

    def shard_of(self, world_rank: int) -> int:
        return world_rank // self.ranks_per_shard


def workload_hints_of(program: Any) -> Mapping[str, Any]:
    """Best-effort extraction of the workload's I/O hints.

    Registered workload programs are ``functools.partial(fn, cfg)`` with
    ``cfg`` a workload config dataclass carrying a ``hints`` mapping;
    anything else yields no hints (and thus an unsharded fallback unless
    the config names the protocol itself).
    """
    if isinstance(program, functools.partial) and program.args:
        cfg = program.args[0]
        hints = getattr(cfg, "hints", None)
        if isinstance(hints, Mapping):
            return hints
    return {}


def _world_fidelity_is_analytic(mode: str) -> bool:
    """True when world-spanning collectives resolve to 'analytic'."""
    if mode == "analytic":
        return True
    if mode.startswith("scoped:"):
        parts = dict(
            kv.split("=", 1) for kv in mode[len("scoped:"):].split(",") if kv
        )
        return parts.get("world") == "analytic"
    return False


def analyze(config: Any, workload_hints: Optional[Mapping[str, Any]] = None
            ) -> ShardPlan:
    """Decide whether ``config`` can run sharded; never raises.

    ``workload_hints`` are the hints the workload will open its files
    with (see :func:`workload_hints_of`); the platform-default protocol
    from ``config.protocol`` applies when the hints name none.
    """
    hints = dict(workload_hints or {})
    shards = int(getattr(config, "shards", 1) or 1)

    def fallback(reason: str) -> ShardPlan:
        return ShardPlan(shards=shards, effective=1, reason=reason)

    if shards <= 1:
        return ShardPlan(shards=max(1, shards), effective=1)
    protocol = hints.get("protocol") or config.protocol
    if protocol != "parcoll":
        return fallback(
            f"protocol {protocol!r} has no static subgroup partition "
            "(sharding requires 'parcoll')")
    ngroups = hints.get("parcoll_ngroups")
    if not ngroups or int(ngroups) <= 1:
        return fallback(
            "parcoll_ngroups hint missing or 1: subgroup boundaries "
            "unknown before the run")
    ngroups = int(ngroups)
    if ngroups % shards != 0:
        return fallback(
            f"{ngroups} FA subgroups do not divide over {shards} shards")
    if config.nprocs % ngroups != 0:
        return fallback(
            f"nprocs={config.nprocs} does not divide into "
            f"{ngroups} equal subgroups")
    if config.mapping != "block":
        return fallback(
            f"mapping {config.mapping!r} scatters a subgroup's ranks "
            "across nodes shared with other subgroups")
    ranks_per_shard = config.nprocs // shards
    if ranks_per_shard % config.cores_per_node != 0:
        return fallback(
            f"shard boundary splits a node ({ranks_per_shard} ranks per "
            f"shard, {config.cores_per_node} cores per node)")
    if config.use_torus:
        return fallback("torus links are machine-global resources")
    if not _world_fidelity_is_analytic(config.collective_mode):
        return fallback(
            f"collective_mode {config.collective_mode!r} runs "
            "world-spanning collectives per-message; bridging needs "
            "'analytic' or 'scoped:world=analytic,...'")
    return ShardPlan(shards=shards, effective=shards,
                     groups_per_shard=ngroups // shards,
                     ranks_per_shard=ranks_per_shard)
