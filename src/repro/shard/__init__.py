"""Sharded parallel DES: one engine per FA-subgroup cluster.

ParColl's partitioned structure (paper §3) makes the detailed simulation
parallelizable: between global synchronizations the FA subgroups are
causally independent, so the event space splits along subgroup
boundaries into per-process engine shards, synchronized conservatively
at collective entry/exit and through the coordinator-owned global file
system.  Results merge into a single :class:`~repro.harness.runner.
RunResult` bit-identical to an unsharded run.

Entry points:

* :func:`~repro.shard.plan.analyze` — the partition contract;
* :func:`~repro.shard.coordinator.run_sharded` — run one experiment
  over ``plan.effective`` worker processes.
"""

from repro.shard.plan import ShardPlan, analyze, workload_hints_of

__all__ = ["ShardPlan", "analyze", "workload_hints_of", "run_sharded",
           "shard_stats"]


def __getattr__(name):
    # run_sharded pulls in multiprocessing + the full worker stack;
    # keep `import repro.shard` cheap for plan-only callers.
    if name in ("run_sharded", "shard_stats"):
        from repro.shard import coordinator

        return getattr(coordinator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
