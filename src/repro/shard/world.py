"""One engine shard's view of the machine.

A :class:`ShardWorld` is a full :class:`~repro.simmpi.World` — every
rank's mailbox, node placement and NIC resources are constructed
identically in every shard so that node numbering, network parameters
and fault profiles agree bit-for-bit — but only the *owned* ranks are
ever spawned.  Two guards keep the partition honest:

* point-to-point messages whose source and destination fall in
  different shards raise :class:`~repro.errors.ShardError` (the shard
  plan guarantees this cannot happen for plan-conforming workloads;
  hitting it means the plan and the workload disagree);
* world-spanning collectives go through a *bridged* synchronization
  site: the local arrivals are batched to the coordinator, merged with
  every other shard's, and the combined (values, arrivals) set comes
  back so each shard computes the identical combine result and exit
  time an unsharded analytic site would have produced.

Bridging also re-establishes the canonical cross-shard ordering token:
after each bridged site the coordinator ships the merged resume order,
and a rank's position in it becomes the tie-break for same-timestamp
file-system requests (see :mod:`repro.shard.coordinator`).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import ShardError
from repro.sim.effects import Sleep, WaitEvent
from repro.sim.engine import Engine, Event
from repro.simmpi.payload import Payload
from repro.simmpi.world import CommDescriptor, Communicator, World


class _BridgedSite:
    """Local half of one world-spanning analytic collective site."""

    __slots__ = ("event", "kind", "nlocal", "members", "values", "arrivals",
                 "results", "exit_time", "posted")

    def __init__(self, engine: Engine, name: Any, kind: str, nlocal: int,
                 members: list[int]):
        self.event = Event(engine, name)
        self.kind = kind
        #: how many owned ranks participate (partial reported when full)
        self.nlocal = nlocal
        #: group rank -> world rank for the whole communicator
        self.members = members
        self.values: dict[int, Any] = {}
        self.arrivals: dict[int, float] = {}
        #: combine/exit computed once from the merged reply, then shared
        self.results: Any = None
        self.exit_time: float = 0.0
        self.posted = False


class ShardWorld(World):
    """A :class:`World` owning one contiguous block of subgroups."""

    def __init__(self, *args, owned: range, runtime, **kwargs):
        #: world ranks this shard executes (contiguous, node-aligned)
        self.owned = owned
        self._owned_set = frozenset(owned)
        #: the worker-side coordinator client (ShardRuntime)
        self.runtime = runtime
        self._span_cache: dict[int, bool] = {}
        super().__init__(*args, **kwargs)
        world_desc = self.procs[0].comm_world.desc
        for proc in self.procs:
            proc.comm_world = ShardCommunicator(proc, world_desc)

    def spans_shards(self, desc: CommDescriptor) -> bool:
        """Does ``desc`` include both owned and foreign ranks?"""
        hit = self._span_cache.get(desc.ctx)
        if hit is None:
            owned = self._owned_set
            mine = sum(1 for r in desc.members if r in owned)
            hit = 0 < mine < len(desc.members)
            self._span_cache[desc.ctx] = hit
        return hit

    def send_message_ev(self, src: int, dst: int, ctx: int, tag: int,
                        payload: Payload) -> Event:
        if (src in self._owned_set) != (dst in self._owned_set):
            raise ShardError(
                f"point-to-point message {src}->{dst} (ctx {ctx}, tag "
                f"{tag}) crosses the shard boundary; the shard plan "
                f"owns ranks [{self.owned.start}, {self.owned.stop}) — "
                "cross-shard traffic must ride analytic collectives")
        return super().send_message_ev(src, dst, ctx, tag, payload)


class ShardCommunicator(Communicator):
    """A communicator whose world-spanning analytic sites are bridged."""

    def _analytic_site(self, value: Any,
                       combine: Callable[[dict[int, Any]], list],
                       cost: Callable[[dict[int, Any]], float],
                       kind: str = "generic") -> Generator[Any, Any, Any]:
        world: ShardWorld = self.world  # type: ignore[assignment]
        desc = self.desc
        if not world.spans_shards(desc):
            return (yield from super()._analytic_site(value, combine, cost,
                                                      kind))
        rt = world.runtime
        key = (desc.ctx, self._op_seq)
        site = rt.bridged_sites.get(key)
        if site is None:
            owned = world._owned_set
            nlocal = sum(1 for r in desc.members if r in owned)
            site = _BridgedSite(self.engine, ("bridge",) + key, kind, nlocal,
                                desc.members)
            rt.bridged_sites[key] = site
        elif site.kind != kind:
            from repro.errors import MPIError

            raise MPIError(
                f"collective call mismatch on communicator {desc.ctx}: "
                f"rank {self.rank} called {kind!r} while another rank "
                f"called {site.kind!r} at the same point "
                f"(op #{self._op_seq})")
        site.values[self.rank] = value
        site.arrivals[self.rank] = self.now
        self.engine.external_pending += 1
        if len(site.values) == site.nlocal and not site.posted:
            # every owned member is in: the partial is final, and all of
            # them are now blocked here, so the engine cannot advance
            # past the (still unknown) exit time before the reply lands
            site.posted = True
            rt.site_outbox.append(
                (desc.ctx, self._op_seq, kind, self.size,
                 dict(site.values), dict(site.arrivals)))
        values, arrivals = yield WaitEvent(site.event)
        if site.results is None:
            site.results = combine(values)
            site.exit_time = max(arrivals.values()) + cost(values)
        if site.exit_time > self.now:
            yield Sleep(site.exit_time - self.now)
        return site.results[self.rank]
