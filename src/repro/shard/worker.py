"""One shard's worker process: engine loop plus coordinator rounds.

The worker builds a full platform for the whole machine (identical
machine/network/fault construction to
:meth:`~repro.harness.runner.ExperimentConfig.build`, so node numbering
and profiles agree across shards), swaps in the :class:`ShardFS` proxy,
and spawns rank programs *only for owned ranks*.  Execution alternates
between two states:

1. **run** — the engine executes local events.  It parks when it either
   drains with tasks blocked on external events
   (``engine.external_pending``) or would advance past
   ``engine.stop_bound``, the earliest unanswered file-system request's
   submission time (a reply may resume a task any time after that
   instant, so running further would race the injection).
2. **exchange** — one synchronization round with the coordinator: ship
   newly submitted file-system requests and completed site partials,
   block for the reply, inject the authoritative completion times and
   merged site data, and resume.

The conservative invariants that make injection sound:

* a file-system reply's completion time is never below its request's
  submission time, and the engine never advanced past the latter;
* a bridged site's partial is only reported once *every* owned member
  has arrived — at that point all owned ranks are blocked on the site,
  so the shard's clock is at most the site's local arrival maximum,
  which is at most the merged exit time.
"""

from __future__ import annotations

import pickle
import time
import traceback
from typing import Any

from repro.cluster import MachineConfig, NetworkParams
from repro.errors import ConfigError, ShardError, TaskFailedError
from repro.lustre import LustreParams
from repro.mpiio import MPIIO
from repro.perf import collect
from repro.shard.fsproxy import RemoteOpError, ShardFS
from repro.shard.plan import ShardPlan
from repro.shard.world import ShardWorld
from repro.sim.effects import WaitEvent
from repro.sim.engine import _K_FIRE, Event
from repro.workloads.base import WorkloadIOStats


class ShardRuntime:
    """The worker-side coordinator client: outboxes, tokens, injection."""

    def __init__(self, conn, shard_id: int, nprocs: int):
        self.conn = conn
        self.shard_id = shard_id
        self.engine = None  # bound after the world is built
        #: req id -> (t_submit, completion event)
        self.pending_fs: dict[int, tuple[float, Event]] = {}
        self._next_req = 0
        self.fs_outbox: list[tuple] = []
        self.site_outbox: list[tuple] = []
        #: (ctx, op_seq) -> _BridgedSite partials
        self.bridged_sites: dict[tuple[int, int], Any] = {}
        self.sync_rounds = 0

    # -- called from ShardFS inside rank tasks --------------------------
    def fs_call(self, client: int, op: str, args: tuple):
        """Round-trip one file-system operation; blocks the caller until
        the coordinator's reply injects the completion."""
        eng = self.engine
        self._next_req += 1
        rid = self._next_req
        t = eng.now
        ev = Event(eng, ("fsreq", self.shard_id, rid))
        self.pending_fs[rid] = (t, ev)
        self.fs_outbox.append((rid, t, client, op, args))
        eng.external_pending += 1
        if eng.stop_bound is None or t < eng.stop_bound:
            eng.stop_bound = t
        reply = yield WaitEvent(ev)
        if type(reply) is RemoteOpError:
            raise reply.exc
        return reply

    # -- called from the worker loop -------------------------------------
    def exchange(self) -> None:
        """One synchronization round: report, block, inject the reply."""
        self.conn.send(("report", self.shard_id, self.engine.now,
                        self.fs_outbox, self.site_outbox))
        self.fs_outbox = []
        self.site_outbox = []
        msg = self.conn.recv()
        if msg[0] == "stop":
            raise ShardError(
                f"coordinator aborted the run: {msg[1]}")
        _, fs_replies, completions = msg
        eng = self.engine
        for rid, t_done, value in fs_replies:
            _t, ev = self.pending_fs.pop(rid)
            eng.external_pending -= 1
            eng._sched(t_done, _K_FIRE, ev, value)
        for ctx, op_seq, values, arrivals, order in completions:
            site = self.bridged_sites.pop((ctx, op_seq))
            eng.external_pending -= site.nlocal
            # Wake the local participants in the canonical resume order
            # (the order their Sleep-to-exit entries must take on the
            # heap), not local arrival order: an unsharded site resumes
            # the firing rank first, then waiters — same-time scheduling
            # downstream (NIC reservations, subgroup exchange pairing)
            # depends on it.  Waiter i is the i-th arrival, so permute
            # the waiter list by each rank's canonical position.
            pos = {r: i for i, r in enumerate(order)}
            arrival_ranks = list(site.arrivals)
            waiters = site.event._waiters
            if len(waiters) == len(arrival_ranks):
                perm = sorted(range(len(arrival_ranks)),
                              key=lambda i: pos[site.members[
                                  arrival_ranks[i]]])
                waiters[:] = [waiters[i] for i in perm]
            site.event.fire((values, arrivals))
        eng.stop_bound = (min(t for t, _ev in self.pending_fs.values())
                          if self.pending_fs else None)
        self.sync_rounds += 1


def build_shard_platform(config, owned: range, runtime: ShardRuntime):
    """Mirror :meth:`ExperimentConfig.build` with shard-aware parts."""
    from repro.faults import FaultInjector, FaultPlan, RetryPolicy

    machine = MachineConfig(nprocs=config.nprocs,
                            cores_per_node=config.cores_per_node,
                            mapping=config.mapping)
    plan = FaultPlan.coerce(config.faults)
    injector = None
    if not plan.is_empty:
        injector = FaultInjector(plan, seed=config.seed)
    world = ShardWorld(machine, net_params=NetworkParams(**config.net),
                       topology=None,
                       collective_mode=config.collective_mode,
                       faults=injector, owned=owned, runtime=runtime)
    runtime.engine = world.engine
    lustre_kw = {"store_data": False, **config.lustre}
    retry = RetryPolicy(**config.retry) if config.retry else RetryPolicy()
    fs = ShardFS(world.engine, LustreParams(**lustre_kw), retry, runtime)
    default_hints = ({"protocol": config.protocol}
                     if config.protocol is not None else None)
    io = MPIIO(world, fs, validate=True if config.validate else None,
               default_hints=default_hints)
    return world, fs, io


def _worker_main(conn, shard_id: int, config, program,
                 plan: ShardPlan) -> None:
    """Process entry point for one shard (fork start method)."""
    try:
        owned = plan.owned_ranks(shard_id)
        runtime = ShardRuntime(conn, shard_id, config.nprocs)
        world, _fs, io = build_shard_platform(config, owned, runtime)
        engine = world.engine

        def rank_main(comm):
            stats = yield from program(comm, io)
            if not isinstance(stats, WorkloadIOStats):
                raise ConfigError(
                    "workload programs must return a WorkloadIOStats")
            return stats

        t0 = time.perf_counter()
        c0 = time.process_time()
        tasks = {
            r: engine.spawn(rank_main(world.procs[r].comm_world),
                            name=("rank", r))
            for r in owned
        }
        while True:
            try:
                engine.run()
            except TaskFailedError as exc:
                raise exc.original from exc
            if all(t.done for t in tasks.values()):
                break
            runtime.exchange()
        for t in tasks.values():
            if t.error is not None:
                raise t.error
        wall = time.perf_counter() - t0
        cpu = time.process_time() - c0
        payload = {
            "results": {r: t.result for r, t in tasks.items()},
            "now": engine.now,
            "breakdowns": {r: world.procs[r].breakdown for r in owned},
            "events": engine.effects_dispatched,
            "messages": world.network.messages_sent,
            "backend": world.collective_mode,
            "perf": collect(world, wall_seconds=wall),
            "validation": (io.validator.report.to_dict()
                           if io.validator is not None else None),
            "sync_rounds": runtime.sync_rounds,
            "wall": wall,
            "cpu": cpu,
        }
        conn.send(("done", shard_id, payload))
    except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
        tb = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        try:
            conn.send(("error", shard_id, exc, tb))
        except Exception:  # parent already gone; nothing to report to
            pass
    finally:
        conn.close()
