"""The shard-local stand-in for the machine-global Lustre instance.

OST bandwidth, MDS serialization, lock-manager state, fault RPC
schedules and jitter RNG streams are machine-global — they cannot be
partitioned along subgroup boundaries, because ParColl's file areas
stripe over shared OSTs.  The coordinator therefore owns the one real
:class:`~repro.lustre.LustreFS`, and every shard talks to it through
this proxy: each operation becomes a timestamped request, the shard's
engine parks until the reply injects the authoritative completion time,
and the elapsed virtual time (hence every 'io'/'meta' breakdown charge)
is exactly what the unsharded run would have measured.

The proxy keeps *replica* :class:`~repro.lustre.fs.LustreFile` objects:
layout parameters come from the open reply, and the local store/extent
tracker absorb this shard's own writes.  That makes the PR 5 shadow-file
oracle work per shard — the worker's validator compares shard-local
shadow state against shard-local replica state, which is the "oracle on
a sampled shard" check the sharding gate runs.  Reads return the
coordinator's data (the authoritative global content).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.errors import FileSystemError
from repro.lustre.fs import LustreFile, LustreParams
from repro.lustre.layout import StripeLayout


class RemoteOpError:
    """A coordinator-side exception, shipped as a reply value.

    The proxy re-raises it inside the requesting task's generator at the
    reply's virtual time, so e.g. a
    :class:`~repro.errors.FaultExhaustedError` surfaces through exactly
    the same stack it would in an unsharded run.
    """

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc

    def __getstate__(self):
        return self.exc

    def __setstate__(self, exc):
        self.exc = exc


class ShardFS:
    """Duck-typed :class:`~repro.lustre.LustreFS` backed by round trips."""

    def __init__(self, engine, params: LustreParams, retry, runtime):
        self.engine = engine
        self.params = params
        #: default RetryPolicy (mirrors the coordinator's; hint overrides
        #: are built locally and shipped with each request)
        self.retry = retry
        self._rt = runtime
        self._files: dict[str, LustreFile] = {}
        self._retry_accum: dict[int, tuple[float, int]] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def open(self, name: str, create: bool = True,
             stripe_count: Optional[int] = None,
             stripe_size: Optional[int] = None,
             client: int = -1) -> Generator[Any, Any, LustreFile]:
        layout = yield from self._rt.fs_call(
            client, "open", (name, create, stripe_count, stripe_size))
        f = self._files.get(name)
        if f is None:
            ssize, scount, n_osts, start_ost, store_data = layout
            f = LustreFile(name, StripeLayout(stripe_size=ssize,
                                              stripe_count=scount,
                                              n_osts=n_osts,
                                              start_ost=start_ost),
                           store_data)
            self._files[name] = f
        return f

    def lookup(self, name: str) -> LustreFile:
        f = self._files.get(name)
        if f is None:
            raise FileSystemError(f"no such file: {name!r}")
        return f

    def unlink(self, name: str, client: int = -1) -> Generator[Any, Any, None]:
        yield from self._rt.fs_call(client, "unlink", (name,))
        self._files.pop(name, None)

    def mds_close(self, client: int = -1) -> Generator[Any, Any, None]:
        yield from self._rt.fs_call(client, "mds_close", ())

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def take_retry(self, client: int) -> tuple[float, int]:
        return self._retry_accum.pop(client, (0.0, 0))

    def _add_retry(self, client: int, delta: tuple[float, int]) -> None:
        if delta and (delta[0] or delta[1]):
            held_s, held_n = self._retry_accum.get(client, (0.0, 0))
            self._retry_accum[client] = (held_s + delta[0],
                                         held_n + delta[1])

    def write(self, f: LustreFile, client: int, offsets, lengths,
              data: Optional[np.ndarray] = None,
              retry: Optional[object] = None) -> Generator[Any, Any, int]:
        offsets = np.asarray(offsets, dtype=np.int64).ravel()
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        total = int(lengths.sum())
        flat = None
        if f.store is not None:
            if data is None:
                raise FileSystemError(
                    "verified-mode write requires data (or set "
                    "store_data=False)")
            flat = np.asarray(data, dtype=np.uint8).ravel()
            if flat.size != total:
                raise FileSystemError(
                    f"data has {flat.size} bytes, segments cover {total}")
            pos = 0
            for off, ln in zip(offsets.tolist(), lengths.tolist()):
                f.store.write(off, flat[pos:pos + ln])
                pos += ln
        for off, ln in zip(offsets.tolist(), lengths.tolist()):
            f.tracker.write(off, ln)
        got, delta = yield from self._rt.fs_call(
            client, "write", (f.name, offsets, lengths, flat, retry))
        self._add_retry(client, delta)
        self.bytes_written += total
        return got

    def read(self, f: LustreFile, client: int, offsets, lengths,
             retry: Optional[object] = None
             ) -> Generator[Any, Any, Optional[np.ndarray]]:
        offsets = np.asarray(offsets, dtype=np.int64).ravel()
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        data, delta = yield from self._rt.fs_call(
            client, "read", (f.name, offsets, lengths, retry))
        self._add_retry(client, delta)
        self.bytes_read += int(lengths.sum())
        return data
