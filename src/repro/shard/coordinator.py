"""The parent-side shard coordinator: global FS, bridged sites, merge.

The coordinator owns everything that is machine-global and timing-
relevant: the one real :class:`~repro.lustre.LustreFS` (OST FIFO
watermarks, MDS serialization, lock manager, jitter RNG streams, fault
RPC schedules) and the synchronization sites of world-spanning analytic
collectives.  Shards interact with it in *rounds* — a shard runs freely
until it parks (every runnable event either crossed an unanswered
file-system request's submission time or blocked on a bridged site),
reports, and waits for a reply.

Round protocol
--------------
``outstanding`` is the set of shards that received a reply last round
(initially: all).  Each round blocks for one message from every
outstanding shard, then pumps:

1. every bridged site whose membership is complete is finished — the
   merged (values, arrivals) set goes back to the owning shards so each
   computes the identical combine result and exit time an unsharded
   analytic site would have, and the completion is assigned an *epoch*
   plus a merged resume order that re-seeds the cross-shard ordering
   tokens;
2. queued file-system requests are served in the canonical global order
   ``(t, epoch, pos)`` while the head stays at or below the *floor* —
   the earliest time any shard that will resume this round could submit
   a new request (its parked clock).  Requests above the floor wait a
   round; this is classic conservative lower-bound-time-stamp
   synchronization with the parked clocks as the lookahead.

Each served request runs the real file system's generator on a private
coordinator engine whose clock is pinned to the request's submission
time, so reservations, lock revocations, jitter draws and fault retries
happen in exactly the global order and at exactly the virtual times of
an unsharded run.  Same-time requests are ordered by client rank — the
same canonical rule :meth:`LustreFS._commit` imposes inside an
unsharded engine — which together is what makes the merged result
bit-identical.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import Counter
from typing import Any, Optional

from repro.errors import ShardError, TaskFailedError
from repro.harness.runner import ExperimentConfig, RunResult
from repro.lustre import LustreFS, LustreParams
from repro.perf import merge as perf_merge
from repro.shard.fsproxy import RemoteOpError
from repro.shard.plan import ShardPlan
from repro.shard.worker import _worker_main
from repro.sim.engine import Engine
from repro.simmpi.timers import summarize


class _SiteState:
    """One world-spanning collective site being merged across shards."""

    __slots__ = ("kind", "size", "values", "arrivals", "shards")

    def __init__(self, kind: str, size: int):
        self.kind = kind
        self.size = size
        self.values: dict[int, Any] = {}
        self.arrivals: dict[int, float] = {}
        self.shards: set[int] = set()


class _ShardState:
    """Coordinator-side view of one worker."""

    __slots__ = ("conn", "proc", "pend", "park_now", "fs_out", "site_out",
                 "done", "payload")

    def __init__(self, conn, proc):
        self.conn = conn
        self.proc = proc
        #: queued unserved requests, in the shard's submission order
        #: (which is its local canonical order): (key, rid, client, op,
        #: args) with key = (t, epoch, pos)
        self.pend: list[tuple] = []
        self.park_now = 0.0
        self.fs_out: list[tuple] = []
        self.site_out: list[tuple] = []
        self.done = False
        self.payload: Optional[dict] = None


class ShardCoordinator:
    """Runs one sharded experiment to completion."""

    def __init__(self, config: ExperimentConfig, program, plan: ShardPlan):
        self.config = config
        self.program = program
        self.plan = plan
        #: private engine the authoritative LustreFS runs on; its clock
        #: is pinned to each request's submission time before service
        self.engine = Engine()
        self.fs = self._build_fs()
        self.sites: dict[tuple[int, int], _SiteState] = {}
        self.rounds = 0
        self.shards: dict[int, _ShardState] = {}

    # ------------------------------------------------------------------
    def _build_fs(self) -> LustreFS:
        """The authoritative file system, mirroring
        :meth:`ExperimentConfig.build` (same params, seed, faults,
        retry) but driven by the stub clock instead of an engine."""
        from repro.cluster import MachineConfig
        from repro.faults import FaultInjector, FaultPlan, RetryPolicy

        cfg = self.config
        plan = FaultPlan.coerce(cfg.faults)
        injector = None
        if not plan.is_empty:
            injector = FaultInjector(plan, seed=cfg.seed)
        lustre_kw = {"store_data": False, **cfg.lustre}
        retry = RetryPolicy(**cfg.retry) if cfg.retry else None
        fs = LustreFS(self.engine, LustreParams(**lustre_kw),
                      seed=cfg.seed, faults=injector, retry=retry)
        if injector is not None:
            machine = MachineConfig(nprocs=cfg.nprocs,
                                    cores_per_node=cfg.cores_per_node,
                                    mapping=cfg.mapping)
            injector.validate_platform(fs.params.n_osts, machine.nnodes)
        return fs

    # ------------------------------------------------------------------
    # round handling
    # ------------------------------------------------------------------
    def _absorb(self, sid: int, msg: tuple) -> None:
        st = self.shards[sid]
        if msg[0] == "error":
            self._abort("a sibling shard failed")
            from repro.harness.parallel import _reraise

            _reraise(msg[2], msg[3])
        if msg[0] == "done":
            st.done = True
            st.payload = msg[2]
            if st.pend:
                raise ShardError(
                    f"shard {sid} finished with {len(st.pend)} unserved "
                    "file-system request(s)")
            return
        if msg[0] != "report":
            raise ShardError(f"unexpected message {msg[0]!r} from "
                             f"shard {sid}")
        _kind, _sid, now, reqs, parts = msg
        st.park_now = now
        for rid, t, client, op, args in reqs:
            st.pend.append(((t, client), rid, client, op, args))
        if reqs:
            # canonical (t, client) order; a shard's same-instant
            # submission order is a scheduling artifact, not the order
            st.pend.sort(key=lambda e: e[0])
        for ctx, op_seq, kind, size, values, arrivals in parts:
            if ctx != 0:
                raise ShardError(
                    f"bridged collective on communicator ctx={ctx}: only "
                    "COMM_WORLD may span shards under the current plan")
            site = self.sites.get((ctx, op_seq))
            if site is None:
                site = _SiteState(kind, size)
                self.sites[(ctx, op_seq)] = site
            elif site.kind != kind:
                raise ShardError(
                    f"collective call mismatch at world op #{op_seq}: "
                    f"{kind!r} vs {site.kind!r}")
            site.values.update(values)
            site.arrivals.update(arrivals)
            site.shards.add(sid)

    def _complete_sites(self) -> None:
        for key in sorted(self.sites):
            site = self.sites[key]
            if len(site.values) != site.size:
                continue
            # Stable sort by arrival time: equal-time arrivals keep the
            # order the shards reported them in, which preserves each
            # shard's local arrival sequence — the property the workers'
            # waiter reordering relies on.
            order = sorted(site.arrivals, key=site.arrivals.get)
            # the globally-last arrival completes the site and resumes
            # inline — before the parked waiters — in an unsharded run
            # (see Communicator._analytic_site), so it leads the
            # canonical resume order
            order = [order[-1]] + order[:-1]
            completion = (key[0], key[1], site.values, site.arrivals,
                          order)
            for sid in site.shards:
                self.shards[sid].site_out.append(completion)
            del self.sites[key]

    def _floor(self) -> float:
        """Earliest time any shard that resumes this round could submit
        a new file-system request."""
        floor = float("inf")
        for st in self.shards.values():
            if st.done:
                continue
            if st.fs_out or st.site_out:
                floor = min(floor, st.park_now)
            elif st.pend:
                floor = min(floor, st.pend[0][0][0])
        return floor

    def _serve_fs(self) -> None:
        while True:
            floor = self._floor()
            best_sid = -1
            best_key = None
            for sid, st in self.shards.items():
                if st.pend and (best_key is None
                                or st.pend[0][0] < best_key):
                    best_key = st.pend[0][0]
                    best_sid = sid
            if best_key is None or best_key[0] > floor:
                return
            st = self.shards[best_sid]
            key, rid, client, op, args = st.pend.pop(0)
            st.fs_out.append(self._serve_one(key[0], client, op, args, rid))

    def _serve_one(self, t: float, client: int, op: str, args: tuple,
                   rid: int) -> tuple:
        eng, fs = self.engine, self.fs
        # Pin the clock to the submission time.  The engine is drained
        # between ops, so rewinding from the previous op's completion
        # time is safe — and required: two queued requests at the same
        # instant must both observe it as their arrival time.
        eng.now = t
        try:
            if op == "open":
                name, create, sc, ss = args
                f = self._run_op(fs.open(name, create=create,
                                         stripe_count=sc, stripe_size=ss,
                                         client=client))
                value: Any = (f.layout.stripe_size, f.layout.stripe_count,
                              f.layout.n_osts, f.layout.start_ost,
                              f.store is not None)
            elif op == "write":
                name, offsets, lengths, data, retry = args
                f = fs.lookup(name)
                total = self._run_op(fs.write(f, client, offsets, lengths,
                                              data=data, retry=retry))
                value = (total, fs.take_retry(client))
            elif op == "read":
                name, offsets, lengths, retry = args
                f = fs.lookup(name)
                data = self._run_op(fs.read(f, client, offsets, lengths,
                                            retry=retry))
                value = (data, fs.take_retry(client))
            elif op == "unlink":
                self._run_op(fs.unlink(args[0], client=client))
                value = None
            elif op == "mds_close":
                self._run_op(fs.mds_close(client=client))
                value = None
            else:
                raise ShardError(f"unknown file-system op {op!r}")
        except ShardError:
            raise
        except BaseException as exc:  # noqa: BLE001 - replayed in worker
            return (rid, eng.now, RemoteOpError(exc))
        return (rid, eng.now, value)

    def _run_op(self, gen) -> Any:
        """Run one FS generator as a task on the coordinator engine."""
        task = self.engine.spawn(gen)
        try:
            self.engine.run()
        except TaskFailedError as exc:
            raise exc.original from exc
        if task.error is not None:
            raise task.error
        return task.result

    def _abort(self, reason: str) -> None:
        for st in self.shards.values():
            if st.done:
                continue
            try:
                st.conn.send(("stop", reason))
            except Exception:
                pass

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        ctx = mp.get_context("fork")
        nshards = self.plan.effective
        t0 = time.perf_counter()
        for sid in range(nshards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, sid, self.config, self.program, self.plan),
                daemon=True, name=f"shard-{sid}")
            proc.start()
            child_conn.close()
            self.shards[sid] = _ShardState(parent_conn, proc)
        try:
            outstanding = set(range(nshards))
            while True:
                for sid in sorted(outstanding):
                    try:
                        msg = self.shards[sid].conn.recv()
                    except EOFError:
                        raise ShardError(
                            f"shard {sid} exited without reporting "
                            "(killed or crashed before the error path)")
                    self._absorb(sid, msg)
                outstanding.clear()
                if all(st.done for st in self.shards.values()):
                    break
                self._complete_sites()
                self._serve_fs()
                receivers = [sid for sid, st in self.shards.items()
                             if not st.done and (st.fs_out or st.site_out)]
                if not receivers:
                    self._abort("no shard can make progress")
                    blocked = {
                        sid: {"park_now": st.park_now,
                              "queued_fs": len(st.pend)}
                        for sid, st in self.shards.items() if not st.done}
                    raise ShardError(
                        "conservative synchronization stalled: no site "
                        "completable, no file-system request below the "
                        f"floor; shard state: {blocked}")
                for sid in receivers:
                    st = self.shards[sid]
                    st.conn.send(("reply", st.fs_out, st.site_out))
                    st.fs_out = []
                    st.site_out = []
                    outstanding.add(sid)
                self.rounds += 1
            wall = time.perf_counter() - t0
            return self._merge(wall)
        except BaseException:
            self._abort("coordinator failed")
            raise
        finally:
            for st in self.shards.values():
                st.conn.close()
                st.proc.join(timeout=5)
                if st.proc.is_alive():
                    st.proc.terminate()
                    st.proc.join()

    # ------------------------------------------------------------------
    def _merge(self, wall: float) -> RunResult:
        payloads = [self.shards[sid].payload for sid in range(len(self.shards))]
        per_rank: list[Any] = [None] * self.config.nprocs
        breakdowns: list[Any] = [None] * self.config.nprocs
        for p in payloads:
            for r, stats in p["results"].items():
                per_rank[r] = stats
            for r, bd in p["breakdowns"].items():
                breakdowns[r] = bd
        validation = None
        if any(p["validation"] is not None for p in payloads):
            checks: Counter = Counter()
            violations: list = []
            for p in payloads:
                if p["validation"]:
                    checks.update(p["validation"].get("checks", {}))
                    violations.extend(p["validation"].get("violations", []))
            validation = {"checks": dict(checks), "violations": violations}
        perf = perf_merge([p["perf"] for p in payloads])
        perf.wall_seconds = wall
        walls = [p["wall"] for p in payloads]
        perf.shard = shard_stats(
            self.plan,
            sync_rounds=self.rounds,
            per_shard_events=[p["events"] for p in payloads],
            per_shard_wall=walls,
            per_shard_cpu=[p["cpu"] for p in payloads])
        return RunResult(
            config=self.config,
            per_rank=per_rank,
            breakdown=summarize(breakdowns),
            # shard engines plus the coordinator's own FS engine — the
            # file-system commits it dispatched ran inline in the single
            # engine of an unsharded run
            events=sum(p["events"] for p in payloads)
            + self.engine.effects_dispatched,
            messages=sum(p["messages"] for p in payloads),
            elapsed_total=max(p["now"] for p in payloads),
            backend=payloads[0]["backend"],
            perf=perf,
            validation=validation,
        )


def shard_stats(plan: ShardPlan, sync_rounds: int = 0,
                per_shard_events: Optional[list] = None,
                per_shard_wall: Optional[list] = None,
                per_shard_cpu: Optional[list] = None) -> dict:
    """The shard-observability block attached to ``PerfStats.shard``.

    Wall times include the time a shard spends blocked on coordinator
    rounds (and, on machines with fewer cores than shards, preempted),
    so they converge toward the slowest shard; CPU seconds measure each
    shard's own compute and are what load balancing and the multi-core
    critical path (``max_shard_cpu``) are judged by.
    """
    out: dict[str, Any] = {
        "shards": plan.shards,
        "effective": plan.effective,
        "fallback_reason": plan.reason,
        "sync_rounds": sync_rounds,
    }
    if per_shard_events:
        out["per_shard_events"] = list(per_shard_events)
    if per_shard_wall:
        walls = [float(w) for w in per_shard_wall]
        out["per_shard_wall"] = [round(w, 4) for w in walls]
        out["max_shard_wall"] = round(max(walls), 4)
        out["min_shard_wall"] = round(min(walls), 4)
    loads = [float(c) for c in per_shard_cpu] if per_shard_cpu else \
        ([float(w) for w in per_shard_wall] if per_shard_wall else None)
    if per_shard_cpu:
        out["per_shard_cpu"] = [round(c, 4) for c in loads]
        out["max_shard_cpu"] = round(max(loads), 4)
    if loads:
        mean = sum(loads) / len(loads)
        out["load_imbalance"] = round(max(loads) / mean, 4) if mean > 0 \
            else 0.0
    return out


def run_sharded(config: ExperimentConfig, program,
                plan: ShardPlan) -> RunResult:
    """Run one experiment partitioned over ``plan.effective`` shards."""
    return ShardCoordinator(config, program, plan).run()
