"""Turn a :class:`FaultPlan` plus a seed into runtime fault behaviour.

The injector is the single stateful object the simulation layers consult:

- :meth:`ost_profile` / :meth:`node_profile` compile the plan's windows
  into :class:`~repro.sim.resources.ServiceProfile` objects (cached, or
  None when the plan never touches that resource — the None fast path is
  what keeps zero-fault runs bit-identical to a build without faults);
- :meth:`rpc_delay` runs the client's retry loop for one RPC: it decides
  from dedicated per-OST RNG streams whether each attempt is lost, sums
  timeout + backoff delays, and raises
  :class:`~repro.errors.FaultExhaustedError` when the policy gives out.

Determinism contract: the RNG streams are named
``faults/rpc/ost-{i}`` and ``faults/backoff/ost-{i}`` — disjoint from
the Lustre client's ``ost-{i}`` service-jitter streams — and are drawn
from only while a flaky window is active for that OST, so runs whose
plan has no flaky events (or whose I/O misses the windows) consume zero
fault randomness.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ConfigError, FaultExhaustedError
from repro.faults.plan import FaultPlan, FlakyRPC, NodeSlowdown, OSTDegrade, OSTStall
from repro.faults.retry import RetryPolicy
from repro.sim.resources import ServiceProfile
from repro.sim.rng import RngStreams


class FaultInjector:
    """Runtime companion of one FaultPlan for one simulated run."""

    def __init__(self, plan: FaultPlan, seed: int):
        self.plan = FaultPlan.coerce(plan)
        self.seed = int(seed)
        self._rng = RngStreams(self.seed)
        self._ost_profiles: dict[int, Optional[ServiceProfile]] = {}
        self._node_profiles: dict[int, Optional[ServiceProfile]] = {}
        #: counters for reports: total lost RPCs and retry seconds per OST
        self.rpc_failures: dict[int, int] = {}
        self.retry_seconds: dict[int, float] = {}

    # -- static degradation -------------------------------------------
    def ost_profile(self, ost: int) -> Optional[ServiceProfile]:
        """Service profile for one OST, or None if the plan leaves it alone."""
        prof = self._ost_profiles.get(ost, _MISSING)
        if prof is _MISSING:
            windows = self.plan.ost_windows(ost)
            prof = ServiceProfile(windows) if windows else None
            self._ost_profiles[ost] = prof
        return prof

    def node_profile(self, node: int) -> Optional[ServiceProfile]:
        """Speed profile for one compute node (CPU + NIC), or None."""
        prof = self._node_profiles.get(node, _MISSING)
        if prof is _MISSING:
            windows = self.plan.node_windows(node)
            prof = ServiceProfile(windows) if windows else None
            self._node_profiles[node] = prof
        return prof

    def validate_platform(self, n_osts: int, nnodes: int) -> None:
        """Reject plans naming resources the platform does not have."""
        for ev in self.plan.events:
            if isinstance(ev, (OSTDegrade, OSTStall)) and ev.ost >= n_osts:
                raise ConfigError(
                    f"fault plan targets ost {ev.ost} but the file system "
                    f"has only {n_osts} OSTs")
            if isinstance(ev, FlakyRPC) and ev.ost is not None \
                    and ev.ost >= n_osts:
                raise ConfigError(
                    f"fault plan targets ost {ev.ost} but the file system "
                    f"has only {n_osts} OSTs")
            if isinstance(ev, NodeSlowdown) and ev.node >= nnodes:
                raise ConfigError(
                    f"fault plan targets node {ev.node} but the machine "
                    f"has only {nnodes} nodes")

    # -- transient RPC faults -----------------------------------------
    def rpc_delay(self, ost: int, t: float, policy: RetryPolicy
                  ) -> tuple[float, int]:
        """Client-side delay for one RPC to ``ost`` issued at time ``t``.

        Returns ``(delay_seconds, failures)``: the RPC reaches the OST at
        ``t + delay_seconds`` after ``failures`` lost attempts.  Raises
        :class:`FaultExhaustedError` when every attempt is lost.  A lost
        RPC never occupies the OST — it dies in transit — so the cost is
        purely client-side waiting.
        """
        if not self.plan.has_flaky(ost):
            return 0.0, 0
        delay = 0.0
        rpc_rng = None
        for attempt in range(1, policy.max_attempts + 1):
            prob = self.plan.flaky_prob(ost, t + delay)
            if prob <= 0.0:
                return delay, attempt - 1
            if rpc_rng is None:
                rpc_rng = self._rng.stream(f"faults/rpc/ost-{ost}")
            if float(rpc_rng.random()) >= prob:
                return delay, attempt - 1
            delay += policy.timeout
            if attempt < policy.max_attempts:
                delay += policy.backoff_delay(
                    attempt, self._rng.stream(f"faults/backoff/ost-{ost}"))
        raise FaultExhaustedError(ost, policy.max_attempts, t + delay)

    def record_retry(self, ost: int, seconds: float, failures: int) -> None:
        """Accumulate per-OST retry statistics for end-of-run reports."""
        if failures:
            self.rpc_failures[ost] = self.rpc_failures.get(ost, 0) + failures
            self.retry_seconds[ost] = self.retry_seconds.get(ost, 0.0) + seconds


_MISSING = object()
