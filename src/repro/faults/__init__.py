"""Deterministic fault injection and client-side resilience.

The subsystem splits cleanly into pure data and runtime behaviour:

- :mod:`repro.faults.plan` — :class:`FaultPlan` and its event types,
  serializable and hashable into experiment cache keys;
- :mod:`repro.faults.retry` — :class:`RetryPolicy`, the client's
  timeout / max-attempts / exponential-backoff response;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, which compiles
  a plan + seed into service profiles and the per-RPC retry loop.

The injector plugs into :class:`~repro.lustre.fs.LustreFS` (OST
degradation, stalls, flaky RPCs) and :class:`~repro.simmpi.world.World`
(node compute/NIC slowdown); retry time surfaces in the ``fault_retry``
breakdown category.
"""

from repro.errors import FaultExhaustedError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FlakyRPC,
    NodeSlowdown,
    OSTDegrade,
    OSTStall,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "FaultExhaustedError",
    "FaultInjector",
    "FaultPlan",
    "FlakyRPC",
    "NodeSlowdown",
    "OSTDegrade",
    "OSTStall",
    "RetryPolicy",
]
