"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen, order-insensitive collection of fault
events.  It is pure data — nothing here touches the engine — so a plan
can be serialized into experiment configs, hashed into the
:class:`~repro.harness.parallel.RunCache` key, and shipped to worker
processes.  The :class:`~repro.faults.injector.FaultInjector` turns a
plan plus a seed into the deterministic runtime behaviour.

Four event kinds cover the degradation modes the resilience study needs:

``OSTDegrade``
    One OST serves at ``factor`` times its nominal rate inside a time
    window (``factor`` < 1: a straggling server; > 1 is allowed for
    what-if speedups).
``OSTStall``
    One OST stops serving entirely for ``duration`` seconds — a failover
    or controller reset.  Requests in flight finish after the stall.
``FlakyRPC``
    RPCs to one OST (or all, ``ost=None``) are lost with probability
    ``prob`` inside the window; the client's retry policy decides what
    happens next.
``NodeSlowdown``
    One compute node's CPU and NIC run at ``factor`` speed inside the
    window — the classic straggler node.

All times are virtual seconds from simulation start; ``end=None`` means
the condition persists forever.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping, Optional, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class OSTDegrade:
    """OST ``ost`` serves at ``factor`` × nominal rate during [start, end)."""

    ost: int
    factor: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        _check_window(self, require_end=False)
        if self.ost < 0:
            raise ConfigError(f"OSTDegrade: ost must be >= 0, got {self.ost}")
        if self.factor <= 0:
            raise ConfigError(
                f"OSTDegrade: factor must be > 0 (use OSTStall for a full "
                f"stop), got {self.factor}")


@dataclass(frozen=True)
class OSTStall:
    """OST ``ost`` serves nothing during [start, start + duration)."""

    ost: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.ost < 0:
            raise ConfigError(f"OSTStall: ost must be >= 0, got {self.ost}")
        if self.start < 0:
            raise ConfigError(f"OSTStall: start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ConfigError(
                f"OSTStall: duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class FlakyRPC:
    """RPCs to ``ost`` (None = every OST) fail w.p. ``prob`` in [start, end)."""

    prob: float
    ost: Optional[int] = None
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        _check_window(self, require_end=False)
        if not (0.0 < self.prob <= 1.0):
            raise ConfigError(
                f"FlakyRPC: prob must be in (0, 1], got {self.prob}")
        if self.ost is not None and self.ost < 0:
            raise ConfigError(f"FlakyRPC: ost must be >= 0, got {self.ost}")


@dataclass(frozen=True)
class NodeSlowdown:
    """Node ``node`` computes and communicates at ``factor`` × speed."""

    node: int
    factor: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        _check_window(self, require_end=False)
        if self.node < 0:
            raise ConfigError(
                f"NodeSlowdown: node must be >= 0, got {self.node}")
        if self.factor <= 0:
            raise ConfigError(
                f"NodeSlowdown: factor must be > 0, got {self.factor}")


def _check_window(ev: Any, require_end: bool) -> None:
    if ev.start < 0:
        raise ConfigError(
            f"{type(ev).__name__}: start must be >= 0, got {ev.start}")
    if ev.end is None:
        if require_end:
            raise ConfigError(f"{type(ev).__name__}: end is required")
        return
    if ev.end <= ev.start:
        raise ConfigError(
            f"{type(ev).__name__}: end ({ev.end}) must be after "
            f"start ({ev.start})")


FaultEvent = Union[OSTDegrade, OSTStall, FlakyRPC, NodeSlowdown]

_EVENT_KINDS: dict[str, type] = {
    "ost_degrade": OSTDegrade,
    "ost_stall": OSTStall,
    "flaky_rpc": FlakyRPC,
    "node_slowdown": NodeSlowdown,
}
_KIND_OF = {cls: kind for kind, cls in _EVENT_KINDS.items()}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault events; the unit of experiment identity.

    Two plans with the same events in any order compare (and hash into
    the run cache) identically: the events tuple is canonically sorted.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        evs = tuple(self.events)
        for ev in evs:
            if type(ev) not in _KIND_OF:
                raise ConfigError(
                    f"FaultPlan: unknown event type {type(ev).__name__}")
        # canonical order: kind name, then field values — plan identity
        # must not depend on authoring order
        ordered = tuple(sorted(
            evs, key=lambda e: (_KIND_OF[type(e)], _field_tuple(e))))
        object.__setattr__(self, "events", ordered)

    # -- construction helpers ------------------------------------------
    @classmethod
    def straggler_ost(cls, ost: int, factor: float, start: float = 0.0,
                      end: Optional[float] = None) -> "FaultPlan":
        return cls((OSTDegrade(ost=ost, factor=factor, start=start, end=end),))

    @classmethod
    def flaky(cls, prob: float, ost: Optional[int] = None, start: float = 0.0,
              end: Optional[float] = None) -> "FaultPlan":
        return cls((FlakyRPC(prob=prob, ost=ost, start=start, end=end),))

    @classmethod
    def slow_node(cls, node: int, factor: float, start: float = 0.0,
                  end: Optional[float] = None) -> "FaultPlan":
        return cls((NodeSlowdown(node=node, factor=factor, start=start,
                                 end=end),))

    @classmethod
    def stall(cls, ost: int, start: float, duration: float) -> "FaultPlan":
        return cls((OSTStall(ost=ost, start=start, duration=duration),))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.events + other.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    # -- queries used by the injector ----------------------------------
    def ost_windows(self, ost: int) -> list[tuple[float, Optional[float], float]]:
        """Speed windows for one OST: degradations plus stalls (speed 0)."""
        out: list[tuple[float, Optional[float], float]] = []
        for ev in self.events:
            if isinstance(ev, OSTDegrade) and ev.ost == ost:
                out.append((ev.start, ev.end, ev.factor))
            elif isinstance(ev, OSTStall) and ev.ost == ost:
                out.append((ev.start, ev.start + ev.duration, 0.0))
        return out

    def node_windows(self, node: int) -> list[tuple[float, Optional[float], float]]:
        """Speed windows for one compute node."""
        return [(ev.start, ev.end, ev.factor) for ev in self.events
                if isinstance(ev, NodeSlowdown) and ev.node == node]

    def flaky_prob(self, ost: int, t: float) -> float:
        """Probability that an RPC to ``ost`` issued at time ``t`` is lost.

        Independent flaky windows compound: surviving the RPC means
        surviving every active window.
        """
        p_ok = 1.0
        for ev in self.events:
            if not isinstance(ev, FlakyRPC):
                continue
            if ev.ost is not None and ev.ost != ost:
                continue
            if t < ev.start or (ev.end is not None and t >= ev.end):
                continue
            p_ok *= 1.0 - ev.prob
        return 1.0 - p_ok

    def has_flaky(self, ost: int) -> bool:
        """Whether any flaky window ever targets ``ost`` (cheap pre-filter)."""
        return any(isinstance(ev, FlakyRPC)
                   and (ev.ost is None or ev.ost == ost)
                   for ev in self.events)

    # -- (de)serialization ---------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: ``{"events": [{"kind": ..., fields...}, ...]}``."""
        out = []
        for ev in self.events:
            d: dict[str, Any] = {"kind": _KIND_OF[type(ev)]}
            for f in fields(ev):
                d[f.name] = getattr(ev, f.name)
            out.append(d)
        return {"events": out}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        events = data.get("events", ())
        evs = []
        for d in events:
            d = dict(d)
            kind = d.pop("kind", None)
            ev_cls = _EVENT_KINDS.get(kind)
            if ev_cls is None:
                raise ConfigError(
                    f"FaultPlan.from_dict: unknown event kind {kind!r}; "
                    f"expected one of {sorted(_EVENT_KINDS)}")
            try:
                evs.append(ev_cls(**d))
            except TypeError as exc:
                raise ConfigError(
                    f"FaultPlan.from_dict: bad fields for {kind!r}: {exc}"
                ) from exc
        return cls(tuple(evs))

    @classmethod
    def coerce(cls, value: Any) -> "FaultPlan":
        """Accept a FaultPlan, a to_dict mapping, an event iterable, or None."""
        if value is None:
            return cls()
        if isinstance(value, FaultPlan):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, Iterable):
            return cls(tuple(value))
        raise ConfigError(
            f"cannot interpret {type(value).__name__} as a FaultPlan")


def _field_tuple(ev: Any) -> tuple:
    return tuple(
        (f.name, -1 if getattr(ev, f.name) is None else getattr(ev, f.name))
        for f in fields(ev))
