"""Client-side RPC retry policy: timeout, attempts, backoff, jitter.

Models the Lustre client's recovery behaviour at the level the paper's
timing model cares about: a lost RPC costs the client one timeout, then
an exponentially growing backoff delay before the next attempt.  The
jitter is drawn from a dedicated deterministic RNG stream (one per OST,
owned by the injector) so that retried runs are bit-reproducible and
adding retry consumers does not perturb any other stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """How the client responds to a lost RPC.

    ``max_attempts=1`` is "no retry": the first loss raises
    :class:`~repro.errors.FaultExhaustedError`.  Delay before attempt
    ``k+1`` (after ``k`` failures) is
    ``timeout + backoff_base * backoff_factor**(k-1) * (1 + jitter*u)``
    with ``u`` uniform in [0, 1).
    """

    max_attempts: int = 8
    #: seconds the client waits before declaring one RPC lost
    timeout: float = 5e-3
    #: first backoff delay, seconds
    backoff_base: float = 2e-3
    #: multiplicative growth per failure
    backoff_factor: float = 2.0
    #: relative jitter amplitude on each backoff delay
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout <= 0:
            raise ConfigError(
                f"retry timeout must be > 0, got {self.timeout}")
        if self.backoff_base < 0:
            raise ConfigError(
                f"retry backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"retry backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.jitter < 0:
            raise ConfigError(
                f"retry jitter must be >= 0, got {self.jitter}")

    def backoff_delay(self, failures: int, rng: Any) -> float:
        """Delay before the next attempt after ``failures`` >= 1 losses.

        ``rng`` is a numpy Generator; it is consulted only when jitter is
        configured, so jitter=0 policies consume no randomness.
        """
        delay = self.backoff_base * self.backoff_factor ** (failures - 1)
        if self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay

    def with_(self, **kwargs: Any) -> "RetryPolicy":
        """Copy with overrides (validated)."""
        return replace(self, **kwargs)
