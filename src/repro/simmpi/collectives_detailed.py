"""Detailed collective algorithms executed as simulated message traffic.

These mirror the classic MPICH implementations: dissemination barrier,
binomial-tree broadcast/reduce/gather, recursive-doubling allreduce and
scan, ring allgather, and pairwise-exchange alltoall.  All messages travel
on the communicator's *collective context* so they can never match user
point-to-point traffic, and they deliberately bypass the per-category time
accounting — the caller charges the whole collective to its category.

Every function is a generator driven with ``yield from`` and returns the
same result shape as the analytic implementation in
:mod:`repro.simmpi.world`, which is what the equivalence tests assert.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

import numpy as np

from repro.simmpi.backends import _LeafBackend, register_backend
from repro.simmpi.payload import Payload, sizeof
from repro.simmpi.reduce_ops import ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.world import Communicator


class DetailedBackend(_LeafBackend):
    """Every collective runs its real message schedule through the DES."""

    name = "detailed"


register_backend(DetailedBackend.name, DetailedBackend.from_spec, leaf=True)


def _pay(obj: Any, nbytes: Optional[int]) -> Payload:
    if isinstance(obj, Payload):
        return obj
    return Payload.of(obj, nbytes)


def barrier(comm: "Communicator") -> Generator[Any, Any, None]:
    """Dissemination barrier: ceil(log2 p) rounds."""
    p, r = comm.size, comm.rank
    tagbase = comm._op_seq * 64
    k = 0
    dist = 1
    while dist < p:
        dst = (r + dist) % p
        src = (r - dist) % p
        sreq = comm._coll_isend(None, dst, tagbase + k, nbytes=0)
        yield comm._coll_irecv(src, tagbase + k)
        yield sreq
        dist <<= 1
        k += 1
    return None


def bcast(comm: "Communicator", obj: Any, root: int,
          nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast rooted at ``root``."""
    p, r = comm.size, comm.rank
    tag = comm._op_seq * 64 + 1
    relative = (r - root) % p
    mask = 1
    payload = _pay(obj, nbytes) if r == root else None
    while mask < p:
        if relative & mask:
            src = ((relative - mask) + root) % p
            payload = (yield comm._coll_irecv(src, tag))[0]
            break
        mask <<= 1
    mask >>= 1
    reqs = []
    while mask > 0:
        if relative + mask < p:
            dst = ((relative + mask) + root) % p
            reqs.append(comm._coll_isend(payload, dst, tag))
        mask >>= 1
    for req in reqs:
        yield req
    return payload.data if isinstance(payload, Payload) else payload


def reduce(comm: "Communicator", value: Any, op: ReduceOp, root: int,
           nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    """Binomial-tree reduction (commutative operators)."""
    p = comm.size
    tag = comm._op_seq * 64 + 2
    relative = (comm.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if relative & mask:
            parent = ((relative & ~mask) + root) % p
            yield comm._coll_isend(acc, parent, tag, nbytes=nbytes)
            return None
        src_rel = relative | mask
        if src_rel < p:
            payload = (yield comm._coll_irecv((src_rel + root) % p, tag))[0]
            acc = op(acc, payload.data)
        mask <<= 1
    return acc


def allreduce(comm: "Communicator", value: Any, op: ReduceOp,
              nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    """Recursive doubling with a fold step for non-power-of-two groups."""
    p, r = comm.size, comm.rank
    tagbase = comm._op_seq * 64 + 8
    acc = value
    # fold: trailing ranks send their value into the power-of-two core
    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    rem = p - pof2
    if r >= pof2:
        yield comm._coll_isend(acc, r - pof2, tagbase, nbytes=nbytes)
        newrank = -1
    elif r < rem:
        payload = (yield comm._coll_irecv(r + pof2, tagbase))[0]
        acc = op(acc, payload.data)
        newrank = r
    else:
        newrank = r
    if newrank >= 0:
        mask = 1
        k = 1
        while mask < pof2:
            partner = newrank ^ mask
            sreq = comm._coll_isend(acc, partner, tagbase + k, nbytes=nbytes)
            payload = (yield comm._coll_irecv(partner, tagbase + k))[0]
            yield sreq
            acc = op(acc, payload.data)
            mask <<= 1
            k += 1
    # unfold: core ranks push the result back out
    if r >= pof2:
        payload = (yield comm._coll_irecv(r - pof2, tagbase + 32))[0]
        acc = payload.data
    elif r < rem:
        yield comm._coll_isend(acc, r + pof2, tagbase + 32, nbytes=nbytes)
    return acc


def gather(comm: "Communicator", value: Any, root: int,
           nbytes: Optional[int]) -> Generator[Any, Any, Optional[list]]:
    """Binomial gather: leaves push partial dictionaries toward the root."""
    p = comm.size
    tag = comm._op_seq * 64 + 3
    relative = (comm.rank - root) % p
    collected: dict[int, Any] = {comm.rank: value}
    mask = 1
    while mask < p:
        if relative & mask:
            parent = ((relative & ~mask) + root) % p
            nb = None
            if nbytes is not None:
                nb = nbytes * len(collected)
            yield comm._coll_isend(collected, parent, tag, nbytes=nb)
            return None
        src_rel = relative | mask
        if src_rel < p:
            payload = (yield comm._coll_irecv((src_rel + root) % p, tag))[0]
            collected.update(payload.data)
        mask <<= 1
    return [collected[r] for r in range(p)]


def allgather(comm: "Communicator", value: Any,
              nbytes: Optional[int]) -> Generator[Any, Any, list]:
    """Ring allgather: p-1 steps, each forwarding one block."""
    p, r = comm.size, comm.rank
    tag = comm._op_seq * 64 + 4
    result: list[Any] = [None] * p
    result[r] = value
    right = (r + 1) % p
    left = (r - 1) % p
    # forward the received Payload object itself: its size was fixed by
    # the originating rank, so re-wrapping (and re-sizing) each hop is
    # pure overhead
    block = value if isinstance(value, Payload) else Payload.of(value, nbytes)
    for i in range(p - 1):
        recv_idx = (r - i - 1) % p
        sreq = comm._coll_isend(block, right, tag)
        payload = (yield comm._coll_irecv(left, tag))[0]
        yield sreq
        block = payload
        result[recv_idx] = payload.data
    return result


def alltoall(comm: "Communicator", values: list,
             nbytes_each: Optional[int]) -> Generator[Any, Any, list]:
    """Pairwise exchange: round i pairs rank with rank±i."""
    p, r = comm.size, comm.rank
    tag = comm._op_seq * 64 + 5
    # index plain ints, not numpy scalars; np.asarray below restores dtype
    vals = (values.tolist()
            if isinstance(values, np.ndarray) and values.ndim == 1 else values)
    result: list[Any] = [None] * p
    result[r] = vals[r]
    # inlined _coll_isend/_coll_irecv: this pairwise loop is the hottest
    # collective in detailed two-phase runs
    world = comm.world
    me = comm.proc.rank
    members = comm.desc.members
    cctx = comm._coll_ctx_val
    send_ev = world.send_message_ev
    recv_ev = world.post_recv_ev
    for i in range(1, p):
        dst = (r + i) % p
        src = (r - i) % p
        if nbytes_each is not None:
            sreq = send_ev(me, members[dst], cctx, tag,
                           Payload(nbytes_each, vals[dst]))
        else:
            sreq = comm._coll_isend(vals[dst], dst, tag, nbytes=nbytes_each)
        payload = (yield recv_ev(me, cctx, members[src], tag))[0]
        yield sreq
        result[src] = payload.data
    if isinstance(values, np.ndarray):
        # keep the result shape consistent with the analytic fast path
        return np.asarray(result, dtype=values.dtype)
    return result


def scatter(comm: "Communicator", values: Optional[list], root: int,
            nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    """Binomial scatter: the root pushes shrinking slices down the tree.

    A node at relative rank ``rel`` (lowest set bit ``b``) receives the
    slice ``[rel, min(rel + b, p))`` from ``rel - b`` and forwards the
    upper halves at masks ``b/2 .. 1``.
    """
    p = comm.size
    tag = comm._op_seq * 64 + 7
    relative = (comm.rank - root) % p
    if relative == 0:
        if values is None or len(values) != p:
            raise ValueError(f"scatter root needs {p} values")
        carry = {r: values[(r + root) % p] for r in range(p)}
        b = 1
        while b < p:
            b <<= 1
    else:
        b = relative & (-relative)
        src = ((relative - b) + root) % p
        payload = (yield comm._coll_irecv(src, tag))[0]
        carry = payload.data
    reqs = []
    mask = b >> 1
    while mask:
        dst_rel = relative + mask
        if dst_rel < p:
            slice_ = {r: v for r, v in carry.items() if r >= dst_rel}
            carry = {r: v for r, v in carry.items() if r < dst_rel}
            nb = None if nbytes is None else nbytes * max(1, len(slice_))
            reqs.append(comm._coll_isend(slice_, (dst_rel + root) % p, tag,
                                         nbytes=nb))
        mask >>= 1
    for req in reqs:
        yield req
    return carry[relative]


def reduce_scatter_block(comm: "Communicator", values: list, op: ReduceOp,
                         nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    """Reduce p per-destination values, each rank keeping its own slot.

    Implemented as pairwise exchange with on-the-fly reduction (the
    MPICH algorithm for commutative operators).
    """
    p, r = comm.size, comm.rank
    tag = comm._op_seq * 64 + 9
    acc = values[r]
    for i in range(1, p):
        dst = (r + i) % p
        src = (r - i) % p
        sreq = comm._coll_isend(values[dst], dst, tag, nbytes=nbytes)
        payload = (yield comm._coll_irecv(src, tag))[0]
        yield sreq
        acc = op(acc, payload.data)
    return acc


def exscan(comm: "Communicator", value: Any, op: ReduceOp,
           nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    """Exclusive scan: rank r gets op-fold of ranks < r (None at rank 0)."""
    p, r = comm.size, comm.rank
    tagbase = comm._op_seq * 64 + 10
    result = None
    partial = value
    mask = 1
    k = 0
    while mask < p:
        dst = r + mask
        src = r - mask
        sreq = None
        if dst < p:
            sreq = comm._coll_isend(partial, dst, tagbase + k, nbytes=nbytes)
        if src >= 0:
            payload = (yield comm._coll_irecv(src, tagbase + k))[0]
            recvd = payload.data
            result = recvd if result is None else op(recvd, result)
            partial = op(recvd, partial)
        if sreq is not None:
            yield sreq
        mask <<= 1
        k += 1
    return result


def scan(comm: "Communicator", value: Any, op: ReduceOp,
         nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    """Recursive-doubling inclusive scan."""
    p, r = comm.size, comm.rank
    tagbase = comm._op_seq * 64 + 6
    result = value
    partial = value
    mask = 1
    k = 0
    while mask < p:
        dst = r + mask
        src = r - mask
        sreq = None
        if dst < p:
            sreq = comm._coll_isend(partial, dst, tagbase + k, nbytes=nbytes)
        if src >= 0:
            payload = (yield comm._coll_irecv(src, tagbase + k))[0]
            result = op(payload.data, result)
            partial = op(payload.data, partial)
        if sreq is not None:
            yield sreq
        mask <<= 1
        k += 1
    return result
