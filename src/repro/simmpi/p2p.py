"""Point-to-point messaging: matching queues, eager and rendezvous protocols.

Matching follows MPI rules: a receive matches on ``(context, source, tag)``
with ``ANY_SOURCE`` / ``ANY_TAG`` wildcards, posted receives match in post
order, unexpected messages in arrival order, and messages between one
(sender, receiver, context) pair do not overtake (guaranteed here by FIFO
NIC resources plus sequence numbers).

Protocols:

* **eager** (size <= ``eager_threshold``) — the payload is pushed
  immediately; the sender completes as soon as the NIC accepts the data.
* **rendezvous** — only a header travels at send time; the data transfer
  starts when the receiver matches the header (clear-to-send latency),
  and the *sender* blocks until the NIC drains the payload.  This is what
  couples process skew across ranks in collective I/O: a late receiver
  stalls its senders.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import MPIError
from repro.sim.effects import WaitEvent
from repro.sim.engine import Engine, Event
from repro.simmpi.payload import Payload

ANY_SOURCE = -1
ANY_TAG = -1

#: modeled wire size of a rendezvous header / clear-to-send
RTS_BYTES = 64


class Status:
    """Source and tag of a completed receive."""

    __slots__ = ("source", "tag")

    def __init__(self, source: int, tag: int):
        self.source = source
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Status(source={self.source}, tag={self.tag})"


class Message:
    """An in-flight message (world-rank addressed)."""

    __slots__ = ("ctx", "src", "dst", "tag", "payload", "rendezvous",
                 "send_event", "seq")

    def __init__(self, ctx: int, src: int, dst: int, tag: int,
                 payload: Payload, rendezvous: bool,
                 send_event: Optional[Event], seq: int):
        self.ctx = ctx
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.rendezvous = rendezvous
        self.send_event = send_event
        self.seq = seq


class PostedRecv:
    """A receive waiting to be matched."""

    __slots__ = ("ctx", "src", "tag", "event", "seq")

    def __init__(self, ctx: int, src: int, tag: int, event: Event, seq: int):
        self.ctx = ctx
        self.src = src
        self.tag = tag
        self.event = event
        self.seq = seq

    def matches(self, msg: Message) -> bool:
        return (self.ctx == msg.ctx
                and self.src in (ANY_SOURCE, msg.src)
                and self.tag in (ANY_TAG, msg.tag))


class Request:
    """Handle for a pending operation; complete it with ``yield from wait()``."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event

    @property
    def complete(self) -> bool:
        return self.event.fired

    def wait(self) -> Generator[Any, Any, Any]:
        value = yield WaitEvent(self.event)
        return value


def waitall(requests: list[Request]) -> Generator[Any, Any, list[Any]]:
    """Complete all requests; returns their values in request order."""
    out = []
    for req in requests:
        val = yield from req.wait()
        out.append(val)
    return out


class Mailbox:
    """Per-rank matching state."""

    __slots__ = ("posted", "unexpected")

    def __init__(self) -> None:
        self.posted: list[PostedRecv] = []
        self.unexpected: list[Message] = []

    def match_posted(self, msg: Message) -> Optional[PostedRecv]:
        """Find (and remove) the first posted recv matching ``msg``."""
        for i, pr in enumerate(self.posted):
            if pr.matches(msg):
                return self.posted.pop(i)
        return None

    def match_unexpected(self, pr: PostedRecv) -> Optional[Message]:
        """Find (and remove) the earliest unexpected message matching ``pr``."""
        for i, msg in enumerate(self.unexpected):
            if pr.matches(msg):
                return self.unexpected.pop(i)
        return None

    def describe(self) -> str:
        return (f"{len(self.posted)} posted recv(s), "
                f"{len(self.unexpected)} unexpected message(s)")
