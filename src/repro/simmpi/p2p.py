"""Point-to-point messaging: matching queues, eager and rendezvous protocols.

Matching follows MPI rules: a receive matches on ``(context, source, tag)``
with ``ANY_SOURCE`` / ``ANY_TAG`` wildcards, posted receives match in post
order, unexpected messages in arrival order, and messages between one
(sender, receiver, context) pair do not overtake (guaranteed here by FIFO
NIC resources plus sequence numbers).

Protocols:

* **eager** (size <= ``eager_threshold``) — the payload is pushed
  immediately; the sender completes as soon as the NIC accepts the data.
* **rendezvous** — only a header travels at send time; the data transfer
  starts when the receiver matches the header (clear-to-send latency),
  and the *sender* blocks until the NIC drains the payload.  This is what
  couples process skew across ranks in collective I/O: a late receiver
  stalls its senders.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.errors import MPIError
from repro.sim.effects import WaitEvent
from repro.sim.engine import Engine, Event
from repro.simmpi.payload import Payload

ANY_SOURCE = -1
ANY_TAG = -1

#: modeled wire size of a rendezvous header / clear-to-send
RTS_BYTES = 64


class Status:
    """Source and tag of a completed receive."""

    __slots__ = ("source", "tag")

    def __init__(self, source: int, tag: int):
        self.source = source
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Status(source={self.source}, tag={self.tag})"


class Message:
    """An in-flight message (world-rank addressed)."""

    __slots__ = ("ctx", "src", "dst", "tag", "payload", "rendezvous",
                 "send_event", "seq", "arr")

    def __init__(self, ctx: int, src: int, dst: int, tag: int,
                 payload: Payload, rendezvous: bool,
                 send_event: Optional[Event], seq: int):
        self.ctx = ctx
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.rendezvous = rendezvous
        self.send_event = send_event
        self.seq = seq
        self.arr = 0  # arrival stamp, set when the mailbox queues it

    @property
    def source(self) -> int:
        """Status-compatible alias: completed receives hand the matched
        message itself to the waiter as its status object, so the hot
        path never allocates a separate :class:`Status`."""
        return self.src


class PostedRecv:
    """A receive waiting to be matched."""

    __slots__ = ("ctx", "src", "tag", "event", "seq")

    def __init__(self, ctx: int, src: int, tag: int, event: Event, seq: int):
        self.ctx = ctx
        self.src = src
        self.tag = tag
        self.event = event
        self.seq = seq

    def matches(self, msg: Message) -> bool:
        return (self.ctx == msg.ctx
                and self.src in (ANY_SOURCE, msg.src)
                and self.tag in (ANY_TAG, msg.tag))


class Request:
    """Handle for a pending operation; complete it with ``yield from wait()``."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event

    @property
    def complete(self) -> bool:
        return self.event.fired

    def wait(self) -> Generator[Any, Any, Any]:
        value = yield self.event
        return value


def waitall(requests: list[Request]) -> Generator[Any, Any, list[Any]]:
    """Complete all requests; returns their values in request order."""
    out = []
    for req in requests:
        out.append((yield req.event))
    return out


class Mailbox:
    """Per-rank matching state, indexed for O(1) fully-specified matches.

    Receives with concrete ``(ctx, src, tag)`` live in dict buckets keyed on
    that triple; receives with ``ANY_SOURCE``/``ANY_TAG`` go on an ordered
    wildcard side-list.  Unexpected messages always carry a concrete key, so
    they are bucketed unconditionally and stamped with an arrival counter.

    MPI ordering survives the split because both candidate heads carry
    monotone stamps: posted recvs keep their post-time ``seq`` (post order),
    unexpected messages get ``arr`` (arrival order).  A match arbitrates
    between the exact-bucket head and the first matching wildcard (resp. the
    earliest-arrived head across matching buckets) by stamp, which picks
    exactly the element the linear scan over one ordered list would have.
    """

    __slots__ = ("posted_exact", "posted_wild", "unexpected_by_key",
                 "_arrivals", "n_posted", "n_unexpected",
                 "exact_matches", "wildcard_matches")

    def __init__(self) -> None:
        self.posted_exact: dict[tuple[int, int, int], deque[PostedRecv]] = {}
        self.posted_wild: list[PostedRecv] = []
        self.unexpected_by_key: dict[tuple[int, int, int],
                                     deque[Message]] = {}
        self._arrivals = 0
        self.n_posted = 0
        self.n_unexpected = 0
        self.exact_matches = 0
        self.wildcard_matches = 0

    def add_posted(self, pr: PostedRecv) -> None:
        """Queue an unmatched receive (in post order)."""
        if pr.src != ANY_SOURCE and pr.tag != ANY_TAG:
            key = (pr.ctx, pr.src, pr.tag)
            bucket = self.posted_exact.get(key)
            if bucket is None:
                bucket = self.posted_exact[key] = deque()
            bucket.append(pr)
        else:
            self.posted_wild.append(pr)
        self.n_posted += 1

    def add_unexpected(self, msg: Message) -> None:
        """Queue a message that arrived before its receive (arrival order)."""
        self._arrivals += 1
        msg.arr = self._arrivals
        key = (msg.ctx, msg.src, msg.tag)
        bucket = self.unexpected_by_key.get(key)
        if bucket is None:
            bucket = self.unexpected_by_key[key] = deque()
        bucket.append(msg)
        self.n_unexpected += 1

    def match_posted(self, msg: Message) -> Optional[PostedRecv]:
        """Find (and remove) the first-posted recv matching ``msg``."""
        key = (msg.ctx, msg.src, msg.tag)
        bucket = self.posted_exact.get(key)
        exact = bucket[0] if bucket else None
        wild_i = -1
        wild_list = self.posted_wild
        if wild_list:
            for i, pr in enumerate(wild_list):
                if pr.matches(msg):
                    wild_i = i
                    break
        if wild_i < 0:
            if exact is None:
                return None
            bucket.popleft()
            if not bucket:
                del self.posted_exact[key]
            self.n_posted -= 1
            self.exact_matches += 1
            return exact
        wild = self.posted_wild[wild_i]
        if exact is not None and exact.seq < wild.seq:
            bucket.popleft()
            if not bucket:
                del self.posted_exact[key]
            self.n_posted -= 1
            self.exact_matches += 1
            return exact
        del self.posted_wild[wild_i]
        self.n_posted -= 1
        self.wildcard_matches += 1
        return wild

    def match_unexpected(self, pr: PostedRecv) -> Optional[Message]:
        """Find (and remove) the earliest-arrived message matching ``pr``."""
        return self.match_unexpected_key(pr.ctx, pr.src, pr.tag)

    def match_unexpected_key(self, p_ctx: int, p_src: int,
                             p_tag: int) -> Optional[Message]:
        """Keyed variant of :meth:`match_unexpected` — the receive-post hot
        path matches before it ever builds a :class:`PostedRecv`."""
        if p_src != ANY_SOURCE and p_tag != ANY_TAG:
            key = (p_ctx, p_src, p_tag)
            bucket = self.unexpected_by_key.get(key)
            if not bucket:
                return None
            msg = bucket.popleft()
            if not bucket:
                del self.unexpected_by_key[key]
            self.n_unexpected -= 1
            self.exact_matches += 1
            return msg
        best_key = None
        best = None
        for key, bucket in self.unexpected_by_key.items():
            ctx, src, tag = key
            if (ctx == p_ctx
                    and p_src in (ANY_SOURCE, src)
                    and p_tag in (ANY_TAG, tag)):
                head = bucket[0]
                if best is None or head.arr < best.arr:
                    best_key = key
                    best = head
        if best is None:
            return None
        bucket = self.unexpected_by_key[best_key]
        bucket.popleft()
        if not bucket:
            del self.unexpected_by_key[best_key]
        self.n_unexpected -= 1
        self.wildcard_matches += 1
        return best

    def describe(self) -> str:
        return (f"{self.n_posted} posted recv(s), "
                f"{self.n_unexpected} unexpected message(s)")
