"""Macro collective fidelity: coalesce a round's messages into closed form.

The ``detailed`` fidelity simulates every collective message as engine
traffic — one generator resumption, two scheduler entries, a mailbox
match, and an event fire per message.  For the synchronizing collectives
(barrier, allgather, alltoall, allreduce, reduce_scatter_block) the
message schedule is *statically known*: every send's destination, size,
and matching receive are fixed by the algorithm, and no rank can leave
before every rank has entered (each exit transitively depends on a
message from every participant).  The ``macro`` fidelity exploits
exactly that: participating ranks park on one event apiece while a
shared per-world *walker* replays the detailed algorithm's message
schedule as a timestamp-ordered walk over the send/receive dependency
graph — no per-message tasks, mailboxes, or event objects.

The walk reproduces the engine's execution *bit-identically*:

* it is incremental — each rank pushes its first step when it arrives,
  and the walker processes work through at most one engine callback per
  distinct timestamp, so every NIC reservation is issued at its true
  chronological engine moment, interleaved with concurrent
  non-collective traffic (pipelined writes, point-to-point exchange)
  exactly as the per-message simulation would;
* completion times come from the same
  :meth:`~repro.sim.resources.FIFOResource.reserve_span` arithmetic in
  the same global order, including rendezvous header/clear-to-send/data
  phases and piecewise fault speed profiles;
* ties are broken exactly like the engine's ``(time, seq)`` heap key —
  the walker allocates its sequence numbers *from the engine's own
  counter*, in the same order the per-message schedule would have
  pushed its scheduler entries, so all macro rounds in a world and all
  unrelated engine traffic share one sequence space; the walker heap is
  keyed ``(t, phase, seq)`` (phase separates heap-stage bookkeeping
  from deque-stage continuations, see below);
* at a *contested* timestamp — engine ready-deque entries pending, or
  foreign engine heap entries due — every due walker entry is requeued
  into the *engine heap* at its own ``(t, seq)`` slot
  (:meth:`Engine._sched_at_seq`), so it executes at exactly the
  position the per-message schedule's entry would have occupied,
  interleaved with unrelated same-instant traffic by construction.
  Requeued bookkeeping entries (rendezvous headers, data phases — real
  heap callbacks in the per-message schedule) run at heap stage; a
  requeued rank resumption appends its cascade to the engine ready
  deque when its slot dispatches, mirroring the detailed fire→deque
  two-stage structure, and a rank exit reached at deque stage resumes
  the parked task inline exactly where the detailed task's continuation
  would have run.  At uncontested timestamps no other actor can observe
  the ordering and the walk advances inline at full speed.

Non-synchronizing collectives (bcast, reduce, gather, scatter, scan,
exscan) can complete on some ranks before others arrive, so a site-based
replay would be unsound; under the ``macro`` backend those fall back to
the detailed message schedule (see :meth:`Communicator._collective`).
The walk itself falls back when message timestamps are not strictly
ordered after their causes (``send_overhead == 0`` or ``latency == 0``
make same-time scheduling possible, which the replay cannot order), and
for single-rank communicators (whose detailed path never yields).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import MPIError, SimulationError
from repro.perf import perf_counters
from repro.sim.effects import WaitEvent
from repro.sim.engine import _K_CALL1, _K_FIRE, Event
from repro.simmpi import collectives_detailed as detailed
from repro.simmpi.backends import _LeafBackend, register_backend
from repro.simmpi.p2p import RTS_BYTES
from repro.simmpi.payload import Payload, sizeof
from repro.simmpi.reduce_ops import ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.world import Communicator, World

_INF = float("inf")


class MacroBackend(_LeafBackend):
    """Synchronizing collectives replay their schedule in closed form."""

    name = "macro"


register_backend(MacroBackend.name, MacroBackend.from_spec, leaf=True)

#: initial site entries must order before any allocated sequence number
_BIG = 1 << 60


def _usable(comm: "Communicator") -> bool:
    """Can the walk order this world's schedules exactly?

    Strictly positive send overhead and wire latency guarantee every
    transfer completes strictly after it was issued, so no collective
    message ever lands on the engine's same-time ready deque — the
    ordering regime the walker reproduces.  Rank-symmetric: depends only
    on world-global parameters.
    """
    p = comm.world.network.params
    return p.send_overhead > 0.0 and p.latency > 0.0


class _MacroSite:
    """Synchronization site for one macro collective call."""

    __slots__ = ("arrivals", "values", "order", "events", "kind",
                 "driver", "extra")

    def __init__(self, kind: str):
        self.arrivals: dict[int, float] = {}
        self.values: dict[int, Any] = {}
        #: ranks in engine execution order of their arrival
        self.order: list[int] = []
        self.events: dict[int, Event] = {}
        self.kind = kind
        self.driver: Optional[_Driver] = None
        #: per-kind scratch (converted payloads, memoized reductions)
        self.extra: dict = {}


def _transfer_at(net, t: float, src_rank: int, dst_rank: int,
                 nbytes: int) -> tuple[float, float]:
    """:meth:`NetworkModel.transfer` issued at logical time ``t``.

    The walker calls this in global chronological order (``t`` is always
    the engine's current time or the walker's quiescent-advance clock),
    so reserving the real NIC resources directly (no shadow state)
    leaves them in exactly the state N per-message ``transfer()`` calls
    would have.
    """
    net.messages_sent += 1
    net.bytes_sent += nbytes
    node_of = net._node_of
    src_node = node_of[src_rank]
    dst_node = node_of[dst_rank]
    p = net.params
    if src_node == dst_node:
        done = t + p.send_overhead + nbytes / p.memcpy_bandwidth
        return done, done
    net.cross_node_messages += 1
    net.cross_node_bytes += nbytes
    tx_start, tx_done = net.tx[src_node].reserve_span(t, nbytes)
    if net._flat_wire:
        first_byte = tx_start + p.latency
    else:
        first_byte = tx_start + net.wire_latency(src_node, dst_node)
    arrival = net.rx[dst_node].reserve_span(first_byte, nbytes)[1]
    return tx_done, arrival


class _Driver:
    """Per-site replay state for one collective round.

    ``progs[r]`` is rank r's step list; each step is ``(dst, dstep, nb,
    src)``: send ``nb`` bytes to rank ``dst`` (matched by the receiver's
    step index ``dstep``), then wait the receive of a message from some
    rank (``src >= 0``), then wait the send.  ``dst = -1`` is a
    receive-only step, ``src = -1`` send-only — exactly the three shapes
    the detailed algorithms use (``sreq = isend; yield irecv; yield
    sreq``).  ``nb`` may be a zero-argument callable, resolved when the
    step is issued — sizes that depend on other ranks' payloads
    (forwarded blocks, partial reductions) are only known once the data
    has causally propagated, which is exactly when the step runs.

    All scheduling state (heap, sequence counter, wake) lives on the
    world's shared :class:`_Walker`; the driver only holds the round's
    step programs and per-rank progress.
    """

    __slots__ = ("core", "members", "p", "site", "idx", "step_i",
                 "pend", "inbox", "progs", "results", "nmsgs", "done")

    def __init__(self, comm: "Communicator", site: _MacroSite,
                 core: "_Walker"):
        p = comm.size
        self.core = core
        self.members = comm.desc.members
        self.p = p
        self.site = site
        self.idx = 0
        self.step_i = [0] * p
        #: parked rank state: [step, sendT, sbind, recvT, rbind]; None
        #: fields are unresolved (rendezvous send, unmatched receive)
        self.pend: list[Optional[list]] = [None] * p
        #: early messages keyed (dst, dstep): ("e", arrival, seq) once
        #: the delivery is scheduled, ("h", src, nb) for an unmatched
        #: rendezvous header sitting in the unexpected queue
        self.inbox: dict[tuple[int, int], tuple] = {}
        self.progs: list[Optional[list]] = [None] * p
        self.results: Optional[list] = None
        self.nmsgs = 0
        self.done = 0

    def push_initial(self, r: int, prog: list) -> None:
        core = self.core
        self.progs[r] = prog
        heappush(core.heap,
                 (self.site.arrivals[r], 1, core.initc - _BIG, 0, r, self))
        core.initc += 1
        self.idx += 1

    def _complete(self, r: int, pe: list) -> None:
        sendT, sbind, recvT, rbind = pe[1], pe[2], pe[3], pe[4]
        if sendT is None or recvT is None:
            return
        self.pend[r] = None
        self.step_i[r] += 1
        if recvT >= sendT:
            self.core._push(recvT, 1, rbind, 0, r, self)
        else:
            self.core._push(sendT, 1, sbind, 0, r, self)


class _Walker:
    """Shared per-world schedule walker mirroring the engine seq space.

    Work lives on a heap keyed ``(t, phase, seq)``: phase 0 entries are
    real scheduler entries (rendezvous header deliveries and data
    phases), phase 1 entries are rank resumptions whose seq is the entry
    that woke the task — the send event's fire when the send finished
    last, the delivery's when the receive did.  Sequence numbers are
    allocated *from the engine's own counter*, in engine push order: per
    eager message the send fire then the delivery, per rendezvous the
    header delivery, the clear-to-send at match time, then the data
    phase's sender-free and arrival fires.  Sharing the engine's
    sequence space across every macro site in the world keeps concurrent
    rounds — and unrelated per-message traffic — in the one global order
    the engine's own heap would impose.

    :meth:`pump` requeues every entry due at a *contested* current time
    into the engine heap at its own ``(t, seq)`` slot (see the module
    docstring), then advances inline as far as engine quiescence allows,
    and schedules one engine callback at the next entry's timestamp (at
    a seq strictly below every due entry's, so requeued entries land
    ahead of any foreign same-instant traffic they must precede), so the
    walk advances in lockstep with the rest of the simulation.
    """

    __slots__ = ("eng", "net", "eager", "cts_base", "node_of", "heap",
                 "initc", "wake_at", "wake_seq", "first_seq", "parked",
                 "unfinished")

    def __init__(self, world: "World"):
        self.eng = world.engine
        self.net = world.network
        self.eager = world._eager_threshold
        self.cts_base = self.net.params.send_overhead
        self.node_of = self.net._node_of
        self.heap: list[tuple] = []
        self.initc = 0
        self.wake_at = _INF
        self.wake_seq = _INF
        #: min engine seq among heap entries per timestamp — the wake
        #: for a timestamp must order before every entry it will requeue
        self.first_seq: dict[float, int] = {}
        #: entries requeued into the engine scheduler, not yet run
        self.parked = 0
        #: fully-arrived rounds that have not completed yet
        self.unfinished = 0

    def _push(self, t: float, phase: int, seq: int, code: int,
              arg: Any, drv: _Driver) -> None:
        """Heap push with first-seq bookkeeping (and wake demotion when
        a new entry undercuts an already-scheduled wake's seq)."""
        heappush(self.heap, (t, phase, seq, code, arg, drv))
        fs = self.first_seq
        prev = fs.get(t)
        if prev is None or seq < prev:
            fs[t] = seq
            if t == self.wake_at and seq < self.wake_seq:
                # an earlier-seq entry appeared at the wake's timestamp:
                # add an earlier wake (the stale one fires harmlessly)
                self.wake_seq = seq
                self.eng._sched_at_seq(t, seq - 0.5, _K_CALL1,
                                       self._wake, None)

    def _wake(self, _arg: Any = None) -> None:
        self.wake_at = _INF
        self.wake_seq = _INF
        self.pump()

    def _parked_heap(self, entry: tuple) -> None:
        """A bookkeeping entry requeued to its own engine heap slot."""
        self.parked -= 1
        t, _phase, seq, code, arg, drv = entry
        self._heap_entry(t, code, arg, drv)
        self.pump()

    def _parked_fire(self, arg: tuple) -> None:
        """A resumption's fire slot dispatching from the engine heap:
        the detailed fire appends the woken task to the ready deque, so
        the cascade takes exactly that deque position."""
        eng = self.eng
        eng.heap_bypasses += 1
        eng._ready.append((_K_CALL1, self._run_casc, arg))

    def _run_casc(self, arg: tuple) -> None:
        drv, r, bind = arg
        self.parked -= 1
        self._casc(drv, r, self.eng.now, bind, True)
        self.pump()

    def _heap_entry(self, t: float, code: int, arg: tuple,
                    drv: _Driver) -> None:
        """Process a code-1/code-2 entry (heap-stage bookkeeping)."""
        eng = self.eng
        net = self.net
        members = drv.members
        node_of = self.node_of
        if code == 1:
            # rendezvous header delivered at the receiver
            src, dst, dstep, nb = arg
            pe = drv.pend[dst]
            if pe is not None and pe[0] == dstep:
                # receive already posted: match, clear-to-send goes
                # back (sum the latency terms first — same float
                # association as World._rendezvous_cts)
                cts = t + (net.wire_latency(
                    node_of[members[dst]],
                    node_of[members[src]]) + self.cts_base)
                eng._seq += 1
                self._push(cts, 0, eng._seq, 2, arg, drv)
            else:
                drv.inbox[(dst, dstep)] = ("h", src, nb)
            return
        # code 2: rendezvous data phase — a real heap callback in
        # the per-message schedule too
        src, dst, dstep, nb = arg
        free, arr = _transfer_at(net, t, members[src], members[dst], nb)
        sa = eng._seq + 1
        sb = sa + 1
        eng._seq = sb
        pe = drv.pend[src]
        pe[1] = free
        pe[2] = sa
        drv._complete(src, pe)
        pe = drv.pend[dst]
        pe[3] = arr
        pe[4] = sb
        drv._complete(dst, pe)

    def _casc(self, drv: _Driver, r: int, cur_t: float, bind: int,
              deque_stage: bool = False) -> None:
        """Advance rank ``r``'s step cascade from its current position.

        ``bind`` is the engine seq of the entry that resumed the rank —
        the position the detailed task's wake would have held; a rank
        exit reached while walked ahead of the engine clock re-enters
        the scheduler at exactly that slot.  ``deque_stage`` is set when
        the cascade occupies a ready-deque position (a requeued
        resumption, or an arriving rank's own continuation): an exit
        there resumes the parked task inline, just as the detailed
        task's continuation would have run at that position.
        """
        eng = self.eng
        net = self.net
        members = drv.members
        node_of = self.node_of
        pend = drv.pend
        inbox = drv.inbox
        step_i = drv.step_i
        eager = self.eager
        cts_base = self.cts_base
        prog = drv.progs[r]
        nsteps = len(prog)
        while True:
            k = step_i[r]
            if k >= nsteps:
                drv.done += 1
                if drv.done == drv.p:
                    perf_counters.messages_coalesced += drv.nmsgs
                    self.unfinished -= 1
                ev = drv.site.events[r]
                val = drv.results[r]
                if cur_t > eng.now:
                    # walked ahead of the engine clock: re-enter the
                    # scheduler so the rank resumes at its true exit
                    # time, at the waking entry's own seq slot
                    eng._sched_at_seq(cur_t, bind, _K_FIRE, ev, val)
                elif deque_stage and ev._waiters:
                    # the cascade holds the deque position the detailed
                    # continuation would have run at: resume inline
                    ev._value = val
                    task = ev._waiters.pop()
                    eng._step(task, val)
                else:
                    ev.fire(val)
                break
            dst, dstep, nb, src = prog[k]
            if callable(nb):
                nb = nb()
            sendT = sbind = None
            has_send = dst >= 0
            if has_send:
                drv.nmsgs += 1
                if nb <= eager:
                    free, arr = _transfer_at(
                        net, cur_t, members[r], members[dst], nb)
                    sendT = free
                    sbind = eng._seq + 1   # send-event fire
                    dseq = sbind + 1       # delivery
                    eng._seq = dseq
                    pe = pend[dst]
                    if pe is not None and pe[0] == dstep:
                        pe[3] = arr
                        pe[4] = dseq
                        drv._complete(dst, pe)
                    else:
                        inbox[(dst, dstep)] = ("e", arr, dseq)
                else:
                    _, harr = _transfer_at(
                        net, cur_t, members[r], members[dst], RTS_BYTES)
                    eng._seq += 1
                    self._push(harr, 0, eng._seq, 1,
                               (r, dst, dstep, nb), drv)
            if src < 0:
                # send-only step: wait for the sender-free event
                if sendT is None:
                    pend[r] = [k, None, None, 0.0, -1]
                    break
                step_i[r] += 1
                self._push(sendT, 1, sbind, 0, r, drv)
                break
            ib = inbox.pop((r, k), None)
            if ib is None:
                pend[r] = [k, sendT if has_send else 0.0,
                           sbind if has_send else -1, None, None]
                break
            if ib[0] == "h":
                # unmatched rendezvous header: posting the receive
                # sends the clear-to-send immediately
                cts = cur_t + (net.wire_latency(
                    node_of[members[r]],
                    node_of[members[ib[1]]]) + cts_base)
                eng._seq += 1
                self._push(cts, 0, eng._seq, 2, (ib[1], r, k, ib[2]), drv)
                pend[r] = [k, sendT if has_send else 0.0,
                           sbind if has_send else -1, None, None]
                break
            arrT, dseq = ib[1], ib[2]
            if not has_send:
                # receive-only step
                if arrT <= cur_t:
                    # already in the unexpected queue: continue inline,
                    # keeping this cascade's ordering token
                    step_i[r] += 1
                    continue
                step_i[r] += 1
                self._push(arrT, 1, dseq, 0, r, drv)
                break
            if sendT is None:
                # rendezvous send still pending; receive resolved
                pend[r] = [k, None, None, arrT, dseq]
                break
            step_i[r] += 1
            if arrT >= sendT:
                self._push(arrT, 1, dseq, 0, r, drv)
            else:
                self._push(sendT, 1, sbind, 0, r, drv)
            break

    def pump(self) -> None:
        """Drain due work, then advance inline as far as legality allows.

        Entries due at the engine's current time are processed in
        ``(t, phase, seq)`` order; at contested timestamps every due
        entry is requeued into the engine heap at its own ``(t, seq)``
        slot so it interleaves with unrelated same-instant traffic
        exactly as the per-message schedule's entries would (initial
        entries — seq < 0 — run in their arriving task's own
        continuation and are never requeued).  After the due work, if
        the engine has nothing else to run before our next entry (empty
        ready deque, no earlier engine heap entry), no other traffic
        can touch the NICs in between — so the walk keeps going inline
        at future timestamps instead of paying one engine callback per
        timestamp.  Rank exits reached while ahead of the engine clock
        are scheduled back at their waking entry's seq slot so they
        resume at their true time and position; everything still
        pending when the advance stops gets one wake at the next
        entry's timestamp.
        """
        eng = self.eng
        now = eng.now
        heap = self.heap
        eheap = eng._heap
        eready = eng._ready
        fs = self.first_seq
        cur = now
        while heap:
            t1 = heap[0][0]
            if t1 > cur:
                # every entry at cur is consumed, and pushes are always
                # strictly in the future: cur's first-seq key is dead
                fs.pop(cur, None)
                # nothing due now — advance inline only while the
                # engine has nothing to run first: any ready-deque
                # entry, or an engine heap entry at or before t1,
                # could issue traffic that must interleave with ours
                if eready or (eheap and eheap[0][0] <= t1):
                    break
                cur = t1
            entry = heappop(heap)
            t, _phase, seq, code, arg, drv = entry
            if (seq >= 0 and cur == now
                    and (eready or (eheap and eheap[0][0] <= now))):
                # contested current instant: route the entry through
                # the engine scheduler at its own (t, seq) slot
                self.parked += 1
                if code == 0:
                    eng._sched_at_seq(t, seq, _K_CALL1, self._parked_fire,
                                      (drv, arg, seq))
                else:
                    eng._sched_at_seq(t, seq, _K_CALL1, self._parked_heap,
                                      entry)
                continue
            if code == 0:
                # initial entries (seq < 0) and uncontested resumptions
                # run in the current continuation
                self._casc(drv, arg, t, seq, seq < 0)
                continue
            self._heap_entry(t, code, arg, drv)
        if not heap:
            fs.clear()
        if heap:
            t0 = heap[0][0]
            if t0 < self.wake_at:
                s0 = fs.get(t0, heap[0][2])
                self.wake_at = t0
                self.wake_seq = s0
                eng._sched_at_seq(t0, s0 - 0.5, _K_CALL1, self._wake, None)
        elif self.unfinished and not self.parked:
            raise SimulationError(
                f"macro replay stalled: {self.unfinished} fully-arrived "
                "round(s) never completed their schedule (walker bug)")


def _macro_site(comm: "Communicator", kind: str, value: Any, prog_for,
                results_for) -> Generator[Any, Any, Any]:
    """Park on the round's site; the walker replays the schedule.

    ``prog_for(site, r)`` builds rank r's step program at its arrival
    (it may only touch rank r's own payload — other ranks' sizes go
    through lazy ``nb`` callables).  ``results_for(site)`` runs once on
    the last-arriving rank, before any exit can fire (every exit
    strictly follows the last arrival), and returns the per-rank
    results the walker hands to :meth:`Event.fire`.
    """
    desc = comm.desc
    key = comm._op_seq
    site = desc.sites.get(key)
    if site is None:
        site = _MacroSite(kind)
        desc.sites[key] = site
    elif site.kind != kind:
        raise MPIError(
            f"collective call mismatch on communicator {desc.ctx}: "
            f"rank {comm.rank} called {kind!r} while another rank "
            f"called {site.kind!r} at the same point (op #{key}) — "
            "all ranks must issue collectives in the same order"
        )
    r = comm.rank
    eng = comm._engine
    site.values[r] = value
    site.arrivals[r] = eng.now
    site.order.append(r)
    ev = Event(eng, ("macro", desc.ctx, key, r))
    site.events[r] = ev
    drv = site.driver
    if drv is None:
        world = comm.world
        core = getattr(world, "_macro_walker", None)
        if core is None:
            core = world._macro_walker = _Walker(world)
        drv = site.driver = _Driver(comm, site, core)
    drv.push_initial(r, prog_for(site, r))
    if len(site.order) == comm.size:
        del desc.sites[key]
        drv.results = results_for(site)
        drv.core.unfinished += 1
        perf_counters.macro_rounds += 1
    drv.core.pump()
    result = yield WaitEvent(ev)
    return result


# ----------------------------------------------------------------------
# per-kind programs and results
# ----------------------------------------------------------------------
def _data_of(v: Any) -> Any:
    return v.data if isinstance(v, Payload) else v


def _block_size(v: Any, nbytes: Optional[int]) -> int:
    if isinstance(v, Payload):
        return v.nbytes
    return nbytes if nbytes is not None else sizeof(v)


def barrier(comm: "Communicator") -> Generator[Any, Any, None]:
    if comm.size == 1 or not _usable(comm):
        return (yield from detailed.barrier(comm))
    p = comm.size

    def prog_for(site: _MacroSite, r: int) -> list:
        steps = []
        k = 0
        dist = 1
        while dist < p:
            steps.append(((r + dist) % p, k, 0, (r - dist) % p))
            dist <<= 1
            k += 1
        return steps

    return (yield from _macro_site(comm, "barrier", None, prog_for,
                                   lambda site: [None] * p))


def allgather(comm: "Communicator", value: Any,
              nbytes: Optional[int]) -> Generator[Any, Any, list]:
    if comm.size == 1 or not _usable(comm):
        return (yield from detailed.allgather(comm, value, nbytes))
    p = comm.size

    def size_of(site: _MacroSite, j: int) -> int:
        # forwarded block sizes are needed by every rank along the
        # ring: memoize per origin on the site
        sz = site.extra.get(j)
        if sz is None:
            sz = site.extra[j] = _block_size(site.values[j], nbytes)
        return sz

    def prog_for(site: _MacroSite, r: int) -> list:
        right = (r + 1) % p
        left = (r - 1) % p
        steps = []
        for i in range(p - 1):
            j = (r - i) % p
            if i == 0:
                nb = size_of(site, r)
            else:
                # forwarded block: its origin's payload is known by the
                # time the block has propagated here
                nb = (lambda j=j: size_of(site, j))
            steps.append((right, i, nb, left))
        return steps

    def results_for(site: _MacroSite) -> list:
        vals = site.values
        base = [_data_of(vals[j]) for j in range(p)]
        results = []
        for r in range(p):
            out = list(base)
            out[r] = vals[r]
            results.append(out)
        return results

    return (yield from _macro_site(comm, "allgather", value, prog_for,
                                   results_for))


def alltoall(comm: "Communicator", values: list,
             nbytes_each: Optional[int]) -> Generator[Any, Any, list]:
    if comm.size == 1 or not _usable(comm):
        return (yield from detailed.alltoall(comm, values, nbytes_each))
    p = comm.size

    def prog_for(site: _MacroSite, r: int) -> list:
        v = site.values[r]
        # index plain ints, not numpy scalars, exactly like the detailed
        # pairwise loop; np.asarray below restores dtype
        vr = (v.tolist() if isinstance(v, np.ndarray) and v.ndim == 1
              else v)
        site.extra[r] = vr
        steps = []
        for i in range(1, p):
            dst = (r + i) % p
            nb = (nbytes_each if nbytes_each is not None
                  else sizeof(vr[dst]))
            steps.append((dst, i - 1, nb, (r - i) % p))
        return steps

    def results_for(site: _MacroSite) -> list:
        vals = site.extra
        results = []
        for r in range(p):
            out = [vals[s][r] for s in range(p)]
            if isinstance(site.values[r], np.ndarray):
                out = np.asarray(out, dtype=site.values[r].dtype)
            results.append(out)
        return results

    return (yield from _macro_site(comm, "alltoall", values, prog_for,
                                   results_for))


def reduce_scatter_block(comm: "Communicator", values: list, op: ReduceOp,
                         nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    if comm.size == 1 or not _usable(comm):
        return (yield from detailed.reduce_scatter_block(
            comm, values, op, nbytes))
    p = comm.size

    def prog_for(site: _MacroSite, r: int) -> list:
        vr = site.values[r]
        steps = []
        for i in range(1, p):
            dst = (r + i) % p
            nb = nbytes if nbytes is not None else sizeof(vr[dst])
            steps.append((dst, i - 1, nb, (r - i) % p))
        return steps

    def results_for(site: _MacroSite) -> list:
        vals = site.values
        results = []
        for r in range(p):
            acc = vals[r][r]
            for i in range(1, p):
                acc = op(acc, vals[(r - i) % p][r])
            results.append(acc)
        return results

    return (yield from _macro_site(
        comm, "reduce_scatter_block", values, prog_for, results_for))


def allreduce(comm: "Communicator", value: Any, op: ReduceOp,
              nbytes: Optional[int]) -> Generator[Any, Any, Any]:
    if comm.size == 1 or not _usable(comm):
        return (yield from detailed.allreduce(comm, value, op, nbytes))
    p = comm.size
    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    rem = p - pof2
    nrounds = pof2.bit_length() - 1

    def nb_of(v: Any) -> int:
        return _block_size(v, nbytes)

    def acc(site: _MacroSite, q: int, j: int) -> Any:
        """Core rank q's partial reduction after j doubling rounds.

        j = 0 is the post-fold value.  Memoized on the site; every
        operand has causally arrived by the time a step's size thunk
        (or the last arrival's results pass) asks for it.
        """
        memo = site.extra
        k = (q, j)
        if k in memo:
            return memo[k]
        if j == 0:
            v = site.values[q]
            if q < rem:
                v = op(v, _data_of(site.values[q + pof2]))
        else:
            mask = 1 << (j - 1)
            mine = acc(site, q, j - 1)
            theirs = acc(site, q ^ mask, j - 1)
            v = op(mine, _data_of(theirs))
        memo[k] = v
        return v

    def prog_for(site: _MacroSite, r: int) -> list:
        if r >= pof2:
            # folder: push own value into the core, wait for the result
            return [(r - pof2, 0, nb_of(site.values[r]), -1),
                    (-1, 0, 0, r - pof2)]
        steps = []
        if r < rem:
            steps.append((-1, 0, 0, r + pof2))
        for j in range(nrounds):
            partner = r ^ (1 << j)
            dstep = (1 if partner < rem else 0) + j
            steps.append((partner, dstep,
                          (lambda q=r, j=j: nb_of(acc(site, q, j))),
                          partner))
        if r < rem:
            steps.append((r + pof2, 1,
                          (lambda q=r: nb_of(acc(site, q, nrounds))), -1))
        return steps

    def results_for(site: _MacroSite) -> list:
        return [acc(site, r, nrounds) if r < pof2
                else _data_of(acc(site, r - pof2, nrounds))
                for r in range(p)]

    return (yield from _macro_site(comm, "allreduce", value, prog_for,
                                   results_for))
