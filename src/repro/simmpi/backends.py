"""Pluggable collective-fidelity backends.

A :class:`CollectiveBackend` decides, per collective invocation, which
execution path runs: the ``analytic`` LogP site model (cheap — one
synchronization event per collective) or the ``detailed`` message-schedule
model (faithful — every tree/ring/pairwise message is simulated).  The
``hybrid`` backend picks a fidelity *per collective category* (the same
'sync' / 'exchange' / 'io' labels the time breakdown uses), so a sweep can
run its synchronization collectives analytically while anything it cares
about stays detailed — the per-phase cost separation ParColl's ext2ph
breakdown is built on.

Implementations register themselves here (see
:mod:`repro.simmpi.analytic` and
:mod:`repro.simmpi.collectives_detailed`); call sites resolve them by
spec string only:

``"analytic"``
    every collective uses the LogP site model;
``"detailed"``
    every collective runs its message schedule;
``"hybrid"``
    per-category selection with the default table
    ``sync=analytic``, everything else ``detailed``;
``"hybrid:sync=analytic,exchange=detailed,io=detailed"``
    explicit per-category table; a ``default=<fidelity>`` entry sets the
    fidelity of categories not listed.

All ranks must run any given collective through the same fidelity — a
backend is world-global or installed symmetrically on every rank's handle
(``Communicator.with_backend``, the ``collective_mode`` I/O hint), exactly
like the MPI requirement that collectives match across ranks.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.errors import MPIError


class CollectiveBackend:
    """Chooses the execution fidelity of each collective invocation."""

    #: registry name of this backend (set by subclasses)
    name: str = "?"

    def fidelity(self, category: str, nbytes: Optional[int] = None,
                 comm=None) -> str:
        """Leaf fidelity ('analytic' / 'detailed') for one collective.

        ``category`` is the time-accounting category the call site charges
        the collective to ('sync', 'exchange', 'io', ...); ``nbytes`` is
        the caller-declared per-rank message size, or None when the call
        site sized the payload by introspection.  ``comm`` is the issuing
        communicator (or None from call sites that predate it) — scope
        backends dispatch on its (rank-symmetric) identity, e.g. world
        versus derived subgroup.  Implementations must return the same
        fidelity on every rank for one collective — dispatch only on
        these (rank-symmetric) arguments.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Canonical spec string that reconstructs this backend."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()!r}>"


#: name -> factory(option string after ':') -> backend instance
_REGISTRY: dict[str, Callable[[str], CollectiveBackend]] = {}
#: leaf fidelity names usable as hybrid per-category targets
_LEAF_FIDELITIES: set[str] = set()


def register_backend(name: str, factory: Callable[[str], CollectiveBackend],
                     leaf: bool = False) -> None:
    """Register a backend factory under ``name``.

    ``leaf`` marks the backend as a terminal fidelity that composite
    backends (hybrid) may select per category.
    """
    _REGISTRY[name] = factory
    if leaf:
        _LEAF_FIDELITIES.add(name)


def _ensure_builtins() -> None:
    """Import the fidelity modules so their registrations run."""
    import repro.simmpi.analytic  # noqa: F401  (registers 'analytic')
    import repro.simmpi.collectives_detailed  # noqa: F401  ('detailed')
    import repro.simmpi.collectives_macro  # noqa: F401  ('macro')


def available_backends() -> tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def leaf_fidelities() -> tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_LEAF_FIDELITIES))


def resolve_backend(spec: Union[str, CollectiveBackend]) -> CollectiveBackend:
    """Turn a spec string (or a ready backend) into a backend instance."""
    if isinstance(spec, CollectiveBackend):
        return spec
    if not isinstance(spec, str):
        raise MPIError(
            f"collective backend spec must be a string or a "
            f"CollectiveBackend, got {type(spec).__name__}"
        )
    _ensure_builtins()
    name, _, options = spec.partition(":")
    factory = _REGISTRY.get(name)
    if factory is None:
        raise MPIError(
            f"unknown collective backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return factory(options)


def _reject_options(name: str, options: str) -> None:
    if options:
        raise MPIError(
            f"collective backend {name!r} takes no options, "
            f"got {options!r}"
        )


class _LeafBackend(CollectiveBackend):
    """A single-fidelity backend: every category runs the same path."""

    def fidelity(self, category: str, nbytes: Optional[int] = None,
                 comm=None) -> str:
        return self.name

    @classmethod
    def from_spec(cls, options: str) -> "_LeafBackend":
        _reject_options(cls.name, options)
        return cls()


class HybridBackend(CollectiveBackend):
    """Per-category fidelity selection.

    ``table`` maps category names to leaf fidelities; ``default`` covers
    categories not in the table.  The default configuration —
    ``sync`` analytic, everything else detailed — targets the common
    large-sweep shape: the per-round count exchanges and barriers that
    form the collective wall are modeled analytically, while collectives
    a workload explicitly charges elsewhere keep full message fidelity.
    """

    name = "hybrid"
    DEFAULT_TABLE = {"sync": "analytic"}
    DEFAULT_FIDELITY = "detailed"

    def __init__(self, table: Optional[dict[str, str]] = None,
                 default: Optional[str] = None):
        _ensure_builtins()
        self._table = dict(self.DEFAULT_TABLE if table is None else table)
        self._default = self.DEFAULT_FIDELITY if default is None else default
        for cat, fid in [*self._table.items(), ("default", self._default)]:
            if fid not in _LEAF_FIDELITIES:
                raise MPIError(
                    f"hybrid fidelity for {cat!r} must be one of "
                    f"{leaf_fidelities()}, got {fid!r}"
                )

    def fidelity(self, category: str, nbytes: Optional[int] = None,
                 comm=None) -> str:
        return self._table.get(category, self._default)

    def describe(self) -> str:
        parts = [f"{c}={f}" for c, f in sorted(self._table.items())]
        parts.append(f"default={self._default}")
        return f"{self.name}:{','.join(parts)}"

    @classmethod
    def from_spec(cls, options: str) -> "HybridBackend":
        """Parse ``sync=analytic,exchange=detailed,default=detailed``."""
        if not options:
            return cls()
        table: dict[str, str] = {}
        default = None
        for item in options.split(","):
            key, sep, fid = item.partition("=")
            key, fid = key.strip(), fid.strip()
            if not sep or not key or not fid:
                raise MPIError(
                    f"malformed hybrid backend entry {item!r}; expected "
                    "'category=fidelity' (e.g. 'hybrid:sync=analytic,"
                    "exchange=detailed')"
                )
            if key == "default":
                default = fid
            else:
                table[key] = fid
        return cls(table=table, default=default)


register_backend(HybridBackend.name, HybridBackend.from_spec)


class SizeThresholdBackend(CollectiveBackend):
    """Size-dependent fidelity: small collectives detailed, large analytic.

    The ROADMAP's observation: detailed message schedules matter most for
    small collectives, where per-message overheads and tree shape
    dominate, while large transfers are bandwidth-bound and the analytic
    LogP cost converges to the schedule's answer — so a sweep can keep
    fidelity where it pays and speed where it doesn't.
    ``sizethreshold:<bytes>`` runs the ``below`` fidelity (default
    detailed) when the declared size is under ``<bytes>`` and the
    ``above`` fidelity (default analytic) at or over it.  Collectives
    with no declared size (None) take the ``below`` path: introspected
    payloads are exactly the small control-plane messages the detailed
    model exists for, and rank-local sizing must not steer dispatch.

    ``benchmarks/bench_sizethreshold_calibration.py`` picks ``<bytes>``
    empirically by comparing analytic and detailed schedules across
    sizes.
    """

    name = "sizethreshold"
    DEFAULT_THRESHOLD = 64 << 10

    def __init__(self, threshold: int = DEFAULT_THRESHOLD,
                 below: str = "detailed", above: str = "analytic"):
        _ensure_builtins()
        if threshold <= 0:
            raise MPIError(
                f"sizethreshold: threshold must be > 0 bytes, got {threshold}")
        for role, fid in (("below", below), ("above", above)):
            if fid not in _LEAF_FIDELITIES:
                raise MPIError(
                    f"sizethreshold {role!r} fidelity must be one of "
                    f"{leaf_fidelities()}, got {fid!r}"
                )
        self.threshold = int(threshold)
        self.below = below
        self.above = above

    def fidelity(self, category: str, nbytes: Optional[int] = None,
                 comm=None) -> str:
        if nbytes is None or nbytes < self.threshold:
            return self.below
        return self.above

    def describe(self) -> str:
        out = f"{self.name}:{self.threshold}"
        if self.below != "detailed":
            out += f",below={self.below}"
        if self.above != "analytic":
            out += f",above={self.above}"
        return out

    @classmethod
    def from_spec(cls, options: str) -> "SizeThresholdBackend":
        """Parse ``<bytes>[,below=<fid>][,above=<fid>]``."""
        if not options:
            return cls()
        parts = options.split(",")
        kwargs: dict = {}
        head = parts[0].strip()
        rest = parts[1:]
        if head and "=" not in head:
            try:
                kwargs["threshold"] = int(head)
            except ValueError:
                raise MPIError(
                    f"sizethreshold: expected an integer byte threshold, "
                    f"got {head!r}"
                ) from None
        elif head:
            rest = parts
        for item in rest:
            key, sep, val = item.partition("=")
            key, val = key.strip(), val.strip()
            if not sep or key not in ("below", "above") or not val:
                raise MPIError(
                    f"malformed sizethreshold option {item!r}; expected "
                    "'sizethreshold:<bytes>[,below=<fidelity>]"
                    "[,above=<fidelity>]'"
                )
            kwargs[key] = val
        return cls(**kwargs)


register_backend(SizeThresholdBackend.name, SizeThresholdBackend.from_spec)


class ScopedBackend(CollectiveBackend):
    """Communicator-scope fidelity: world collectives vs everything else.

    ``scoped:world=analytic,default=macro`` runs collectives issued on
    the *world* communicator (context 0 — the global barriers, extent
    allgathers and splits that every rank joins) at one fidelity and
    collectives on derived communicators (FA subgroups, node groups) at
    another.  This is the shape the sharded DES needs: with world-scope
    collectives analytic, cross-shard interaction reduces to pure
    timestamp merging, while subgroup traffic — which never crosses a
    shard boundary under ParColl's partition — keeps full message (or
    macro) fidelity.  Call sites that cannot name their communicator
    (``comm=None``) take the ``default`` path.
    """

    name = "scoped"
    DEFAULT_WORLD = "analytic"
    DEFAULT_SCOPED = "macro"

    def __init__(self, world: Optional[str] = None,
                 default: Optional[str] = None):
        _ensure_builtins()
        self._world = self.DEFAULT_WORLD if world is None else world
        self._default = self.DEFAULT_SCOPED if default is None else default
        for scope, fid in (("world", self._world),
                           ("default", self._default)):
            if fid not in _LEAF_FIDELITIES:
                raise MPIError(
                    f"scoped fidelity for {scope!r} must be one of "
                    f"{leaf_fidelities()}, got {fid!r}"
                )

    def fidelity(self, category: str, nbytes: Optional[int] = None,
                 comm=None) -> str:
        if comm is not None and comm.desc.ctx == 0:
            return self._world
        return self._default

    def describe(self) -> str:
        return f"{self.name}:world={self._world},default={self._default}"

    @classmethod
    def from_spec(cls, options: str) -> "ScopedBackend":
        """Parse ``world=<fidelity>,default=<fidelity>`` (both optional)."""
        if not options:
            return cls()
        kwargs: dict = {}
        for item in options.split(","):
            key, sep, fid = item.partition("=")
            key, fid = key.strip(), fid.strip()
            if not sep or key not in ("world", "default") or not fid:
                raise MPIError(
                    f"malformed scoped backend entry {item!r}; expected "
                    "'scoped:world=<fidelity>,default=<fidelity>'"
                )
            kwargs[key] = fid
        return cls(**kwargs)


register_backend(ScopedBackend.name, ScopedBackend.from_spec)
