"""The simulated MPI world: processes, delivery, communicators.

A :class:`World` wires one :class:`Proc` per MPI rank to the machine's
network model and hands each a ``COMM_WORLD`` :class:`Communicator`.
Rank programs are generator functions ``program(comm) -> generator``;
:meth:`World.launch` spawns one per rank and runs the engine to
completion.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.cluster.machine import Machine, MachineConfig
from repro.cluster.network import NetworkModel, NetworkParams
from repro.cluster.topology import Torus3D
from repro.errors import MPIError, ParCollError, TaskFailedError
from repro.perf import perf_counters
from repro.sim.effects import Sleep, WaitEvent
from repro.sim.engine import _K_CALL1, _K_FIRE, Engine, Event
from repro.simmpi import analytic, collectives_detailed as detailed
from repro.simmpi import collectives_macro as macro
from repro.simmpi.backends import CollectiveBackend, resolve_backend
from repro.simmpi.p2p import (ANY_SOURCE, ANY_TAG, Mailbox, Message,
                              PostedRecv, Request, RTS_BYTES, Status, waitall)
from repro.simmpi.payload import Payload, sizeof
from repro.simmpi.reduce_ops import SUM, ReduceOp
from repro.simmpi.timers import TimeBreakdown


class Proc:
    """Per-rank state: mailbox, node placement, time accounting."""

    __slots__ = ("world", "rank", "node", "mailbox", "breakdown", "comm_world",
                 "cpu_profile")

    def __init__(self, world: "World", rank: int):
        self.world = world
        self.rank = rank
        self.node = world.machine.node_of_rank(rank)
        self.mailbox = Mailbox()
        self.breakdown = TimeBreakdown()
        self.comm_world: Communicator = None  # type: ignore[assignment]
        #: ServiceProfile from a NodeSlowdown fault, or None (nominal CPU)
        self.cpu_profile = None

    def compute(self, seconds: float) -> Generator[Any, Any, None]:
        """Spend ``seconds`` of local CPU time (charged to 'compute')."""
        if self.cpu_profile is not None:
            seconds = self.cpu_profile.finish_time(
                self.world.engine.now, seconds) - self.world.engine.now
        yield Sleep(seconds)
        self.breakdown.add("compute", seconds)


class CommDescriptor:
    """State shared by every rank's handle on one communicator."""

    __slots__ = ("ctx", "members", "rank_of", "sites", "fidelities",
                 "node_cache")

    def __init__(self, ctx: int, members: list[int]):
        self.ctx = ctx
        #: world ranks of the group, in group-rank order
        self.members = list(members)
        self.rank_of = {wr: i for i, wr in enumerate(self.members)}
        #: analytic collective sites keyed by op sequence number
        self.sites: dict[int, "_Site"] = {}
        #: per-op fidelity ledger for the backend symmetry check:
        #: op seq -> [fidelity, category, first group rank, arrivals]
        self.fidelities: dict[int, list] = {}
        #: node -> (leader, members) cache for cb_node_consolidation
        self.node_cache: dict[int, tuple[int, list[int]]] = {}


class _Site:
    """Synchronization site for one analytic collective call."""

    __slots__ = ("arrivals", "values", "event", "kind")

    def __init__(self, engine: Engine, name: str, kind: str):
        self.arrivals: dict[int, float] = {}
        self.values: dict[int, Any] = {}
        self.event = Event(engine, name)
        #: operation kind of the first arrival — mismatches mean the
        #: application called collectives in different orders per rank
        self.kind = kind


class World:
    """All ranks plus shared network/communicator state."""

    def __init__(self, machine: Machine | MachineConfig,
                 net_params: Optional[NetworkParams] = None,
                 topology: Optional[Torus3D] = None,
                 collective_mode: str | CollectiveBackend = "analytic",
                 engine: Optional[Engine] = None,
                 faults: Optional["object"] = None):
        if isinstance(machine, MachineConfig):
            machine = Machine(machine)
        self.engine = engine or Engine()
        self.machine = machine
        self.network = NetworkModel(self.engine, machine, net_params, topology)
        #: hot-path cache (NetworkParams is frozen for the world's lifetime)
        self._eager_threshold = self.network.params.eager_threshold
        #: default backend for every communicator without an override
        self.backend = resolve_backend(collective_mode)
        #: optional FaultInjector applying NodeSlowdown events here
        self.faults = faults
        self.nprocs = machine.nprocs
        self._msg_seq = 0
        self._next_ctx = 1
        #: registry of split-derived descriptors keyed (parent ctx, seq, color)
        self._split_registry: dict[tuple, CommDescriptor] = {}
        self.procs = [Proc(self, r) for r in range(self.nprocs)]
        if faults is not None:
            # a slow node is slow end to end: CPU and both NIC directions
            for n in range(machine.nnodes):
                prof = faults.node_profile(n)
                if prof is not None:
                    self.network.tx[n].profile = prof
                    self.network.rx[n].profile = prof
            for proc in self.procs:
                proc.cpu_profile = faults.node_profile(proc.node)
        world_desc = CommDescriptor(ctx=0, members=list(range(self.nprocs)))
        for proc in self.procs:
            proc.comm_world = Communicator(proc, world_desc)

    # ------------------------------------------------------------------
    # message transport
    # ------------------------------------------------------------------
    def send_message(self, src: int, dst: int, ctx: int, tag: int,
                     payload: Payload) -> Request:
        """Start a message; returns the sender-completion request."""
        return Request(self.send_message_ev(src, dst, ctx, tag, payload))

    def send_message_ev(self, src: int, dst: int, ctx: int, tag: int,
                        payload: Payload) -> Event:
        """Like :meth:`send_message` but returns the bare completion event
        (internal hot path: skips the Request wrapper allocation)."""
        if not 0 <= dst < self.nprocs:
            raise MPIError(f"destination rank {dst} out of range")
        eng = self.engine
        self._msg_seq += 1
        seq = self._msg_seq
        send_event = Event(eng, ("send", seq, src, dst))
        nbytes = payload.nbytes
        if nbytes <= self._eager_threshold:
            free, arrival = self.network.transfer(src, dst, nbytes)
            msg = Message(ctx, src, dst, tag, payload, False, None, seq)
            # inlined engine._sched for the two per-message entries;
            # transfer() never returns a time before now
            now = eng.now
            if free == now:
                eng.heap_bypasses += 1
                eng._ready.append((_K_FIRE, send_event, None))
            else:
                eng._seq += 1
                eng.heap_pushes += 1
                heappush(eng._heap, (free, eng._seq, _K_FIRE, send_event, None))
            if arrival == now:
                eng.heap_bypasses += 1
                eng._ready.append((_K_CALL1, self._deliver, msg))
            else:
                eng._seq += 1
                eng.heap_pushes += 1
                heappush(eng._heap,
                         (arrival, eng._seq, _K_CALL1, self._deliver, msg))
        else:
            _, hdr_arrival = self.network.transfer(src, dst, RTS_BYTES)
            msg = Message(ctx, src, dst, tag, payload, True, send_event, seq)
            eng._sched(hdr_arrival, _K_CALL1, self._deliver, msg)
        return send_event

    def send_batch(self, src: int,
                   entries: list[tuple[int, int, int, Payload]]
                   ) -> list[Request]:
        """Start many messages from one rank at once; returns requests.

        ``entries`` are ``(dst, ctx, tag, payload)`` tuples in issue
        order (world ranks).  Runs of consecutive eager-sized messages
        coalesce: their NIC reservations go through one vectorized
        :meth:`NetworkModel.transfer_batch`, one shared completion event
        fires when the last byte leaves the sender, and the deliveries
        drain through one rolling scheduler entry
        (:meth:`Engine.schedule_batch`) in arrival order.  Rendezvous
        payloads keep the per-message protocol — their schedule depends
        on receiver matching, which is not known up-front.

        Waiting on all returned requests completes at the same virtual
        time as issuing ``len(entries)`` :meth:`send_message` calls in
        the same order; callers must not depend on *individual* eager
        request completions (they share one event).  Intended for
        macro-coalesced exchange rounds, where per-round message sets
        are static; the default per-message fidelities never call it.
        """
        eng = self.engine
        net = self.network
        nprocs = self.nprocs
        requests: list[Request] = []
        n = len(entries)
        i = 0
        coalesced = 0
        while i < n:
            dst = entries[i][0]
            if not 0 <= dst < nprocs:
                raise MPIError(f"destination rank {dst} out of range")
            if entries[i][3].nbytes > self._eager_threshold:
                dst, ctx, tag, payload = entries[i]
                requests.append(
                    Request(self.send_message_ev(src, dst, ctx, tag,
                                                 payload)))
                i += 1
                continue
            j = i
            while (j < n and entries[j][3].nbytes <= self._eager_threshold):
                if not 0 <= entries[j][0] < nprocs:
                    raise MPIError(
                        f"destination rank {entries[j][0]} out of range")
                j += 1
            run = entries[i:j]
            frees, arrivals = net.transfer_batch(
                src, [e[0] for e in run], [e[3].nbytes for e in run])
            self._msg_seq += 1
            ev = Event(eng, ("sendbatch", self._msg_seq, src))
            msgs = []
            for dst, ctx, tag, payload in run:
                self._msg_seq += 1
                msgs.append(Message(ctx, src, dst, tag, payload, False,
                                    None, self._msg_seq))
            eng._sched(float(frees.max()), _K_FIRE, ev, None)
            order = np.argsort(arrivals, kind="stable")
            eng.schedule_batch(
                [(float(arrivals[k]), self._deliver, msgs[k])
                 for k in order])
            requests.append(Request(ev))
            coalesced += len(run)
            i = j
        if coalesced:
            perf_counters.macro_rounds += 1
            perf_counters.messages_coalesced += coalesced
        return requests

    def post_recv(self, dst: int, ctx: int, src: int, tag: int) -> Request:
        """Post a receive on rank ``dst``; request value is (payload, status)."""
        return Request(self.post_recv_ev(dst, ctx, src, tag))

    def post_recv_ev(self, dst: int, ctx: int, src: int, tag: int) -> Event:
        """Like :meth:`post_recv` but returns the bare completion event."""
        self._msg_seq += 1
        seq = self._msg_seq
        event = Event(self.engine, ("recv", seq, "at", dst, "from", src,
                                    "tag", tag))
        mbox = self.procs[dst].mailbox
        msg = mbox.match_unexpected_key(ctx, src, tag)
        if msg is None:
            mbox.add_posted(PostedRecv(ctx, src, tag, event, seq))
        elif not msg.rendezvous:
            # the event is fresh (no waiters yet), so firing it is a
            # plain value store
            event._value = (msg.payload, msg)
        else:
            self._rendezvous_cts(msg, event)
        return event

    def _deliver(self, msg: Message) -> None:
        mbox = self.procs[msg.dst].mailbox
        pr = mbox.match_posted(msg)
        if pr is not None:
            if not msg.rendezvous:
                pr.event.fire((msg.payload, msg))
            else:
                self._rendezvous_cts(msg, pr.event)
        else:
            mbox.add_unexpected(msg)

    def _complete_match(self, msg: Message, pr: PostedRecv) -> None:
        if not msg.rendezvous:
            pr.event.fire((msg.payload, msg))
            return
        self._rendezvous_cts(msg, pr.event)

    def _rendezvous_cts(self, msg: Message, event: Event) -> None:
        """Rendezvous match: clear-to-send travels back, then data moves."""
        eng = self.engine
        cts_latency = self.network.wire_latency(
            self.machine.node_of_rank(msg.dst), self.machine.node_of_rank(msg.src)
        ) + self.network.params.send_overhead
        eng._sched(eng.now + cts_latency, _K_CALL1, self._start_transfer,
                   (msg, event))

    def _start_transfer(self, args: tuple) -> None:
        """Rendezvous data phase: runs after the clear-to-send arrives."""
        msg, event = args
        free, arrival = self.network.transfer(msg.src, msg.dst,
                                              msg.payload.nbytes)
        msg.send_event.fire_at(free)
        event.fire_at(arrival, (msg.payload, msg))

    # ------------------------------------------------------------------
    # communicator derivation
    # ------------------------------------------------------------------
    def derive_comm(self, parent: CommDescriptor, split_seq: int, color: Any,
                    members: list[int]) -> CommDescriptor:
        key = (parent.ctx, split_seq, color)
        desc = self._split_registry.get(key)
        if desc is None:
            desc = CommDescriptor(ctx=self._next_ctx, members=members)
            self._next_ctx += 1
            self._split_registry[key] = desc
        return desc

    # ------------------------------------------------------------------
    # program execution
    # ------------------------------------------------------------------
    def launch(self, program: Callable[["Communicator"], Generator],
               ranks: Optional[list[int]] = None) -> list[Any]:
        """Run ``program(comm_world)`` on every rank; returns per-rank results."""
        ranks = list(range(self.nprocs)) if ranks is None else ranks
        tasks = [
            self.engine.spawn(program(self.procs[r].comm_world),
                              name=("rank", r))
            for r in ranks
        ]
        try:
            self.engine.run()
        except TaskFailedError as exc:
            raise exc.original from exc
        out = []
        for t in tasks:
            if t.error is not None:
                raise t.error
            out.append(t.result)
        return out

    @property
    def breakdowns(self) -> list[TimeBreakdown]:
        return [p.breakdown for p in self.procs]

    @property
    def collective_mode(self) -> str:
        """Canonical spec string of the world's default backend."""
        return self.backend.describe()


class Communicator:
    """One rank's handle on a process group (MPI communicator analog)."""

    def __init__(self, proc: Proc, desc: CommDescriptor):
        self.proc = proc
        self.desc = desc
        self.world = proc.world
        self._engine = proc.world.engine
        self._coll_ctx_val = -(desc.ctx + 1)
        self.rank = desc.rank_of[proc.rank]
        self.size = len(desc.members)
        # one-element boxes so handles derived via with_backend share the
        # operation sequencing (sites and collective tags stay unique)
        self._op_state = [0]
        self._split_state = [0]
        #: per-communicator backend override; None = the world's default
        self._backend: Optional[CollectiveBackend] = None

    # -- helpers --------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def _op_seq(self) -> int:
        return self._op_state[0]

    @property
    def backend(self) -> CollectiveBackend:
        return self._backend if self._backend is not None else self.world.backend

    def with_backend(self, backend: str | CollectiveBackend) -> "Communicator":
        """A handle on the same group whose collectives run through
        ``backend``.

        The derived handle shares all communicator state (context, sites,
        op sequencing) with the original, so the two may be used
        interchangeably — but every rank must run any given collective
        through the same fidelity, so install overrides symmetrically
        (e.g. from a collectively-agreed hint).
        """
        clone = type(self)(self.proc, self.desc)
        clone._op_state = self._op_state
        clone._split_state = self._split_state
        clone._backend = resolve_backend(backend)
        return clone

    @property
    def now(self) -> float:
        return self._engine.now

    def world_rank(self, group_rank: int) -> int:
        if not 0 <= group_rank < self.size:
            raise MPIError(
                f"rank {group_rank} out of range for communicator of size {self.size}"
            )
        return self.desc.members[group_rank]

    def _as_payload(self, obj: Any, nbytes: Optional[int]) -> Payload:
        if isinstance(obj, Payload):
            return obj
        return Payload.of(obj, nbytes)

    # -- point-to-point (raw: no time-category accounting) ---------------
    def isend(self, obj: Any, dest: int, tag: int = 0,
              nbytes: Optional[int] = None, _ctx: Optional[int] = None) -> Request:
        payload = self._as_payload(obj, nbytes)
        ctx = self.desc.ctx if _ctx is None else _ctx
        return self.world.send_message(self.proc.rank, self.world_rank(dest),
                                       ctx, tag, payload)

    def isend_batch(self, items: list[tuple[int, Any]],
                    tag: int = 0) -> list[Request]:
        """Batched :meth:`isend`: ``items`` are ``(dest, payload)`` pairs.

        Thin wrapper over :meth:`World.send_batch`; see its contract.
        Exchange rounds use this when the communicator's ``exchange``
        fidelity is ``macro`` — the round's sends coalesce into one
        vectorized NIC schedule instead of per-message events.
        """
        ctx = self.desc.ctx
        entries = [
            (self.world_rank(dest),
             ctx, tag, obj if isinstance(obj, Payload) else Payload.of(obj))
            for dest, obj in items
        ]
        return self.world.send_batch(self.proc.rank, entries)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              _ctx: Optional[int] = None) -> Request:
        ctx = self.desc.ctx if _ctx is None else _ctx
        src = source if source == ANY_SOURCE else self.world_rank(source)
        return self.world.post_recv(self.proc.rank, ctx, src, tag)

    # -- blocking wrappers with accounting --------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0,
             nbytes: Optional[int] = None,
             category: str = "exchange") -> Generator[Any, Any, None]:
        t0 = self.now
        req = self.isend(obj, dest, tag, nbytes)
        yield req.event
        self.proc.breakdown.add(category, self.now - t0)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             category: str = "exchange") -> Generator[Any, Any, Payload]:
        t0 = self.now
        req = self.irecv(source, tag)
        payload, _status = yield req.event
        self.proc.breakdown.add(category, self.now - t0)
        return payload

    def recv_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                    category: str = "exchange"
                    ) -> Generator[Any, Any, tuple[Payload, Status]]:
        t0 = self.now
        req = self.irecv(source, tag)
        payload, status = yield req.event
        self.proc.breakdown.add(category, self.now - t0)
        status = Status(self.desc.rank_of.get(status.source, status.source),
                        status.tag)
        return payload, status

    def wait(self, request: Request,
             category: str = "exchange") -> Generator[Any, Any, Any]:
        t0 = self.now
        value = yield request.event
        self.proc.breakdown.add(category, self.now - t0)
        return value

    def waitall(self, requests: list[Request],
                category: str = "exchange") -> Generator[Any, Any, list[Any]]:
        t0 = self.now
        values = yield from waitall(requests)
        self.proc.breakdown.add(category, self.now - t0)
        return values

    # -- internal p2p on the collective context ---------------------------
    @property
    def _coll_ctx(self) -> int:
        return self._coll_ctx_val

    def _coll_isend(self, obj: Any, dest: int, tag: int,
                    nbytes: Optional[int] = None) -> Event:
        """Internal send on the collective context; returns the bare
        completion event (yield it directly to wait)."""
        payload = obj if isinstance(obj, Payload) else Payload.of(obj, nbytes)
        # collective peers are computed mod size — no range check needed
        return self.world.send_message_ev(
            self.proc.rank, self.desc.members[dest], self._coll_ctx_val, tag,
            payload)

    def _coll_irecv(self, source: int, tag: int) -> Event:
        """Internal recv post on the collective context; the returned
        event fires with ``(payload, status)``."""
        return self.world.post_recv_ev(
            self.proc.rank, self._coll_ctx_val, self.desc.members[source], tag)

    def _coll_recv(self, source: int, tag: int) -> Generator[Any, Any, Payload]:
        payload, _ = yield self._coll_irecv(source, tag)
        return payload

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _charge(self, category: str, t0: float) -> None:
        self.proc.breakdown.add(category, self.now - t0)

    def _check_fidelity_symmetry(self, fid: str, category: str) -> None:
        """Record this rank's fidelity choice for the current op and
        raise if it diverges from what another rank already chose."""
        ledger = self.desc.fidelities
        key = self._op_seq
        entry = ledger.get(key)
        if entry is None:
            ledger[key] = [fid, category, self.rank, 1]
            return
        held_fid, held_cat, first_rank, arrivals = entry
        if fid != held_fid:
            raise ParCollError(
                f"collective backend divergence on communicator "
                f"{self.desc.ctx} at op #{key}: rank {self.rank} "
                f"(backend {self.backend.describe()!r}) selected "
                f"{fid!r} for category {category!r} while rank "
                f"{first_rank} selected {held_fid!r} for "
                f"{held_cat!r} — all ranks must run a collective "
                "through the same fidelity; install backend overrides "
                "symmetrically (Communicator.with_backend, the "
                "'collective_mode' hint)"
            )
        entry[3] = arrivals + 1
        if entry[3] == self.size:
            del ledger[key]  # complete: every rank agreed

    def _analytic_site(self, value: Any, combine: Callable[[dict[int, Any]], list],
                       cost: Callable[[dict[int, Any]], float],
                       kind: str = "generic") -> Generator[Any, Any, Any]:
        """Generic analytic collective: sync, combine, pay modeled cost."""
        desc = self.desc
        key = self._op_seq
        site = desc.sites.get(key)
        if site is None:
            site = _Site(self.engine, f"coll-ctx{desc.ctx}-op{key}", kind)
            desc.sites[key] = site
        elif site.kind != kind:
            raise MPIError(
                f"collective call mismatch on communicator {desc.ctx}: "
                f"rank {self.rank} called {kind!r} while another rank "
                f"called {site.kind!r} at the same point (op #{key}) — "
                "all ranks must issue collectives in the same order"
            )
        site.values[self.rank] = value
        site.arrivals[self.rank] = self.now
        if len(site.values) == self.size:
            results = combine(site.values)
            exit_time = max(site.arrivals.values()) + cost(site.values)
            del desc.sites[key]
            site.event.fire((exit_time, results))
        exit_time, results = yield WaitEvent(site.event)
        if exit_time > self.now:
            yield Sleep(exit_time - self.now)
        return results[self.rank]

    def _collective(self, category: str,
                    analytic_path: Callable[[], Generator],
                    detailed_path: Callable[[], Generator],
                    nbytes: Optional[int] = None,
                    macro_path: Optional[Callable[[], Generator]] = None
                    ) -> Generator[Any, Any, Any]:
        """Run one collective through the backend-selected path.

        The paths are thunks; only the chosen generator is ever
        constructed, so no dead execution path is allocated (and then
        closed) per call.

        Backend symmetry across ranks is enforced here, not merely
        documented: every rank records its per-call fidelity choice in
        the communicator's ledger (the same role the analytic site key /
        first detailed tag plays for call-order matching), so a
        rank-divergent backend spec — one rank's backend picking
        'analytic' where another picks 'detailed' for the same
        collective — raises a clear :class:`ParCollError` at the second
        arrival instead of deadlocking the message schedule against the
        synchronization site.

        ``nbytes`` is the *caller-declared* per-rank message size of the
        collective (None when the caller let payload introspection size
        it).  Size-aware backends dispatch on it; it must be the declared
        parameter verbatim — never a locally-computed ``sizeof`` — so
        every rank hands the backend the same number.

        ``macro_path`` is the coalesced closed-form replay of the
        detailed schedule; only the synchronizing collectives provide
        one (a rank may leave bcast/reduce/gather/scatter/scan before
        every rank has entered, which a site-based replay cannot model),
        so under the ``macro`` fidelity the rest fall back to the
        detailed path — a kind-based, rank-symmetric decision.
        """
        self._op_state[0] += 1
        t0 = self.now
        if self.size == 1:
            fid = "analytic"  # degenerate: immediate, no traffic either way
        else:
            fid = self.backend.fidelity(category, nbytes, comm=self)
            self._check_fidelity_symmetry(fid, category)
        if fid == "analytic":
            path = analytic_path
        elif fid == "detailed":
            path = detailed_path
        elif fid == "macro":
            path = macro_path if macro_path is not None else detailed_path
        else:
            raise MPIError(
                f"backend {self.backend.describe()!r} selected unknown "
                f"fidelity {fid!r} for category {category!r}; "
                f"expected one of ['analytic', 'detailed', 'macro']"
            )
        result = yield from path()
        self._charge(category, t0)
        return result

    def barrier(self, category: str = "sync") -> Generator[Any, Any, None]:
        params = self.world.network.params

        def a():
            return self._analytic_site(
                None,
                combine=lambda vals: [None] * self.size,
                cost=lambda vals: analytic.barrier_cost(params, self.size),
                kind="barrier",
            )

        return (yield from self._collective(
            category, a, lambda: detailed.barrier(self), nbytes=0,
            macro_path=lambda: macro.barrier(self)))

    def bcast(self, obj: Any, root: int = 0, nbytes: Optional[int] = None,
              category: str = "sync") -> Generator[Any, Any, Any]:
        params = self.world.network.params
        n = sizeof(obj) if (nbytes is None and self.rank == root) else (nbytes or 0)

        def combine(vals: dict[int, Any]) -> list:
            return [vals[root]] * self.size

        def cost(vals: dict[int, Any]) -> float:
            nb = nbytes if nbytes is not None else sizeof(vals[root])
            return analytic.bcast_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(obj if self.rank == root else None,
                                        combine, cost, kind="bcast"),
            lambda: detailed.bcast(self, obj, root, nbytes),
            nbytes=nbytes))

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0,
               nbytes: Optional[int] = None,
               category: str = "sync") -> Generator[Any, Any, Any]:
        params = self.world.network.params

        def combine(vals: dict[int, Any]) -> list:
            acc = op.reduce_all([vals[r] for r in range(self.size)])
            return [acc if r == root else None for r in range(self.size)]

        def cost(vals: dict[int, Any]) -> float:
            nb = nbytes if nbytes is not None else sizeof(vals[0])
            return analytic.reduce_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(value, combine, cost, kind="reduce"),
            lambda: detailed.reduce(self, value, op, root, nbytes),
            nbytes=nbytes))

    def allreduce(self, value: Any, op: ReduceOp = SUM,
                  nbytes: Optional[int] = None,
                  category: str = "sync") -> Generator[Any, Any, Any]:
        params = self.world.network.params

        def combine(vals: dict[int, Any]) -> list:
            acc = op.reduce_all([vals[r] for r in range(self.size)])
            return [acc] * self.size

        def cost(vals: dict[int, Any]) -> float:
            nb = nbytes if nbytes is not None else sizeof(vals[0])
            return analytic.allreduce_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(value, combine, cost,
                                        kind="allreduce"),
            lambda: detailed.allreduce(self, value, op, nbytes),
            nbytes=nbytes,
            macro_path=lambda: macro.allreduce(self, value, op, nbytes)))

    def gather(self, value: Any, root: int = 0, nbytes: Optional[int] = None,
               category: str = "sync") -> Generator[Any, Any, Optional[list]]:
        params = self.world.network.params

        def combine(vals: dict[int, Any]) -> list:
            full = [vals[r] for r in range(self.size)]
            return [full if r == root else None for r in range(self.size)]

        def cost(vals: dict[int, Any]) -> float:
            nb = nbytes if nbytes is not None else max(sizeof(v) for v in vals.values())
            return analytic.gather_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(value, combine, cost, kind="gather"),
            lambda: detailed.gather(self, value, root, nbytes),
            nbytes=nbytes))

    def allgather(self, value: Any, nbytes: Optional[int] = None,
                  category: str = "sync") -> Generator[Any, Any, list]:
        # the combine/cost closures live inside the analytic thunk so the
        # detailed path never pays for building them
        def analytic_site():
            params = self.world.network.params

            def combine(vals: dict[int, Any]) -> list:
                full = [vals[r] for r in range(self.size)]
                return [full] * self.size

            def cost(vals: dict[int, Any]) -> float:
                if nbytes is not None:
                    return analytic.allgather_cost(params, self.size, nbytes)
                total = sum(sizeof(v) for v in vals.values())
                own = sizeof(vals[0])
                return analytic.allgatherv_cost(params, self.size, total, own)

            return self._analytic_site(value, combine, cost, kind="allgather")

        return (yield from self._collective(
            category,
            analytic_site,
            lambda: detailed.allgather(self, value, nbytes),
            nbytes=nbytes,
            macro_path=lambda: macro.allgather(self, value, nbytes)))

    def alltoall(self, values: list, nbytes_each: Optional[int] = None,
                 category: str = "sync") -> Generator[Any, Any, list]:
        if len(values) != self.size:
            raise MPIError(
                f"alltoall needs {self.size} values, got {len(values)}"
            )
        def analytic_site():
            params = self.world.network.params

            def combine(vals: dict[int, list]) -> list:
                if all(isinstance(v, np.ndarray) for v in vals.values()):
                    # fast path for count vectors: transpose via numpy
                    mat = np.stack([vals[src] for src in range(self.size)])
                    return [mat[:, dst] for dst in range(self.size)]
                return [[vals[src][dst] for src in range(self.size)]
                        for dst in range(self.size)]

            def cost(vals: dict[int, list]) -> float:
                if nbytes_each is not None:
                    return analytic.alltoall_cost(params, self.size,
                                                  nbytes_each)
                max_send = max(sum(sizeof(x) for x in v)
                               for v in vals.values())
                return analytic.alltoallv_cost(params, self.size, max_send,
                                               max_send)

            return self._analytic_site(values, combine, cost, kind="alltoall")

        return (yield from self._collective(
            category,
            analytic_site,
            lambda: detailed.alltoall(self, values, nbytes_each),
            nbytes=nbytes_each,
            macro_path=lambda: macro.alltoall(self, values, nbytes_each)))

    def scatter(self, values: Optional[list] = None, root: int = 0,
                nbytes: Optional[int] = None,
                category: str = "sync") -> Generator[Any, Any, Any]:
        """MPI_Scatter: rank i receives ``values[i]`` provided by the root."""
        params = self.world.network.params
        if self.rank == root and (values is None or len(values) != self.size):
            raise MPIError(f"scatter root needs {self.size} values")

        def combine(vals: dict[int, Any]) -> list:
            return list(vals[root])

        def cost(vals: dict[int, Any]) -> float:
            nb = nbytes
            if nb is None:
                nb = max((sizeof(v) for v in vals[root]), default=0)
            return analytic.scatter_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(values if self.rank == root else None,
                                        combine, cost, kind="scatter"),
            lambda: detailed.scatter(self, values, root, nbytes),
            nbytes=nbytes))

    def reduce_scatter_block(self, values: list, op: ReduceOp = SUM,
                             nbytes: Optional[int] = None,
                             category: str = "sync"
                             ) -> Generator[Any, Any, Any]:
        """MPI_Reduce_scatter_block: reduce per-slot, keep my slot."""
        if len(values) != self.size:
            raise MPIError(
                f"reduce_scatter_block needs {self.size} values, "
                f"got {len(values)}"
            )
        params = self.world.network.params

        def combine(vals: dict[int, list]) -> list:
            return [op.reduce_all([vals[src][dst] for src in range(self.size)])
                    for dst in range(self.size)]

        def cost(vals: dict[int, list]) -> float:
            nb = nbytes if nbytes is not None else sizeof(vals[0][0])
            return analytic.alltoall_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(values, combine, cost,
                                        kind="reduce_scatter_block"),
            lambda: detailed.reduce_scatter_block(self, values, op, nbytes),
            nbytes=nbytes,
            macro_path=lambda: macro.reduce_scatter_block(
                self, values, op, nbytes)))

    def exscan(self, value: Any, op: ReduceOp = SUM,
               nbytes: Optional[int] = None,
               category: str = "sync") -> Generator[Any, Any, Any]:
        """MPI_Exscan: rank r gets the fold of ranks < r (None at rank 0)."""
        params = self.world.network.params

        def combine(vals: dict[int, Any]) -> list:
            out: list[Any] = [None]
            acc = None
            for r in range(self.size - 1):
                acc = vals[r] if acc is None else op(acc, vals[r])
                out.append(acc)
            return out

        def cost(vals: dict[int, Any]) -> float:
            nb = nbytes if nbytes is not None else sizeof(vals[0])
            return analytic.scan_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(value, combine, cost, kind="exscan"),
            lambda: detailed.exscan(self, value, op, nbytes),
            nbytes=nbytes))

    def scan(self, value: Any, op: ReduceOp = SUM, nbytes: Optional[int] = None,
             category: str = "sync") -> Generator[Any, Any, Any]:
        params = self.world.network.params

        def combine(vals: dict[int, Any]) -> list:
            out, acc = [], None
            for r in range(self.size):
                acc = vals[r] if acc is None else op(acc, vals[r])
                out.append(acc)
            return out

        def cost(vals: dict[int, Any]) -> float:
            nb = nbytes if nbytes is not None else sizeof(vals[0])
            return analytic.scan_cost(params, self.size, nb)

        return (yield from self._collective(
            category,
            lambda: self._analytic_site(value, combine, cost, kind="scan"),
            lambda: detailed.scan(self, value, op, nbytes),
            nbytes=nbytes))

    # ------------------------------------------------------------------
    # communicator split
    # ------------------------------------------------------------------
    def split(self, color: Any, key: Optional[int] = None,
              category: str = "sync") -> Generator[Any, Any, Optional["Communicator"]]:
        """MPI_Comm_split: ranks with equal color form a new communicator.

        ``color=None`` mirrors MPI_UNDEFINED: the rank gets no communicator.
        """
        self._split_state[0] += 1
        split_seq = self._split_state[0]
        key = self.rank if key is None else key
        entries = yield from self.allgather((color, key, self.rank),
                                            category=category)
        if color is None:
            return None
        members_group = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        members_world = [self.desc.members[r] for (_, r) in members_group]
        desc = self.world.derive_comm(self.desc, split_seq, color, members_world)
        sub = type(self)(self.proc, desc)
        sub._backend = self._backend  # children inherit any override
        return sub
