"""LogP-style analytic cost model for collective operations.

Used by the ``analytic`` collective backend (and by ``hybrid`` for the
categories it maps to it): a collective becomes a synchronization site
whose exit time is ``max(entry times) + cost(op, p, sizes)``.  The
formulas follow the standard algorithms MPICH/ROMIO uses (binomial trees,
recursive doubling, pairwise exchange), so detailed and analytic modes
agree to first order — an agreement that tests and an ablation benchmark
check explicitly.

Notation: ``p`` group size, ``o`` per-message overhead (send+recv), ``L``
wire latency, ``G`` seconds/byte.
"""

from __future__ import annotations

import math

from repro.cluster.network import NetworkParams
from repro.simmpi.backends import _LeafBackend, register_backend


def _olg(params: NetworkParams) -> tuple[float, float, float]:
    o = params.send_overhead + params.recv_overhead
    return o, params.latency, 1.0 / params.bandwidth


def log2ceil(p: int) -> int:
    return max(0, math.ceil(math.log2(p))) if p > 1 else 0


def barrier_cost(params: NetworkParams, p: int) -> float:
    """Dissemination barrier: ceil(log2 p) rounds of one message each."""
    o, lat, _ = _olg(params)
    return log2ceil(p) * (o + lat)


def bcast_cost(params: NetworkParams, p: int, nbytes: int) -> float:
    """Binomial-tree broadcast."""
    o, lat, g = _olg(params)
    return log2ceil(p) * (o + lat + nbytes * g)


def reduce_cost(params: NetworkParams, p: int, nbytes: int) -> float:
    """Binomial-tree reduction (compute cost negligible vs wire time)."""
    return bcast_cost(params, p, nbytes)


def allreduce_cost(params: NetworkParams, p: int, nbytes: int) -> float:
    """Recursive doubling: log2 p rounds, full vector each round."""
    o, lat, g = _olg(params)
    return log2ceil(p) * (o + lat + nbytes * g)


def gather_cost(params: NetworkParams, p: int, nbytes_each: int) -> float:
    """Binomial gather: log p latency terms, (p-1) blocks through the root."""
    o, lat, g = _olg(params)
    return log2ceil(p) * (o + lat) + (p - 1) * nbytes_each * g


def scatter_cost(params: NetworkParams, p: int, nbytes_each: int) -> float:
    return gather_cost(params, p, nbytes_each)


def allgather_cost(params: NetworkParams, p: int, nbytes_each: int) -> float:
    """Recursive-doubling allgather: log p startups, (p-1) blocks of data."""
    o, lat, g = _olg(params)
    return log2ceil(p) * (o + lat) + (p - 1) * nbytes_each * g


def allgatherv_cost(params: NetworkParams, p: int, total_bytes: int,
                    own_bytes: int) -> float:
    """Ring allgatherv: p-1 startups, everyone forwards all-but-own bytes."""
    o, lat, g = _olg(params)
    return max(0, p - 1) * (o + lat) + max(0, total_bytes - own_bytes) * g


def alltoall_cost(params: NetworkParams, p: int, nbytes_each: int) -> float:
    """Alltoall of ``nbytes_each`` per peer: best of pairwise and Bruck.

    MPICH switches to the Bruck algorithm (log p rounds, ~half the data
    forwarded each round) for small payloads — which is what the per-round
    count exchange inside two-phase I/O is.  Model both and take the
    cheaper, as the library would.
    """
    o, lat, g = _olg(params)
    if p <= 1:
        return 0.0
    pairwise = (p - 1) * (o + lat) + (p - 1) * nbytes_each * g
    rounds = log2ceil(p)
    bruck = rounds * (o + lat) + rounds * (p * nbytes_each / 2) * g
    return min(pairwise, bruck)


def alltoallv_cost(params: NetworkParams, p: int, max_send_bytes: int,
                   max_recv_bytes: int) -> float:
    """Pairwise exchange bounded by the busiest sender/receiver."""
    o, lat, g = _olg(params)
    return max(0, p - 1) * (o + lat) + max(max_send_bytes, max_recv_bytes) * g


def scan_cost(params: NetworkParams, p: int, nbytes: int) -> float:
    """Recursive-doubling inclusive scan."""
    o, lat, g = _olg(params)
    return log2ceil(p) * (o + lat + nbytes * g)


class AnalyticBackend(_LeafBackend):
    """Every collective is a LogP synchronization site (no messages)."""

    name = "analytic"


register_backend(AnalyticBackend.name, AnalyticBackend.from_spec, leaf=True)
