"""Simulated MPI over the discrete-event engine.

Provides communicators with MPI matching semantics (source/tag/context,
wildcards, FIFO per peer), eager and rendezvous point-to-point protocols
timed through the :mod:`repro.cluster` network model, and the collective
operations collective I/O depends on (barrier, bcast, reduce, allreduce,
gather(v), allgather(v), alltoall(v), scan) behind pluggable
collective-fidelity backends (:mod:`repro.simmpi.backends`):

* ``detailed`` — collectives run their real message schedules
  (dissemination barrier, binomial trees, recursive doubling, ring,
  pairwise exchange) as simulated point-to-point traffic;
* ``analytic`` — a collective is a synchronization site whose exit time is
  ``max(entry times) + LogP-style cost``; used for large-scale sweeps and
  validated against ``detailed`` in tests and an ablation benchmark;
* ``hybrid`` — per-category fidelity selection
  (``hybrid:sync=analytic,exchange=detailed,io=detailed``), so the
  collective wall can be modeled analytically while everything else keeps
  full message fidelity.

Rank programs are generators; every blocking call is ``yield from``.
"""

from repro.simmpi.backends import (CollectiveBackend, HybridBackend,
                                   available_backends, register_backend,
                                   resolve_backend)
from repro.simmpi.payload import Payload, sizeof
from repro.simmpi.reduce_ops import MAX, MIN, PROD, SUM, ReduceOp
from repro.simmpi.timers import TimeBreakdown
from repro.simmpi.world import ANY_SOURCE, ANY_TAG, Communicator, Proc, World

__all__ = [
    "World",
    "Communicator",
    "Proc",
    "CollectiveBackend",
    "HybridBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "Payload",
    "sizeof",
    "TimeBreakdown",
    "ANY_SOURCE",
    "ANY_TAG",
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
]
