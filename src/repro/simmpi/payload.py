"""Message payloads: real bytes or modeled sizes.

A :class:`Payload` carries an application object plus the byte count the
network should charge for it.  In *verified* runs the object is real data
(NumPy arrays, lists of offsets) and correctness tests inspect it; in
*model* runs large data payloads carry ``data=None`` with only a size, so
multi-gigabyte experiments never allocate the bytes — the control flow and
all timing stay identical.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import MPIError


def sizeof(obj: Any) -> int:
    """Estimate the wire size of ``obj`` in bytes.

    Exact for NumPy arrays and bytes; a simple structural estimate for the
    small control objects (ints, tuples, lists of ints) exchanged during
    collective-I/O coordination.  This feeds the *cost model only* — data
    volume for file payloads is always given explicitly.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (list, tuple, set, frozenset)):
        # flat collections of small ints (counts, offsets) are the common
        # case on collective-I/O control paths: skip the recursive call
        total = 8
        for x in obj:
            total += 8 if type(x) is int else sizeof(x)
        return total
    if isinstance(obj, dict):
        return 8 + sum(sizeof(k) + sizeof(v) for k, v in obj.items())
    # dataclass-ish fallback: size of the visible attributes
    if hasattr(obj, "__dict__"):
        return 8 + sum(sizeof(v) for v in vars(obj).values())
    return 64


class Payload:
    """Bytes-on-the-wire abstraction: ``(nbytes, data-or-None)``."""

    __slots__ = ("nbytes", "data")

    def __init__(self, nbytes: int, data: Any = None):
        if type(nbytes) is not int:
            nbytes = int(nbytes)
        if nbytes < 0:
            raise MPIError(f"payload size must be >= 0, got {nbytes}")
        self.nbytes = nbytes
        self.data = data

    @classmethod
    def of(cls, obj: Any, nbytes: Optional[int] = None) -> "Payload":
        """Wrap a real object, sizing it automatically unless told."""
        return cls(sizeof(obj) if nbytes is None else nbytes, obj)

    @classmethod
    def model(cls, nbytes: int) -> "Payload":
        """A size-only payload (model mode: no bytes are materialized)."""
        return cls(nbytes, None)

    @property
    def is_model(self) -> bool:
        return self.data is None and self.nbytes > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "model" if self.is_model else type(self.data).__name__
        return f"Payload({self.nbytes}B, {kind})"
