"""Reduction operators for reduce/allreduce/scan.

Operators are associative binary functions working on scalars and NumPy
arrays alike.  The set matches what collective I/O needs (SUM for counts,
MAX/MIN for offsets) plus PROD for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce_all(self, values: list[Any]) -> Any:
        """Left-fold over ``values`` (must be non-empty)."""
        acc = values[0]
        for v in values[1:]:
            acc = self.fn(acc, v)
        return acc


def _sum(a, b):
    return a + b


def _prod(a, b):
    return a * b


def _max(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


SUM = ReduceOp("sum", _sum)
PROD = ReduceOp("prod", _prod)
MAX = ReduceOp("max", _max)
MIN = ReduceOp("min", _min)
