"""Per-rank time-breakdown accounting.

The paper's Figure 2 splits collective-I/O time into synchronization
(collective coordination), point-to-point data exchange, and file I/O.
Every blocking operation in the MPI-IO stack charges its elapsed virtual
time to one of these categories on the calling rank; a run-level summary
(max and mean across ranks, mirroring the paper's per-file-close report)
is assembled by the harness.
"""

from __future__ import annotations

from typing import Dict, Iterable

#: canonical categories used throughout the I/O stack; 'fault_retry' is
#: the client-side time lost to RPC timeouts and backoff under an active
#: fault plan (always 0 without one)
CATEGORIES = ("sync", "exchange", "io", "compute", "meta", "fault_retry",
              "other")


class TimeBreakdown:
    """Accumulates seconds per category for one rank."""

    __slots__ = ("times", "counts")

    def __init__(self) -> None:
        self.times: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, category: str, dt: float, n: int = 1) -> None:
        """Charge ``dt`` seconds (and ``n`` operations) to ``category``.

        ``n`` defaults to 1 — one blocking call, one operation.  Retry
        accounting passes the number of lost RPCs instead, so the count
        column of a report answers "how many times did we retry".
        """
        if dt < 0:
            raise ValueError(f"negative duration {dt} for {category!r}")
        self.times[category] = self.times.get(category, 0.0) + dt
        self.counts[category] = self.counts.get(category, 0) + n

    def get(self, category: str) -> float:
        return self.times.get(category, 0.0)

    def total(self, categories: Iterable[str] | None = None) -> float:
        if categories is None:
            return sum(self.times.values())
        return sum(self.times.get(c, 0.0) for c in categories)

    def clear(self) -> None:
        self.times.clear()
        self.counts.clear()

    def snapshot(self) -> Dict[str, float]:
        return dict(self.times)

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown()
        for src in (self, other):
            for cat, t in src.times.items():
                out.times[cat] = out.times.get(cat, 0.0) + t
            for cat, n in src.counts.items():
                out.counts[cat] = out.counts.get(cat, 0) + n
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{c}={t:.6g}s" for c, t in sorted(self.times.items()))
        return f"TimeBreakdown({parts})"


def summarize(breakdowns: list[TimeBreakdown]) -> dict[str, dict[str, float]]:
    """Aggregate per-rank breakdowns: max / mean / sum / count per category.

    ``count`` is the total operation count across ranks (an int) — for
    most categories the number of blocking calls, for ``fault_retry``
    the number of lost RPCs.
    """
    cats: set[str] = set()
    for bd in breakdowns:
        cats.update(bd.times)
    out: dict[str, dict[str, float]] = {}
    n = max(1, len(breakdowns))
    for cat in sorted(cats):
        vals = [bd.get(cat) for bd in breakdowns]
        out[cat] = {
            "max": max(vals),
            "mean": sum(vals) / n,
            "sum": sum(vals),
            "count": sum(bd.counts.get(cat, 0) for bd in breakdowns),
        }
    return out
