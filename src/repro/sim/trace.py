"""Lightweight event tracing for debugging and timeline inspection.

The recorder is optional: when disabled (the default) tracing costs a
single attribute check at each call site.  Records are plain tuples
``(time, category, payload)`` so the recorder itself never allocates more
than the caller asked for.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional


class TraceRecorder:
    """Collects ``(time, category, payload)`` records, optionally filtered."""

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 max_records: Optional[int] = None):
        #: if not None, only these categories are recorded
        self.categories = set(categories) if categories is not None else None
        self.max_records = max_records
        self.records: list[tuple[float, str, Any]] = []
        self.dropped = 0

    def record(self, time: float, category: str, payload: Any) -> None:
        if self.categories is not None and category not in self.categories:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append((time, category, payload))

    def by_category(self, category: str) -> list[tuple[float, Any]]:
        return [(t, p) for (t, c, p) in self.records if c == category]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)
