"""Deterministic, named random-number streams.

Every stochastic element of the simulation (OST service jitter, placement
noise) draws from its own named stream derived from a single root seed, so
that runs are reproducible from ``(config, seed)`` and adding a new
consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (process-independent)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed,
                                        spawn_key=(_stable_key(name),))
            gen = np.random.Generator(np.random.PCG64(ss))
            self._cache[name] = gen
        return gen

    def fork(self, salt: str) -> "RngStreams":
        """Derive an independent family of streams (e.g. per repetition)."""
        return RngStreams(seed=(self.seed * 1_000_003 + _stable_key(salt)) % (2**63))
