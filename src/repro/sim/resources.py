"""Shared serial resources with FIFO service semantics.

A :class:`FIFOResource` models a device that serves requests one after
another at a fixed byte rate with a fixed per-request overhead — an OST
data mover, a NIC injection port, a metadata server.  Because service is
strictly FIFO and the engine is deterministic, the resource does not need
a queue object: it keeps a single ``busy_until`` watermark and each
request computes its own completion time.

Contention falls out naturally: if many clients hit the same resource at
the same virtual time, their completions serialize, so the *last* one
observes the sum of all service times — exactly the behaviour that makes
unaggregated small I/O slow on a real parallel file system.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Generator, Iterable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.effects import Sleep
from repro.sim.engine import Engine


class ServiceProfile:
    """A piecewise-constant service-*speed* multiplier over virtual time.

    Built from ``(start, end, factor)`` windows: inside a window the
    resource serves at ``factor`` times its nominal rate (``factor`` < 1
    degrades, ``factor`` == 0 stalls, overlapping windows multiply).
    ``end=None`` means the window never closes.  Outside every window the
    speed is 1.0, so a resource without any active window behaves exactly
    like an unprofiled one.

    The profile answers one question: given a request that *starts*
    service at ``start`` and needs ``work`` seconds at nominal speed,
    when does it finish?  Deterministic piecewise integration — no
    randomness, no engine coupling — which keeps time-varying resources
    reproducible and cheap.
    """

    __slots__ = ("times", "speeds")

    def __init__(self, windows: Iterable[tuple[float, Optional[float], float]]):
        ws: list[tuple[float, Optional[float], float]] = []
        points = {0.0}
        for start, end, factor in windows:
            start = float(start)
            factor = float(factor)
            if start < 0:
                raise SimulationError(
                    f"profile window start must be >= 0, got {start}")
            if factor < 0:
                raise SimulationError(
                    f"profile speed factor must be >= 0, got {factor}")
            if end is not None:
                end = float(end)
                if end <= start:
                    raise SimulationError(
                        f"profile window must end after it starts "
                        f"({start} >= {end})")
                points.add(end)
            ws.append((start, end, factor))
            points.add(start)
        #: segment boundaries; ``speeds[i]`` holds on [times[i], times[i+1])
        self.times = sorted(points)
        self.speeds = []
        for t in self.times:
            speed = 1.0
            for start, end, factor in ws:
                if start <= t and (end is None or t < end):
                    speed *= factor
            self.speeds.append(speed)
        if self.speeds[-1] == 0.0:
            raise SimulationError(
                "service profile ends in a permanent stall (an open-ended "
                "window with factor 0); requests would never complete"
            )

    def speed_at(self, t: float) -> float:
        """Effective speed multiplier at virtual time ``t``."""
        i = bisect_right(self.times, t) - 1
        if i < 0:
            return 1.0
        return self.speeds[i]

    def finish_time(self, start: float, work: float) -> float:
        """Completion time of ``work`` nominal-speed seconds begun at ``start``."""
        if work <= 0.0:
            return start
        i = max(0, bisect_right(self.times, start) - 1)
        t = float(start)
        while True:
            speed = self.speeds[i]
            seg_end = (self.times[i + 1] if i + 1 < len(self.times)
                       else math.inf)
            if speed > 0.0:
                dt = work / speed
                if t + dt <= seg_end:
                    return t + dt
                work -= (seg_end - t) * speed
            t = seg_end
            i += 1


class FIFOResource:
    """A serially-served resource: ``service time = overhead + nbytes/rate``."""

    __slots__ = ("engine", "name", "rate", "overhead", "busy_until",
                 "total_bytes", "total_requests", "busy_time", "profile")

    def __init__(self, engine: Engine, name: str, rate: float,
                 overhead: float = 0.0):
        if rate <= 0:
            raise SimulationError(f"resource {name!r}: rate must be > 0, got {rate}")
        if overhead < 0:
            raise SimulationError(f"resource {name!r}: overhead must be >= 0")
        self.engine = engine
        self.name = name
        #: service rate in bytes per second
        self.rate = float(rate)
        #: fixed per-request latency in seconds
        self.overhead = float(overhead)
        self.busy_until = 0.0
        self.total_bytes = 0
        self.total_requests = 0
        self.busy_time = 0.0
        #: optional ServiceProfile (time-varying speed); None = nominal
        self.profile: Optional[ServiceProfile] = None

    def service_time(self, nbytes: int) -> float:
        return self.overhead + nbytes / self.rate

    def reserve(self, nbytes: int, extra: float = 0.0) -> float:
        """Reserve a service slot starting now; returns the completion time.

        Non-blocking: callers that want to wait should use :meth:`service`.
        ``extra`` adds request-specific time (e.g. a lock-revocation
        penalty) that occupies the resource.
        """
        return self.reserve_at(self.engine.now, nbytes, extra=extra)

    def reserve_at(self, t: float, nbytes: int, extra: float = 0.0) -> float:
        """Reserve a slot for a request that *arrives* at time ``t`` >= now.

        Used by the network model: a message cannot occupy the receiving
        NIC before it has left the sender, but the reservation must be
        made now so later arrivals queue behind it deterministically.
        """
        return self.reserve_span(t, nbytes, extra=extra)[1]

    def reserve_span(self, t: float, nbytes: int, extra: float = 0.0
                     ) -> tuple[float, float]:
        """Like :meth:`reserve_at` but returns ``(service_start, done)``.

        Without a profile this computes exactly the same arithmetic as it
        always has (``done = start + stime``; the reported start is
        ``done - stime`` so existing callers that derived it by
        subtraction see bit-identical values).  With a profile, service
        time stretches through slow/stalled windows via
        :meth:`ServiceProfile.finish_time`.
        """
        if nbytes < 0:
            raise SimulationError(f"resource {self.name!r}: negative size {nbytes}")
        busy = self.busy_until
        start = t if t > busy else busy
        stime = self.overhead + nbytes / self.rate + extra
        if self.profile is None:
            done = start + stime
            span_start = done - stime
            self.busy_time += stime
        else:
            done = self.profile.finish_time(start, stime)
            span_start = start
            self.busy_time += done - start
        self.busy_until = done
        self.total_bytes += nbytes
        self.total_requests += 1
        return span_start, done

    def reserve_batch(self, ts, sizes, extra: float = 0.0
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`reserve_span` over a whole request batch.

        ``ts`` are the arrival times and ``sizes`` the byte counts of N
        requests *in reservation order* — the order a per-message caller
        would have issued the ``reserve_span`` calls.  Returns
        ``(span_starts, dones)`` as float64 arrays and applies the same
        state updates (``busy_until``, ``busy_time``, totals) as N scalar
        calls would.

        The closed form exploits the FIFO structure: completion times
        form *dense chains* — runs where each request starts exactly when
        its predecessor finishes, so ``done`` is a prefix sum of service
        times off the chain base.  A chain breaks only where a request
        arrives after the resource drained (``t_k > done_{k-1}``).  Each
        chain is one ``np.cumsum`` with the base prepended, which numpy
        evaluates as the same left-fold of IEEE additions the scalar loop
        performs, so results are bit-identical — the determinism gate
        depends on this, and a Hypothesis property test enforces it.

        Piecewise speed profiles (fault windows) break the prefix-sum
        form, so the profiled path integrates per request — still one
        tight loop with no engine round-trips, and bit-identical to the
        scalar path by construction.
        """
        ts = np.asarray(ts, dtype=np.float64)
        n = int(ts.size)
        if n == 0:
            return np.empty(0, np.float64), np.empty(0, np.float64)
        sizes_f = np.asarray(sizes, dtype=np.float64)
        if sizes_f.min() < 0:
            raise SimulationError(
                f"resource {self.name!r}: negative size in batch")
        stimes = self.overhead + sizes_f / self.rate + extra
        dones = np.empty(n, np.float64)
        if self.profile is None:
            busy = self.busy_until
            j = 0
            while j < n:
                t = ts[j]
                base = t if t > busy else busy
                chain = np.cumsum(np.concatenate(([base], stimes[j:])))[1:]
                if j + 1 < n:
                    gaps = ts[j + 1:] > chain[:-1]
                    k = int(np.argmax(gaps)) if gaps.any() else -1
                else:
                    k = -1
                if k < 0:
                    dones[j:] = chain
                    busy = chain[-1]
                    break
                stop = j + 1 + k
                dones[j:stop] = chain[:stop - j]
                busy = chain[stop - j - 1]
                j = stop
            span_starts = dones - stimes
            # fold the increments in scalar order: ((bt + s0) + s1) + ...
            self.busy_time = float(np.cumsum(
                np.concatenate(([self.busy_time], stimes)))[-1])
        else:
            span_starts = np.empty(n, np.float64)
            busy = self.busy_until
            bt = self.busy_time
            finish = self.profile.finish_time
            for i in range(n):
                t = ts[i]
                start = t if t > busy else busy
                done = finish(start, stimes[i])
                span_starts[i] = start
                dones[i] = done
                bt += done - start
                busy = done
            self.busy_time = bt
        self.busy_until = float(busy)
        self.total_bytes += int(np.asarray(sizes).sum())
        self.total_requests += n
        return span_starts, dones

    def service(self, nbytes: int, extra: float = 0.0) -> Generator[Any, Any, float]:
        """Blocking helper: wait until this request has been served."""
        done = self.reserve(nbytes, extra=extra)
        yield Sleep(done - self.engine.now)
        return done

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of ``elapsed`` (default: engine.now) spent busy."""
        span = self.engine.now if elapsed is None else elapsed
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time / span)
