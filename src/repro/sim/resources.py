"""Shared serial resources with FIFO service semantics.

A :class:`FIFOResource` models a device that serves requests one after
another at a fixed byte rate with a fixed per-request overhead — an OST
data mover, a NIC injection port, a metadata server.  Because service is
strictly FIFO and the engine is deterministic, the resource does not need
a queue object: it keeps a single ``busy_until`` watermark and each
request computes its own completion time.

Contention falls out naturally: if many clients hit the same resource at
the same virtual time, their completions serialize, so the *last* one
observes the sum of all service times — exactly the behaviour that makes
unaggregated small I/O slow on a real parallel file system.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.effects import Sleep
from repro.sim.engine import Engine


class FIFOResource:
    """A serially-served resource: ``service time = overhead + nbytes/rate``."""

    __slots__ = ("engine", "name", "rate", "overhead", "busy_until",
                 "total_bytes", "total_requests", "busy_time")

    def __init__(self, engine: Engine, name: str, rate: float,
                 overhead: float = 0.0):
        if rate <= 0:
            raise SimulationError(f"resource {name!r}: rate must be > 0, got {rate}")
        if overhead < 0:
            raise SimulationError(f"resource {name!r}: overhead must be >= 0")
        self.engine = engine
        self.name = name
        #: service rate in bytes per second
        self.rate = float(rate)
        #: fixed per-request latency in seconds
        self.overhead = float(overhead)
        self.busy_until = 0.0
        self.total_bytes = 0
        self.total_requests = 0
        self.busy_time = 0.0

    def service_time(self, nbytes: int) -> float:
        return self.overhead + nbytes / self.rate

    def reserve(self, nbytes: int, extra: float = 0.0) -> float:
        """Reserve a service slot starting now; returns the completion time.

        Non-blocking: callers that want to wait should use :meth:`service`.
        ``extra`` adds request-specific time (e.g. a lock-revocation
        penalty) that occupies the resource.
        """
        return self.reserve_at(self.engine.now, nbytes, extra=extra)

    def reserve_at(self, t: float, nbytes: int, extra: float = 0.0) -> float:
        """Reserve a slot for a request that *arrives* at time ``t`` >= now.

        Used by the network model: a message cannot occupy the receiving
        NIC before it has left the sender, but the reservation must be
        made now so later arrivals queue behind it deterministically.
        """
        if nbytes < 0:
            raise SimulationError(f"resource {self.name!r}: negative size {nbytes}")
        start = max(t, self.busy_until)
        stime = self.service_time(nbytes) + extra
        done = start + stime
        self.busy_until = done
        self.total_bytes += nbytes
        self.total_requests += 1
        self.busy_time += stime
        return done

    def service(self, nbytes: int, extra: float = 0.0) -> Generator[Any, Any, float]:
        """Blocking helper: wait until this request has been served."""
        done = self.reserve(nbytes, extra=extra)
        yield Sleep(done - self.engine.now)
        return done

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of ``elapsed`` (default: engine.now) spent busy."""
        span = self.engine.now if elapsed is None else elapsed
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time / span)
