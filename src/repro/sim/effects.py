"""Effect objects yielded by simulation tasks.

A task is a generator.  Whenever it needs to interact with the virtual
world — advance time, wait for a signal, start or join another task — it
yields one of these effect objects and is resumed by the engine when the
effect completes.  Blocking helpers in higher layers are themselves
generators and are invoked with ``yield from``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Event, Task


@dataclass(frozen=True)
class Sleep:
    """Suspend the task for ``dt`` seconds of virtual time.

    ``dt`` may be zero (yield the scheduler without advancing time); it
    must not be negative.
    """

    dt: float


@dataclass(frozen=True)
class WaitEvent:
    """Suspend the task until the event fires; resumes with its value."""

    event: "Event"


@dataclass(frozen=True)
class Spawn:
    """Start ``gen`` as a new task; resumes immediately with the Task."""

    gen: Generator[Any, Any, Any]
    name: Optional[str] = None


@dataclass(frozen=True)
class Join:
    """Suspend until ``task`` finishes; resumes with its return value.

    If the joined task raised, the exception is re-raised in the joiner.
    """

    task: "Task"


Effect = Sleep | WaitEvent | Spawn | Join
