"""The discrete-event engine: virtual clock, scheduler, tasks, events.

Design notes
------------
* The ready queue is a binary heap keyed by ``(time, seq)`` where ``seq``
  is a monotone counter; this makes execution order fully deterministic.
* Tasks are trampolined generators.  ``_step`` resumes a task and
  dispatches the effect it yields.  Effects that can complete immediately
  (spawning, waiting on an already-fired event, joining a finished task)
  are handled in a tight loop without touching the heap, which matters:
  large collective-I/O runs execute millions of effects.
* When the heap drains while tasks are still blocked the engine raises
  :class:`~repro.errors.DeadlockError` with a description of every blocked
  task — mismatched MPI tags or an absent collective participant then
  produce a readable diagnostic instead of a silent hang.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.errors import DeadlockError, SimulationError, TaskFailedError
from repro.sim.effects import Join, Sleep, Spawn, WaitEvent

_PENDING = object()


class Event:
    """A one-shot signal carrying a value.

    Multiple tasks may wait on the same event; all are resumed with the
    fired value.  Firing twice is an error (it would indicate a protocol
    bug in a higher layer, e.g. a message delivered to two receivers).
    """

    __slots__ = ("engine", "name", "_value", "_waiters")

    def __init__(self, engine: "Engine", name: str = "event"):
        self.engine = engine
        self.name = name
        self._value: Any = _PENDING
        self._waiters: list[Task] = []

    @property
    def fired(self) -> bool:
        return self._value is not _PENDING

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"event {self.name!r} read before being fired")
        return self._value

    def fire(self, value: Any = None) -> None:
        """Fire now: resume every waiter at the current virtual time."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._value = value
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            self.engine._resume_soon(task, value)

    def fire_at(self, t: float, value: Any = None) -> None:
        """Schedule this event to fire at virtual time ``t``."""
        self.engine.call_at(t, lambda: self.fire(value))

    def fire_later(self, dt: float, value: Any = None) -> None:
        """Schedule this event to fire ``dt`` seconds from now."""
        self.engine.call_at(self.engine.now + dt, lambda: self.fire(value))


class Task:
    """A running generator plus its scheduling state."""

    __slots__ = ("engine", "gen", "name", "done", "result", "error", "_joiners",
                 "state", "_tid")

    def __init__(self, engine: "Engine", gen: Generator[Any, Any, Any], name: str):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: list[Task] = []
        #: human-readable blocking state, used for deadlock diagnostics
        self.state = "new"
        self._tid: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} state={self.state}>"

    def describe(self) -> str:
        return f"{self.name}: {self.state}"


class Engine:
    """A deterministic discrete-event scheduler with a virtual clock."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._live_tasks: dict[int, Task] = {}
        self._next_task_id = 0
        #: count of effects dispatched; cheap progress/perf metric
        self.effects_dispatched = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at virtual time ``t`` (>= now)."""
        if t < self.now:
            raise SimulationError(f"cannot schedule in the past: {t} < {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, fn))

    def call_later(self, dt: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + dt, fn)

    def spawn(self, gen: Generator[Any, Any, Any], name: Optional[str] = None) -> Task:
        """Register ``gen`` as a task and schedule its first step now."""
        self._next_task_id += 1
        task = Task(self, gen, name or f"task-{self._next_task_id}")
        tid = self._next_task_id
        self._live_tasks[tid] = task
        task.state = "ready"

        def first_step(task=task, tid=tid):
            self._step(task, None, tid=tid)

        task._tid = tid
        self.call_at(self.now, first_step)
        return task

    def _resume_soon(self, task: Task, value: Any) -> None:
        tid = task._tid
        self.call_at(self.now, lambda: self._step(task, value, tid=tid))

    # ------------------------------------------------------------------
    # trampoline
    # ------------------------------------------------------------------
    def _step(self, task: Task, value: Any, throw: Optional[BaseException] = None,
              tid: Optional[int] = None) -> None:
        gen = task.gen
        task.state = "running"
        while True:
            self.effects_dispatched += 1
            try:
                if throw is not None:
                    exc, throw = throw, None
                    effect = gen.throw(exc)
                else:
                    effect = gen.send(value)
            except StopIteration as stop:
                self._finish(task, result=stop.value, tid=tid)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via joiners
                self._finish(task, error=exc, tid=tid)
                return

            cls = effect.__class__
            if cls is Sleep:
                dt = effect.dt
                if dt < 0:
                    throw = SimulationError(f"negative sleep: {dt}")
                    value = None
                    continue
                task.state = f"sleeping until t={self.now + dt:.9g}"
                self.call_at(self.now + dt, lambda t=task, i=tid: self._step(t, None, tid=i))
                return
            elif cls is WaitEvent:
                ev = effect.event
                if ev.fired:
                    value = ev.value
                    continue
                task.state = f"waiting on event {ev.name!r}"
                ev._waiters.append(task)
                return
            elif cls is Spawn:
                child = self.spawn(effect.gen, name=effect.name)
                value = child
                continue
            elif cls is Join:
                target = effect.task
                if target.done:
                    if target.error is not None:
                        throw = target.error
                        value = None
                    else:
                        value = target.result
                    continue
                task.state = f"joining task {target.name!r}"
                target._joiners.append(task)
                return
            else:
                throw = SimulationError(
                    f"task {task.name!r} yielded a non-effect: {effect!r} "
                    "(blocking helpers must be invoked with 'yield from')"
                )
                value = None

    def _finish(self, task: Task, result: Any = None,
                error: Optional[BaseException] = None, tid: Optional[int] = None) -> None:
        task.done = True
        task.result = result
        task.error = error
        task.state = "done" if error is None else f"failed: {error!r}"
        if tid is not None:
            self._live_tasks.pop(tid, None)
        joiners, task._joiners = task._joiners, []
        for joiner in joiners:
            if error is not None:
                jt = joiner._tid
                self.call_at(self.now, lambda j=joiner, e=error, i=jt: self._step(j, None, throw=e, tid=i))
            else:
                self._resume_soon(joiner, result)
        if error is not None and not joiners:
            # No joiner will observe the failure: fail the whole run.
            raise TaskFailedError(task.name, error) from error

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains (or past ``until``); returns final time.

        Raises :class:`DeadlockError` if the heap drains while spawned
        tasks are still blocked.
        """
        heap = self._heap
        while heap:
            t, _, fn = heapq.heappop(heap)
            if until is not None and t > until:
                # put it back; caller may continue later
                heapq.heappush(heap, (t, _, fn))
                self.now = until
                return self.now
            self.now = t
            fn()
        blocked = [task.describe() for task in self._live_tasks.values() if not task.done]
        if blocked:
            raise DeadlockError(blocked)
        return self.now

    def run_tasks(self, gens: list[Generator[Any, Any, Any]],
                  names: Optional[list[str]] = None) -> list[Any]:
        """Spawn ``gens``, run to completion, return their results in order."""
        names = names or [f"task-{i}" for i in range(len(gens))]
        tasks = [self.spawn(g, name=n) for g, n in zip(gens, names)]
        try:
            self.run()
        except TaskFailedError as exc:
            raise exc.original from exc
        out = []
        for task in tasks:
            if task.error is not None:
                raise task.error
            out.append(task.result)
        return out
