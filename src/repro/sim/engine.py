"""The discrete-event engine: virtual clock, scheduler, tasks, events.

Design notes
------------
* The ready queue is a binary heap keyed by ``(time, seq)`` where ``seq``
  is a monotone counter; this makes execution order fully deterministic.
* Same-time work bypasses the heap entirely: anything scheduled at the
  *current* virtual time goes onto a FIFO ready deque.  Every heap entry
  at time ``t`` was necessarily pushed while ``now < t`` (same-time
  entries never reach the heap), so its seq precedes that of any deque
  entry created at ``t`` — draining heap entries at ``now`` before the
  deque reproduces exact ``(time, seq)`` order.  This matters because
  same-time scheduling is the dominant case: every event fire, task
  resumption, and task finish lands at the current time.
* Scheduler entries are plain tuples ``(kind, a, b)`` dispatched in the
  run loop — no closure is allocated per scheduling operation.
  ``call_at`` with an arbitrary callable remains available for
  higher-level code; the hot paths (task steps, event fires) use the
  dedicated kinds.
* Tasks are trampolined generators.  ``_step`` resumes a task and
  dispatches the effect it yields.  Effects that can complete immediately
  (spawning, waiting on an already-fired event, joining a finished task)
  are handled in a tight loop without touching the scheduler, which
  matters: large collective-I/O runs execute millions of effects.
* Diagnostic strings (task blocking state, event names) are kept as
  cheap tuples and rendered only when a diagnostic is actually printed —
  formatting them eagerly used to cost an f-string per message.
* When the scheduler drains while tasks are still blocked the engine
  raises :class:`~repro.errors.DeadlockError` with a description of every
  blocked task — mismatched MPI tags or an absent collective participant
  then produce a readable diagnostic instead of a silent hang.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.errors import DeadlockError, SimulationError, TaskFailedError
from repro.sim.effects import Join, Sleep, Spawn, WaitEvent

_PENDING = object()

#: scheduler entry kinds, dispatched in the run loop
_K_FN = 0     # a()
_K_STEP = 1   # engine._step(a, b)
_K_THROW = 2  # engine._step(a, None, throw=b)
_K_FIRE = 3   # a.fire(b)
_K_CALL1 = 4  # a(b) — lets callers schedule a bound method + argument
              # without allocating a closure per call


def _label(name: Any) -> str:
    """Render a lazy diagnostic name (str, or a tuple of parts)."""
    if type(name) is tuple:
        return ":".join(str(p) for p in name)
    return str(name)


class Event:
    """A one-shot signal carrying a value.

    Multiple tasks may wait on the same event; all are resumed with the
    fired value.  Firing twice is an error (it would indicate a protocol
    bug in a higher layer, e.g. a message delivered to two receivers).

    ``name`` may be any object; it is only rendered (via :func:`_label`)
    when a diagnostic needs it, so hot paths can pass tuples instead of
    formatting strings per event.
    """

    __slots__ = ("engine", "name", "_value", "_waiters")

    def __init__(self, engine: "Engine", name: Any = "event"):
        self.engine = engine
        self.name = name
        self._value: Any = _PENDING
        self._waiters: list[Task] = []

    @property
    def fired(self) -> bool:
        return self._value is not _PENDING

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(
                f"event {_label(self.name)!r} read before being fired")
        return self._value

    def fire(self, value: Any = None) -> None:
        """Fire now: resume every waiter at the current virtual time."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {_label(self.name)!r} fired twice")
        self._value = value
        waiters = self._waiters
        if waiters:
            engine = self.engine
            ready = engine._ready
            engine.heap_bypasses += len(waiters)
            for task in waiters:
                ready.append((_K_STEP, task, value))
            self._waiters = []

    def fire_at(self, t: float, value: Any = None) -> None:
        """Schedule this event to fire at virtual time ``t``."""
        self.engine._sched(t, _K_FIRE, self, value)

    def fire_later(self, dt: float, value: Any = None) -> None:
        """Schedule this event to fire ``dt`` seconds from now."""
        engine = self.engine
        engine._sched(engine.now + dt, _K_FIRE, self, value)


class Task:
    """A running generator plus its scheduling state.

    ``name`` may be None (rendered as ``task-<id>`` on demand), a string,
    or a lazy tuple of parts — like event names it is only formatted when
    a diagnostic actually needs it, so spawning costs no f-string.
    """

    __slots__ = ("engine", "gen", "_name", "done", "result", "error", "_joiners",
                 "state", "_tid")

    def __init__(self, engine: "Engine", gen: Generator[Any, Any, Any],
                 name: Any = None):
        self.engine = engine
        self.gen = gen
        self._name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: list[Task] = []
        #: blocking state for deadlock diagnostics — a string or a lazy
        #: ``(verb, detail)`` tuple rendered by :meth:`describe`
        self.state: Any = "new"
        self._tid: Optional[int] = None

    @property
    def name(self) -> str:
        n = self._name
        if n is None:
            return f"task-{self._tid}"
        return _label(n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} state={self.describe_state()}>"

    def describe_state(self) -> str:
        state = self.state
        if type(state) is not tuple:
            return str(state)
        verb, detail = state
        if verb == "sleeping":
            return f"sleeping until t={detail:.9g}"
        if verb == "waiting":
            return f"waiting on event {_label(detail)!r}"
        if verb == "joining":
            return f"joining task {detail.name if type(detail) is Task else detail!r}"
        if verb == "failed":
            return f"failed: {detail!r}"
        return f"{verb}: {detail}"  # pragma: no cover - future-proofing

    def describe(self) -> str:
        return f"{self.name}: {self.describe_state()}"


class _ScheduledBatch:
    """One rolling scheduler entry draining N timestamped completions.

    Holds ``entries`` — ``(t, fn, arg)`` sorted by non-decreasing ``t`` —
    and keeps exactly one entry in the engine's scheduler at a time:
    each :meth:`advance` fires every completion due at the current
    virtual time, then re-schedules itself at the next distinct
    timestamp.  A macro-coalesced round with thousands of message
    completions therefore costs O(distinct timestamps) heap traffic
    instead of O(messages).
    """

    __slots__ = ("engine", "entries", "i")

    def __init__(self, engine: "Engine", entries):
        self.engine = engine
        self.entries = entries
        self.i = 0

    def advance(self, _arg: Any = None) -> None:
        entries = self.entries
        i = self.i
        n = len(entries)
        now = self.engine.now
        while i < n and entries[i][0] <= now:
            t, fn, arg = entries[i]
            fn(arg)
            i += 1
        self.i = i
        if i < n:
            self.engine._sched(entries[i][0], _K_CALL1, self.advance, None)


class Engine:
    """A deterministic discrete-event scheduler with a virtual clock."""

    def __init__(self):
        self.now: float = 0.0
        #: future work: (time, seq, kind, a, b), a binary heap
        self._heap: list[tuple[float, int, int, Any, Any]] = []
        #: same-time work in FIFO (= seq) order
        self._ready: deque[tuple[int, Any, Any]] = deque()
        self._seq = 0
        self._live_tasks: dict[int, Task] = {}
        self._next_task_id = 0
        #: count of effects dispatched; cheap progress/perf metric
        self.effects_dispatched = 0
        #: scheduler entries that went through the heap
        self.heap_pushes = 0
        #: scheduler entries that bypassed the heap via the ready deque
        self.heap_bypasses = 0
        #: number of tasks blocked on events that an *external* driver
        #: (the shard sync loop) will fire; while nonzero, draining the
        #: scheduler with blocked tasks returns instead of deadlocking
        self.external_pending = 0
        #: dynamic run ceiling: :meth:`run` hands control back before
        #: advancing past this time.  Unlike the ``until`` argument it
        #: may shrink *mid-run* — a shard sets it to the earliest
        #: unanswered external request so the clock can never overtake a
        #: reply that resumes a task shortly after its submission time.
        self.stop_bound: Optional[float] = None

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def _sched(self, t: float, kind: int, a: Any, b: Any) -> None:
        """Schedule a dispatch entry at virtual time ``t`` (>= now)."""
        if t == self.now:
            self.heap_bypasses += 1
            self._ready.append((kind, a, b))
            return
        if t < self.now:
            raise SimulationError(f"cannot schedule in the past: {t} < {self.now}")
        self._seq += 1
        self.heap_pushes += 1
        heapq.heappush(self._heap, (t, self._seq, kind, a, b))

    def _sched_at_seq(self, t: float, seq: int, kind: int, a: Any, b: Any) -> None:
        """Schedule a dispatch entry at an explicit ``(t, seq)`` heap slot.

        Used by components that mirror the engine's sequence space (the
        macro collective walker): the entry lands at exactly the heap
        position a conventionally-scheduled entry with that seq would
        have occupied, so same-instant ordering against unrelated
        traffic is preserved by construction.  ``t == now`` is allowed
        and intentionally does *not* take the ready-deque bypass — the
        heap position is the point.
        """
        if t < self.now:
            raise SimulationError(f"cannot schedule in the past: {t} < {self.now}")
        self.heap_pushes += 1
        heapq.heappush(self._heap, (t, seq, kind, a, b))

    def call_at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at virtual time ``t`` (>= now)."""
        self._sched(t, _K_FN, fn, None)

    def call_later(self, dt: float, fn: Callable[[], None]) -> None:
        self._sched(self.now + dt, _K_FN, fn, None)

    def spawn(self, gen: Generator[Any, Any, Any], name: Any = None) -> Task:
        """Register ``gen`` as a task and schedule its first step now.

        ``name`` is a lazy diagnostic label (None, a string, or a tuple
        of parts); nothing is formatted here.
        """
        self._next_task_id += 1
        tid = self._next_task_id
        task = Task(self, gen, name)
        task._tid = tid
        self._live_tasks[tid] = task
        task.state = "ready"
        self.heap_bypasses += 1
        self._ready.append((_K_STEP, task, None))
        return task

    def _resume_soon(self, task: Task, value: Any) -> None:
        self.heap_bypasses += 1
        self._ready.append((_K_STEP, task, value))

    def schedule_batch(self, entries: list[tuple[float, Callable[[Any], None], Any]]) -> None:
        """Schedule N ``(t, fn, arg)`` completions through one rolling entry.

        ``entries`` must be sorted by non-decreasing ``t`` with every
        ``t >= now``; each ``fn(arg)`` runs at virtual time ``t``, and
        completions sharing a timestamp run in list order.  Entries due
        at the *current* time fire immediately (the caller is already
        executing at ``now``), so a fully-synchronous batch never touches
        the heap at all.
        """
        if entries:
            _ScheduledBatch(self, entries).advance()

    # ------------------------------------------------------------------
    # trampoline
    # ------------------------------------------------------------------
    def _step(self, task: Task, value: Any,
              throw: Optional[BaseException] = None) -> None:
        gen = task.gen
        send = gen.send
        n = 0
        try:
            while True:
                n += 1
                try:
                    if throw is not None:
                        exc, throw = throw, None
                        effect = gen.throw(exc)
                    else:
                        effect = send(value)
                except StopIteration as stop:
                    self._finish(task, result=stop.value)
                    return
                except BaseException as exc:  # noqa: BLE001 - propagate via joiners
                    self._finish(task, error=exc)
                    return

                cls = effect.__class__
                if cls is Event:
                    # a bare Event yield is an implicit WaitEvent — the
                    # dominant effect in message-heavy runs, so it skips
                    # the wrapper allocation entirely
                    if effect._value is not _PENDING:
                        value = effect._value
                        continue
                    task.state = ("waiting", effect.name)
                    effect._waiters.append(task)
                    return
                if cls is Sleep:
                    dt = effect.dt
                    if dt == 0.0:
                        # same-time resumption: skip the heap
                        task.state = "ready"
                        self.heap_bypasses += 1
                        self._ready.append((_K_STEP, task, None))
                        return
                    if dt < 0:
                        throw = SimulationError(f"negative sleep: {dt}")
                        value = None
                        continue
                    t = self.now + dt
                    task.state = ("sleeping", t)
                    self._seq += 1
                    self.heap_pushes += 1
                    heapq.heappush(self._heap, (t, self._seq, _K_STEP, task, None))
                    return
                elif cls is WaitEvent:
                    ev = effect.event
                    if ev._value is not _PENDING:
                        value = ev._value
                        continue
                    task.state = ("waiting", ev.name)
                    ev._waiters.append(task)
                    return
                elif cls is Spawn:
                    child = self.spawn(effect.gen, name=effect.name)
                    value = child
                    continue
                elif cls is Join:
                    target = effect.task
                    if target.done:
                        if target.error is not None:
                            throw = target.error
                            value = None
                        else:
                            value = target.result
                        continue
                    task.state = ("joining", target)
                    target._joiners.append(task)
                    return
                else:
                    throw = SimulationError(
                        f"task {task.name!r} yielded a non-effect: {effect!r} "
                        "(blocking helpers must be invoked with 'yield from')"
                    )
                    value = None
        finally:
            self.effects_dispatched += n

    def _finish(self, task: Task, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        task.done = True
        task.result = result
        task.error = error
        task.state = "done" if error is None else ("failed", error)
        if task._tid is not None:
            self._live_tasks.pop(task._tid, None)
        joiners = task._joiners
        if joiners:
            task._joiners = []
            ready = self._ready
            self.heap_bypasses += len(joiners)
            if error is not None:
                for joiner in joiners:
                    ready.append((_K_THROW, joiner, error))
            else:
                for joiner in joiners:
                    ready.append((_K_STEP, joiner, result))
        elif error is not None:
            # No joiner will observe the failure: fail the whole run.
            raise TaskFailedError(task.name, error) from error

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the scheduler drains (or past ``until``); returns
        final time.

        Raises :class:`DeadlockError` if the scheduler drains while
        spawned tasks are still blocked.
        """
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        popleft = ready.popleft
        step = self._step
        now = self.now
        while True:
            # heap entries due at the current time precede every ready
            # entry (they were scheduled earlier — smaller seq)
            if ready and not (heap and heap[0][0] <= now):
                kind, a, b = popleft()
                # while ready drains the clock is pinned, so every new
                # heap entry is strictly in the future: dispatch the
                # whole deque without re-checking the heap head
                while ready:
                    if kind == _K_STEP:
                        step(a, b)
                    elif kind == _K_FIRE:
                        a.fire(b)
                    elif kind == _K_CALL1:
                        a(b)
                    elif kind == _K_FN:
                        a()
                    else:  # _K_THROW
                        step(a, None, throw=b)
                    kind, a, b = popleft()
            elif heap:
                if until is not None and heap[0][0] > until and not ready:
                    self.now = until
                    return until
                sb = self.stop_bound
                if sb is not None and heap[0][0] > sb and not ready:
                    if sb > now:
                        self.now = sb
                    return self.now
                t, _seq, kind, a, b = pop(heap)
                self.now = now = t
            else:
                break
            if kind == _K_STEP:
                step(a, b)
            elif kind == _K_FIRE:
                a.fire(b)
            elif kind == _K_CALL1:
                a(b)
            elif kind == _K_FN:
                a()
            else:  # _K_THROW
                step(a, None, throw=b)
        blocked = [task.describe() for task in self._live_tasks.values()
                   if not task.done]
        if blocked:
            if self.external_pending > 0:
                # tasks are waiting on replies an external driver (the
                # shard coordinator) will deliver; hand control back
                return self.now
            raise DeadlockError(blocked)
        return self.now

    def run_tasks(self, gens: list[Generator[Any, Any, Any]],
                  names: Optional[list[str]] = None) -> list[Any]:
        """Spawn ``gens``, run to completion, return their results in order."""
        names = names or [None] * len(gens)
        tasks = [self.spawn(g, name=n) for g, n in zip(gens, names)]
        try:
            self.run()
        except TaskFailedError as exc:
            raise exc.original from exc
        out = []
        for task in tasks:
            if task.error is not None:
                raise task.error
            out.append(task.result)
        return out
