"""Deterministic discrete-event simulation engine.

The engine executes *tasks* — trampolined Python generators — against a
virtual clock.  Tasks block by yielding :mod:`effect <repro.sim.effects>`
objects (``Sleep``, ``WaitEvent``, ``Spawn``, ``Join``); nested blocking
calls compose with ``yield from``.  Execution order is fully deterministic:
events fire in (time, sequence-number) order and no wall-clock time or
OS-level concurrency is involved.

This is the substrate on which :mod:`repro.simmpi` implements MPI and
:mod:`repro.lustre` implements the parallel file system.
"""

from repro.sim.effects import Join, Sleep, Spawn, WaitEvent
from repro.sim.engine import Engine, Event, Task
from repro.sim.resources import FIFOResource
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder

__all__ = [
    "Engine",
    "Event",
    "Task",
    "Sleep",
    "WaitEvent",
    "Spawn",
    "Join",
    "FIFOResource",
    "RngStreams",
    "TraceRecorder",
]
