"""Per-fault-class impact reports.

Where :func:`repro.harness.fault_sweep.fault_sweep` traces one fault
class across severities, :func:`fault_impact` probes *every* class at
its representative severity and renders one comparative report: how much
wall bandwidth each protocol loses, how far the damage spreads (median
rank retained speed, ranks affected), and what the retry machinery paid
(``fault_retry`` seconds and lost-RPC counts from the time breakdown).

The report is the quick answer to "which failure modes does
partitioning actually help with, and by how much" without reading four
sweep tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.harness.fault_sweep import (FAULT_CLASSES, _median, fault_class,
                                       rank_elapsed, sweep_tasks)
from repro.harness.parallel import ExperimentExecutor, default_executor
from repro.harness.report import format_table, mb_per_s


@dataclass
class ProtocolImpact:
    """One protocol's damage under one probed fault class."""

    protocol: str
    healthy_bw: float
    faulted_bw: float
    #: median rank's healthy elapsed / faulted elapsed (1.0 = contained)
    median_retained: float
    #: ranks slower than 1.5x the protocol's healthy median
    affected_ranks: int
    nprocs: int
    #: summed seconds ranks spent in retry timeouts + backoff
    retry_seconds: float
    #: lost RPCs recovered by retry
    retried_rpcs: int

    @property
    def wall_loss(self) -> float:
        """Fraction of healthy wall bandwidth lost to the fault."""
        if self.healthy_bw <= 0:
            return 0.0
        return 1.0 - self.faulted_bw / self.healthy_bw


@dataclass
class FaultImpact:
    """All protocols' damage under one probed fault class."""

    fault: str
    description: str
    severity: float
    collective_mode: str
    per_protocol: dict[str, ProtocolImpact] = field(default_factory=dict)

    @property
    def containment(self) -> float:
        """ext2ph affected ranks per parcoll affected rank (>1 means
        partitioning shrank the blast radius)."""
        flat = self.per_protocol.get("ext2ph")
        part = self.per_protocol.get("parcoll")
        if flat is None or part is None or part.affected_ranks == 0:
            return 0.0
        return flat.affected_ranks / part.affected_ranks


@dataclass
class FaultImpactReport:
    """Comparative impact of every fault class at probe severity."""

    scale: str
    impacts: list[FaultImpact]
    #: simulation-core counters summed over every probe run (None when
    #: all results came from caches predating the perf layer)
    perf: Optional[Any] = None

    def summary(self) -> str:
        headers = ["fault", "sev", "protocol", "wall MB/s", "wall loss",
                   "median %", "affected", "retry (s)", "lost RPCs"]
        rows: list[list[Any]] = []
        for imp in self.impacts:
            for proto, p in imp.per_protocol.items():
                rows.append([
                    imp.fault, imp.severity, proto,
                    round(mb_per_s(p.faulted_bw), 1),
                    f"{100 * p.wall_loss:.1f}%",
                    round(100 * p.median_retained, 1),
                    f"{p.affected_ranks}/{p.nprocs}",
                    round(p.retry_seconds, 4), p.retried_rpcs,
                ])
        out = format_table(
            headers, rows,
            title=f"fault impact at probe severity (scale={self.scale})")
        lines = [out, ""]
        for imp in self.impacts:
            if imp.containment > 1.0:
                lines.append(
                    f"  {imp.fault}: partitioning shrinks the blast "
                    f"radius {imp.containment:.1f}x "
                    f"({imp.per_protocol['ext2ph'].affected_ranks} -> "
                    f"{imp.per_protocol['parcoll'].affected_ranks} ranks)")
        if self.perf is not None:
            lines.append("  sim perf (all probe runs): " + "   ".join(
                f"{label} {value}" for label, value in self.perf.lines()))
        return "\n".join(lines)


def fault_impact(scale: str = "small",
                 classes: Optional[Sequence[str]] = None,
                 protocols: Sequence[str] = ("ext2ph", "parcoll"),
                 executor: Optional[ExperimentExecutor] = None
                 ) -> FaultImpactReport:
    """Probe each fault class at its representative severity.

    Each class costs ``2 x len(protocols)`` runs (healthy baseline plus
    probe); baselines are shared through the run cache across classes
    that use the same collective fidelity.
    """
    ex = executor or default_executor()
    names = list(classes) if classes else sorted(FAULT_CLASSES)
    specs = [fault_class(n) for n in names]
    tasks = []
    for fc in specs:
        tasks.extend(sweep_tasks(fc, (0.0, fc.probe), scale,
                                 protocols=protocols, retry=fc.retry))
    results = ex.run_many(tasks)

    impacts = []
    it = iter(results)
    for fc in specs:
        grid = {(sev, proto): next(it)
                for sev in (0.0, fc.probe) for proto in protocols}
        imp = FaultImpact(fault=fc.name, description=fc.description,
                          severity=fc.probe,
                          collective_mode=fc.collective_mode)
        for proto in protocols:
            healthy, probed = grid[(0.0, proto)], grid[(fc.probe, proto)]
            h_med = _median(rank_elapsed(healthy))
            elapsed = rank_elapsed(probed)
            med = _median(elapsed)
            fr = probed.breakdown.get("fault_retry", {})
            imp.per_protocol[proto] = ProtocolImpact(
                protocol=proto,
                healthy_bw=healthy.write_bandwidth,
                faulted_bw=probed.write_bandwidth,
                median_retained=h_med / med if med > 0 else 0.0,
                affected_ranks=sum(1 for e in elapsed if e > 1.5 * h_med),
                nprocs=len(elapsed),
                retry_seconds=fr.get("sum", 0.0),
                retried_rpcs=int(fr.get("count", 0)),
            )
        impacts.append(imp)
    from repro.perf import merge

    sampled = [getattr(r, "perf", None) for r in results]
    perf = merge(sampled) if any(s is not None for s in sampled) else None
    return FaultImpactReport(scale=scale, impacts=impacts, perf=perf)
