"""Race every registered collective-I/O protocol and pick winners.

The protocol registry (:mod:`repro.mpiio.protocols`) makes collective
strategies interchangeable; this module answers the question the seam
exists for: *which protocol should this workload use?*

:func:`protocol_zoo` runs one leaderboard — every registered protocol
against every workload pattern (dense tile, contiguous IOR, BT-IO's
nested-strided 3D dumps, Flash's many small noncontiguous datasets) on
one platform.  Protocols with a tunable partition depth (``parcoll``,
and ``nodeagg`` composed with FA partitioning) are not raced at an
arbitrary group count: the advisor tunes each with
:meth:`~repro.harness.sweep.Sweep.golden_section_max` over the
power-of-two ladder first, so the leaderboard compares every protocol
at its best.  The per-pattern winner is the advisor's pick.

All runs evaluate through the executor batch machinery, so the whole
(pattern x protocol) grid plus the golden-section probes share the run
cache and any ``REPRO_JOBS`` parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    default_executor)
from repro.harness.report import format_table, mb_per_s
from repro.harness.runner import ExperimentConfig, RunResult
from repro.harness.sweep import Sweep
from repro.mpiio.protocols import available_protocols
from repro.workloads import (BTIOConfig, FlashIOConfig, IORConfig,
                             TileIOConfig)

#: protocols whose performance hinges on a group count the advisor tunes
TUNED = {"parcoll": "parcoll", "nodeagg+fa": "nodeagg"}


@dataclass
class ZooEntry:
    """One (pattern, protocol) cell of the leaderboard."""

    pattern: str
    #: display label ('parcoll', 'nodeagg+fa', 'listio', ...)
    label: str
    #: the protocol spec the run used (ExperimentConfig.protocol)
    protocol: str
    #: extra MPI-IO hints the run used (tuned group count, ...)
    hints: dict = field(default_factory=dict)
    write_mb_s: float = 0.0
    read_mb_s: float = 0.0
    sync_share: float = 0.0
    elapsed: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"pattern": self.pattern, "label": self.label,
                "protocol": self.protocol, "hints": dict(self.hints),
                "write_mb_s": round(self.write_mb_s, 3),
                "read_mb_s": round(self.read_mb_s, 3),
                "sync_share": round(self.sync_share, 4),
                "elapsed": round(self.elapsed, 6)}


@dataclass
class ZooLeaderboard:
    """The full race: every entry plus the advisor's per-pattern picks."""

    nprocs: int
    scale: str
    entries: list[ZooEntry] = field(default_factory=list)
    #: pattern -> winning entry (advisor pick, by write bandwidth)
    picks: dict[str, ZooEntry] = field(default_factory=dict)

    def pattern_entries(self, pattern: str) -> list[ZooEntry]:
        return [e for e in self.entries if e.pattern == pattern]

    def summary(self) -> str:
        headers = ["pattern", "protocol", "write MB/s", "read MB/s",
                   "sync %", "pick"]
        rows: list[list[Any]] = []
        for e in self.entries:
            pick = self.picks.get(e.pattern)
            rows.append([
                e.pattern, e.label, round(e.write_mb_s, 1),
                round(e.read_mb_s, 1), round(100 * e.sync_share, 1),
                "<- best" if pick is e else "",
            ])
        out = format_table(
            headers, rows,
            title=f"protocol zoo ({self.nprocs} procs, scale={self.scale})")
        lines = [out, "", "  advisor picks:"]
        for pattern, e in self.picks.items():
            hint_s = (" " + " ".join(f"{k}={v}" for k, v in e.hints.items())
                      if e.hints else "")
            lines.append(f"    {pattern}: {e.label}{hint_s} "
                         f"({round(e.write_mb_s, 1)} MB/s write)")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {"nprocs": self.nprocs, "scale": self.scale,
                "entries": [e.to_dict() for e in self.entries],
                "picks": {p: e.to_dict() for p, e in self.picks.items()}}


def zoo_patterns(nprocs: int, scale: str = "small") -> dict[str, tuple]:
    """The leaderboard's workload patterns: name -> (workload, config).

    BT-IO needs a square process count; its pattern is skipped when
    ``nprocs`` has no integer square root.
    """
    if scale == "paper":
        tile = TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64,
                            mode="both")
        ior = IORConfig(block_size=1 << 20, transfer_size=1 << 18,
                        read_back=True)
        flash = FlashIOConfig(nxb=8, nyb=8, nzb=8, blocks_per_proc=4,
                              nvars=24)
    else:
        tile = TileIOConfig(tile_rows=128, tile_cols=96, element_size=64,
                            mode="both")
        ior = IORConfig(block_size=1 << 18, transfer_size=1 << 16,
                        read_back=True)
        flash = FlashIOConfig(nxb=4, nyb=4, nzb=4, blocks_per_proc=2,
                              nvars=4)
    patterns = {"tile": ("tile_io", tile), "ior": ("ior", ior),
                "flash": ("flash_io", flash)}
    q = int(round(nprocs ** 0.5))
    if q * q == nprocs:
        grid = 2 * q if scale != "paper" else 4 * q
        patterns["btio"] = ("btio", BTIOConfig(grid_points=grid, nsteps=2))
    return patterns


def _measure(pattern: str, label: str, protocol: str, hints: dict,
             res: RunResult) -> ZooEntry:
    return ZooEntry(
        pattern=pattern, label=label, protocol=protocol, hints=hints,
        write_mb_s=mb_per_s(res.write_bandwidth),
        read_mb_s=mb_per_s(res.read_bandwidth),
        sync_share=res.category_share("sync"),
        elapsed=res.elapsed_total)


def _with_hints(wl_cfg: Any, hints: dict) -> Any:
    merged = dict(wl_cfg.hints or {})
    merged.update(hints)
    return replace(wl_cfg, hints=merged or None)


def protocol_zoo(nprocs: int = 16, scale: str = "small",
                 config: Optional[ExperimentConfig] = None,
                 max_evals: int = 6,
                 executor: Optional[ExperimentExecutor] = None
                 ) -> ZooLeaderboard:
    """Race every registered protocol across the workload patterns.

    Flat protocols run once per pattern; tunable ones (``parcoll``,
    ``nodeagg`` with FA partitioning) are golden-section tuned over the
    power-of-two group ladder (``max_evals`` fresh runs each) and enter
    the leaderboard at their optimum.  The advisor's pick per pattern is
    the entry with the best write bandwidth.
    """
    ex = executor or default_executor()
    base = config or ExperimentConfig(nprocs=nprocs)
    base = replace(base, nprocs=nprocs)
    board = ZooLeaderboard(nprocs=nprocs, scale=scale)

    for pattern, (workload, wl_cfg) in zoo_patterns(nprocs, scale).items():
        # flat protocols: one batch per pattern
        flat = [p for p in available_protocols() if p not in ("parcoll",)]
        tasks = [ExperimentTask(replace(base, protocol=spec), workload,
                                wl_cfg) for spec in flat]
        for spec, res in zip(flat, ex.run_many(tasks)):
            board.entries.append(_measure(pattern, spec, spec, {}, res))

        # tuned protocols: golden-section over the group-count ladder
        for label, spec in TUNED.items():
            def task(g: int, _spec=spec) -> ExperimentTask:
                return ExperimentTask(
                    replace(base, protocol=_spec), workload,
                    _with_hints(wl_cfg, {"parcoll_ngroups": g}))

            sweep = Sweep(name=f"{pattern}:{label}", task=task, executor=ex)
            pt = sweep.golden_section_max(2, max(2, nprocs // 2),
                                          max_evals=max_evals)
            board.entries.append(_measure(
                pattern, label, spec, {"parcoll_ngroups": pt.value},
                pt.result))

        board.picks[pattern] = max(board.pattern_entries(pattern),
                                   key=lambda e: e.write_mb_s)
    return board
