"""Access-pattern coverage checking.

Collective writes with overlapping per-rank regions have undefined
semantics in MPI (and raise inside the aggregation engine here).  This
module checks a set of per-rank patterns *before* a run: do they overlap,
do they tile the intended byte range, how fragmented is each rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.flatten import Segments, coalesce


@dataclass
class CoverageReport:
    """Result of :func:`check_coverage`."""

    total_bytes: int
    covered_bytes: int
    overlap_bytes: int
    gap_bytes: int
    #: (rank_a, rank_b) pairs with overlapping access (first few)
    overlapping_pairs: list[tuple[int, int]] = field(default_factory=list)
    #: per-rank extent counts (fragmentation)
    extents_per_rank: list[int] = field(default_factory=list)

    @property
    def exact_tiling(self) -> bool:
        return self.overlap_bytes == 0 and self.gap_bytes == 0

    @property
    def disjoint(self) -> bool:
        return self.overlap_bytes == 0

    def summary(self) -> str:
        state = ("exact tiling" if self.exact_tiling
                 else "disjoint with gaps" if self.disjoint
                 else "OVERLAPPING")
        frag = (max(self.extents_per_rank) if self.extents_per_rank else 0)
        return (f"{state}: {self.covered_bytes}/{self.total_bytes} bytes "
                f"covered, {self.overlap_bytes} overlapping, "
                f"{self.gap_bytes} gaps; worst fragmentation "
                f"{frag} extents/rank")


def _segments_of(pattern, disp: int = 0) -> Segments:
    if isinstance(pattern, Datatype):
        offs, lens = pattern.segments()
        return offs + disp, lens
    offs, lens = pattern
    return (np.asarray(offs, dtype=np.int64) + disp,
            np.asarray(lens, dtype=np.int64))


def check_coverage(patterns: Sequence, disps: Optional[Sequence[int]] = None,
                   expected_range: Optional[tuple[int, int]] = None
                   ) -> CoverageReport:
    """Check per-rank access patterns for overlap and tiling.

    ``patterns``: one :class:`Datatype` or ``(offsets, lengths)`` pair per
    rank; ``disps``: optional per-rank view displacements.  The expected
    range defaults to the hull of all accesses.
    """
    disps = disps or [0] * len(patterns)
    per_rank = [_segments_of(p, d) for p, d in zip(patterns, disps)]
    extents = [int(o.size) for o, _ in per_rank]
    nonempty = [(o, l) for o, l in per_rank if o.size]
    if not nonempty:
        return CoverageReport(0, 0, 0, 0, extents_per_rank=extents)
    all_offs = np.concatenate([o for o, _ in nonempty])
    all_lens = np.concatenate([l for _, l in nonempty])
    union_o, union_l = coalesce(all_offs, all_lens)
    covered = int(union_l.sum())
    raw_total = int(all_lens.sum())
    overlap = raw_total - covered
    if expected_range is None:
        expected_range = (int(union_o[0]), int(union_o[-1] + union_l[-1]))
    lo, hi = expected_range
    total = max(0, hi - lo)
    gap = total - covered if total >= covered else 0

    pairs: list[tuple[int, int]] = []
    if overlap > 0:
        # locate a few offending pairs for the report
        for a in range(len(per_rank)):
            if per_rank[a][0].size == 0:
                continue
            for b in range(a + 1, len(per_rank)):
                if per_rank[b][0].size == 0:
                    continue
                if _overlaps(per_rank[a], per_rank[b]):
                    pairs.append((a, b))
                    if len(pairs) >= 8:
                        break
            if len(pairs) >= 8:
                break
    return CoverageReport(total_bytes=total, covered_bytes=covered,
                          overlap_bytes=overlap, gap_bytes=gap,
                          overlapping_pairs=pairs,
                          extents_per_rank=extents)


def _overlaps(a: Segments, b: Segments) -> bool:
    """True when the two segment lists share any byte (vectorized merge)."""
    ao, al = a
    bo, bl = b
    # for each segment of a, find the b segment at or before it
    idx = np.searchsorted(bo, ao, side="right") - 1
    prev_end = np.where(idx >= 0, bo[np.maximum(idx, 0)] + bl[np.maximum(idx, 0)],
                        np.int64(-1))
    if np.any(prev_end > ao):
        return True
    # and the b segment after it
    nxt = np.searchsorted(bo, ao, side="right")
    nxt_start = np.where(nxt < bo.size, bo[np.minimum(nxt, bo.size - 1)],
                         np.iinfo(np.int64).max)
    return bool(np.any(nxt_start < ao + al))
