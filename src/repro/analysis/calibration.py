"""Platform micro-benchmarks: calibrate the simulated machine like a real one.

Runs the classic measurement kernels inside the simulation — ping-pong
for latency/bandwidth, barrier/allreduce sweeps for collective scaling,
a streaming write for raw OST throughput — and reports the *effective*
constants.  Used to sanity-check configurations (does this platform
resemble the paper's Jaguar numbers?) and in tests to pin the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.cluster import MachineConfig, NetworkParams
from repro.lustre import LustreFS, LustreParams
from repro.simmpi import Payload, World


@dataclass(frozen=True)
class PlatformCalibration:
    """Effective platform primitives measured in-simulation (seconds, B/s)."""

    p2p_latency: float
    p2p_bandwidth: float
    barrier_seconds: dict[int, float]
    allreduce_8b_seconds: dict[int, float]
    ost_stream_bandwidth: float

    def summary(self) -> str:
        b = ", ".join(f"P={p}: {t * 1e6:.1f}us"
                      for p, t in sorted(self.barrier_seconds.items()))
        return (f"p2p latency {self.p2p_latency * 1e6:.2f} us, "
                f"bandwidth {self.p2p_bandwidth / 1e9:.2f} GB/s; "
                f"barrier [{b}]; "
                f"OST streaming {self.ost_stream_bandwidth / 1e6:.0f} MB/s")


def _pingpong(net_params: NetworkParams, nbytes: int, reps: int = 10) -> float:
    """Round-trip halves, averaged over reps; two ranks on distinct nodes."""
    world = World(MachineConfig(nprocs=2, cores_per_node=1),
                  net_params=net_params)
    times: dict[str, float] = {}

    def program(comm) -> Generator[Any, Any, None]:
        peer = 1 - comm.rank
        if comm.rank == 0:
            t0 = comm.now
            for _ in range(reps):
                yield from comm.send(Payload.model(nbytes), dest=peer)
                yield from comm.recv(source=peer)
            times["oneway"] = (comm.now - t0) / (2 * reps)
        else:
            for _ in range(reps):
                yield from comm.recv(source=peer)
                yield from comm.send(Payload.model(nbytes), dest=peer)

    world.launch(program)
    return times["oneway"]


def _collective_time(net_params: NetworkParams, nprocs: int,
                     kind: str, reps: int = 5) -> float:
    world = World(MachineConfig(nprocs=nprocs, cores_per_node=2),
                  net_params=net_params)
    out: dict[int, float] = {}

    def program(comm) -> Generator[Any, Any, None]:
        t0 = comm.now
        for _ in range(reps):
            if kind == "barrier":
                yield from comm.barrier()
            else:
                yield from comm.allreduce(comm.rank, nbytes=8)
        out[comm.rank] = (comm.now - t0) / reps

    world.launch(program)
    return max(out.values())


def _ost_stream(lustre_params: LustreParams, nbytes: int = 64 << 20) -> float:
    world = World(MachineConfig(nprocs=1, cores_per_node=1))
    fs = LustreFS(world.engine, lustre_params)
    out: dict[str, float] = {}

    def program(comm) -> Generator[Any, Any, None]:
        f = yield from fs.open("calib", stripe_count=1)
        t0 = comm.now
        yield from fs.write(f, client=0, offsets=[0], lengths=[nbytes])
        out["secs"] = comm.now - t0

    world.launch(program)
    return nbytes / out["secs"]


def calibrate(net_params: NetworkParams | None = None,
              lustre_params: LustreParams | None = None,
              proc_counts: tuple[int, ...] = (8, 64, 256)
              ) -> PlatformCalibration:
    """Measure the platform's effective primitives."""
    net_params = net_params or NetworkParams()
    lustre_params = lustre_params or LustreParams(store_data=False,
                                                  jitter=0.0)
    t_small = _pingpong(net_params, nbytes=0)
    big = 1 << 20
    t_big = _pingpong(net_params, nbytes=big)
    bandwidth = big / max(t_big - t_small, 1e-12)
    barriers = {p: _collective_time(net_params, p, "barrier")
                for p in proc_counts}
    allreduces = {p: _collective_time(net_params, p, "allreduce")
                  for p in proc_counts}
    return PlatformCalibration(
        p2p_latency=t_small,
        p2p_bandwidth=bandwidth,
        barrier_seconds=barriers,
        allreduce_8b_seconds=allreduces,
        ost_stream_bandwidth=_ost_stream(lustre_params),
    )
