"""Post-run analysis: breakdown aggregation, coverage checking, calibration.

Tools a user pointed at a finished run (or a planned one) reaches for:

* :mod:`repro.analysis.breakdown` — turn per-rank time breakdowns into
  the paper's Figure-2-style series and wall diagnostics;
* :mod:`repro.analysis.coverage` — verify that a set of per-rank access
  patterns tile a file exactly (no gaps, no overlaps) before running it;
* :mod:`repro.analysis.calibration` — measure the simulated platform's
  effective primitives (point-to-point latency/bandwidth, collective
  scaling, raw OST throughput) the way one would calibrate a real
  machine with micro-benchmarks;
* :mod:`repro.analysis.faults` — probe every fault class at its
  representative severity and compare per-protocol damage (wall loss,
  blast radius, retry cost);
* :mod:`repro.analysis.protocol_zoo` — race every registered collective
  protocol across the workload patterns and advise the best
  protocol/hints per pattern (tunable protocols golden-section tuned).
"""

from repro.analysis.breakdown import BreakdownSeries, wall_diagnosis
from repro.analysis.coverage import CoverageReport, check_coverage
from repro.analysis.calibration import PlatformCalibration, calibrate
from repro.analysis.faults import (FaultImpact, FaultImpactReport,
                                   fault_impact)
from repro.analysis.protocol_zoo import (ZooEntry, ZooLeaderboard,
                                         protocol_zoo, zoo_patterns)
from repro.analysis.timeline import (OstLoadSummary, burstiness, ost_load,
                                     utilization_curve)

__all__ = [
    "BreakdownSeries",
    "wall_diagnosis",
    "CoverageReport",
    "check_coverage",
    "PlatformCalibration",
    "calibrate",
    "FaultImpact",
    "FaultImpactReport",
    "fault_impact",
    "OstLoadSummary",
    "ost_load",
    "utilization_curve",
    "burstiness",
    "ZooEntry",
    "ZooLeaderboard",
    "protocol_zoo",
    "zoo_patterns",
]
