"""Timeline analysis from trace records.

With a :class:`~repro.sim.trace.TraceRecorder` attached to the file
system (``LustreFS(..., trace=recorder)``), every OST service interval is
recorded.  These tools turn that stream into the diagnostics that explain
the collective wall: per-OST load imbalance, utilization over time, and
burstiness (how synchronized the request waves are).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class OstLoadSummary:
    """Aggregate view of OST service activity."""

    per_ost_busy: dict[int, float]
    per_ost_bytes: dict[int, int]
    requests: int

    @property
    def imbalance(self) -> float:
        """max/mean busy time across OSTs (1.0 = perfectly balanced)."""
        if not self.per_ost_busy:
            return 0.0
        vals = list(self.per_ost_busy.values())
        mean = sum(vals) / len(vals)
        return max(vals) / mean if mean > 0 else 0.0

    @property
    def hottest_ost(self) -> int | None:
        if not self.per_ost_busy:
            return None
        return max(self.per_ost_busy, key=self.per_ost_busy.get)


def ost_load(trace: TraceRecorder) -> OstLoadSummary:
    """Summarize OST busy time and volume from 'ost' trace records."""
    busy: dict[int, float] = {}
    volume: dict[int, int] = {}
    n = 0
    for _, payload in trace.by_category("ost"):
        ost = payload["ost"]
        busy[ost] = busy.get(ost, 0.0) + (payload["end"] - payload["start"])
        volume[ost] = volume.get(ost, 0) + payload["nbytes"]
        n += 1
    return OstLoadSummary(per_ost_busy=busy, per_ost_bytes=volume,
                          requests=n)


def utilization_curve(trace: TraceRecorder, t_end: float, nbins: int = 50
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Fraction of OSTs busy in each time bin; returns (bin_edges, frac).

    A spiky curve (all OSTs slam together, then idle) is the signature of
    globally synchronized rounds; ParColl's drifting subgroups flatten it.
    """
    if t_end <= 0 or nbins <= 0:
        raise ValueError("t_end and nbins must be positive")
    records = trace.by_category("ost")
    osts = {p["ost"] for _, p in records}
    edges = np.linspace(0.0, t_end, nbins + 1)
    busy_time = np.zeros(nbins)
    for _, p in records:
        lo = np.searchsorted(edges, p["start"], side="right") - 1
        hi = np.searchsorted(edges, min(p["end"], t_end), side="left")
        for b in range(max(lo, 0), min(hi, nbins)):
            overlap = (min(p["end"], edges[b + 1])
                       - max(p["start"], edges[b]))
            if overlap > 0:
                busy_time[b] += overlap
        # (loop over bins is fine: requests per run are thousands, not millions)
    width = edges[1] - edges[0]
    denom = max(1, len(osts)) * width
    return edges, np.minimum(1.0, busy_time / denom)


def burstiness(trace: TraceRecorder, t_end: float, nbins: int = 50) -> float:
    """Coefficient of variation of the utilization curve (0 = steady)."""
    _, curve = utilization_curve(trace, t_end, nbins)
    mean = float(curve.mean())
    if mean <= 0:
        return 0.0
    return float(curve.std() / mean)
