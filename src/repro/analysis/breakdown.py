"""Breakdown aggregation and collective-wall diagnosis.

``BreakdownSeries`` accumulates the per-category maxima of several runs
(e.g. a process-count sweep) and answers the questions the paper's
Figures 1–2 ask: how fast does each component grow, and at what scale
does synchronization start to dominate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.harness.runner import RunResult


@dataclass
class BreakdownSeries:
    """Per-category times across a parameter sweep (keyed by e.g. nprocs)."""

    categories: tuple[str, ...] = ("sync", "exchange", "io")
    points: dict[int, dict[str, float]] = field(default_factory=dict)
    shares: dict[int, float] = field(default_factory=dict)

    def add(self, key: int, result: RunResult) -> None:
        self.points[key] = {
            c: result.breakdown.get(c, {}).get("max", 0.0)
            for c in self.categories
        }
        self.shares[key] = result.category_share("sync")

    def growth(self, category: str) -> Optional[float]:
        """Ratio of the category's time at the largest vs smallest key."""
        if len(self.points) < 2:
            return None
        keys = sorted(self.points)
        lo = self.points[keys[0]].get(category, 0.0)
        hi = self.points[keys[-1]].get(category, 0.0)
        return hi / lo if lo > 0 else math.inf

    def scaling_exponent(self, category: str) -> Optional[float]:
        """Least-squares slope of log(time) vs log(key) — ~1 means linear."""
        pts = [(k, v.get(category, 0.0)) for k, v in sorted(self.points.items())
               if v.get(category, 0.0) > 0 and k > 0]
        if len(pts) < 2:
            return None
        xs = [math.log(k) for k, _ in pts]
        ys = [math.log(t) for _, t in pts]
        n = len(xs)
        mx, my = sum(xs) / n, sum(ys) / n
        denom = sum((x - mx) ** 2 for x in xs)
        if denom == 0:
            return None
        return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom

    def wall_onset(self, threshold: float = 0.5) -> Optional[int]:
        """Smallest key at which sync's share exceeds ``threshold``."""
        for k in sorted(self.shares):
            if self.shares[k] > threshold:
                return k
        return None


def wall_diagnosis(series: BreakdownSeries) -> str:
    """A one-paragraph human-readable verdict on the collective wall."""
    onset = series.wall_onset()
    sync_g = series.growth("sync")
    io_g = series.growth("io")
    lines = []
    if onset is not None:
        lines.append(f"synchronization dominates (>50%) from {onset} "
                     f"processes on")
    else:
        lines.append("synchronization never dominates in this sweep")
    if sync_g is not None and io_g is not None and io_g > 0:
        lines.append(f"sync grew {sync_g:.1f}x across the sweep vs "
                     f"{io_g:.1f}x for file I/O")
        exp = series.scaling_exponent("sync")
        if exp is not None:
            lines.append(f"sync scales ~P^{exp:.2f}")
        final_share = series.shares.get(max(series.shares), 0.0) \
            if series.shares else 0.0
        if final_share > 0.5 and sync_g >= io_g:
            lines.append("verdict: collective wall — partition the group "
                         "(ParColl) or shrink the synchronization scope")
        else:
            lines.append("verdict: no wall — I/O capacity bound")
    return "; ".join(lines)
