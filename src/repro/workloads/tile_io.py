"""MPI-Tile-IO: tiled access to a dense 2-D dataset (Section 5.2).

Every process renders one tile of ``tile_rows x tile_cols`` elements of
``element_size`` bytes (the paper: 1024x768 elements of 64 B, i.e.
48 MB/process).  The process grid is ``grid_rows x grid_cols``; the file
holds the dense global array row-major, so a tile's rows interleave with
its horizontal neighbours' — pattern (b) of Figure 4, and the workload
behind Figures 1, 2, 7, 8 and 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.datatypes import BYTE, Subarray
from repro.errors import ConfigError
from repro.workloads.base import AccessTimes, WorkloadIOStats, payload_for


def default_grid(nprocs: int) -> tuple[int, int]:
    """Near-square process grid, wider than tall (MPI-Tile-IO convention)."""
    rows = int(math.sqrt(nprocs))
    while rows > 1 and nprocs % rows:
        rows -= 1
    return rows, nprocs // rows


@dataclass(frozen=True)
class TileIOConfig:
    """Tile dimensions are in elements; the paper uses 1024x768 x 64 B."""

    tile_rows: int = 64
    tile_cols: int = 48
    element_size: int = 64
    grid: Optional[tuple[int, int]] = None
    mode: str = "write"  # 'write' | 'read' | 'both'
    filename: str = "tile.dat"
    hints: dict | None = None

    def __post_init__(self) -> None:
        if min(self.tile_rows, self.tile_cols, self.element_size) <= 0:
            raise ConfigError("tile dimensions must be positive")
        if self.mode not in ("write", "read", "both"):
            raise ConfigError(f"unknown mode {self.mode!r}")

    def resolved_grid(self, nprocs: int) -> tuple[int, int]:
        grid = self.grid or default_grid(nprocs)
        if grid[0] * grid[1] != nprocs:
            raise ConfigError(
                f"grid {grid} does not match {nprocs} processes"
            )
        return grid

    @property
    def tile_bytes(self) -> int:
        return self.tile_rows * self.tile_cols * self.element_size

    def total_bytes(self, nprocs: int) -> int:
        return nprocs * self.tile_bytes


def tile_filetype(cfg: TileIOConfig, nprocs: int, rank: int) -> Subarray:
    """This rank's tile as a subarray of the global byte array."""
    gr, gc = cfg.resolved_grid(nprocs)
    pr, pc = divmod(rank, gc)
    rows = gr * cfg.tile_rows
    cols_bytes = gc * cfg.tile_cols * cfg.element_size
    return Subarray(
        (rows, cols_bytes),
        (cfg.tile_rows, cfg.tile_cols * cfg.element_size),
        (pr * cfg.tile_rows, pc * cfg.tile_cols * cfg.element_size),
        BYTE,
    )


def tile_io_program(cfg: TileIOConfig, comm, io
                    ) -> Generator[Any, Any, WorkloadIOStats]:
    """One rank's tile write and/or read (single collective call each)."""
    verified = io.fs.params.store_data
    stats = WorkloadIOStats()
    ft = tile_filetype(cfg, comm.size, comm.rank)
    f = yield from io.open(comm, cfg.filename, hints=cfg.hints)
    f.set_view(0, BYTE, ft)
    nbytes = cfg.tile_bytes
    if cfg.mode in ("write", "both"):
        data = payload_for(comm.rank, nbytes, verified)
        t0 = comm.now
        n = yield from f.write_at_all(0, data, nbytes=nbytes)
        stats.write_times = AccessTimes(t0, comm.now)
        stats.io_seconds += comm.now - t0
        stats.bytes_written = n
    if cfg.mode in ("read", "both"):
        t0 = comm.now
        out = yield from f.read_at_all(0, nbytes)
        stats.read_times = AccessTimes(t0, comm.now)
        stats.bytes_read = nbytes if out is None else out.size
    yield from f.close()
    return stats
