"""Synthetic access-pattern generator.

Generates the three pattern families of the paper's Figure 4 with
controllable parameters, as both MPI derived datatypes and raw per-rank
segment lists:

* **serial** (pattern (a)) — contiguous per-rank blocks in rank order;
* **tiled** (pattern (b)) — 2-D tiles whose extents intersect within a
  tile row;
* **interleaved** (pattern (c)) — per-rank blocks strided across the
  whole file (BT-like).

Plus a **random** family (seeded) producing irregular but disjoint
per-rank segment sets, which the property-based tests use to check that
every protocol path (independent, ext2ph, ParColl with and without
intermediate views) writes byte-identical files.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.datatypes import BYTE, Datatype, HIndexed, Subarray, Vector
from repro.errors import ConfigError

Pattern = Literal["serial", "tiled", "interleaved", "random"]


@dataclass(frozen=True)
class SyntheticConfig:
    """One synthetic access pattern over ``nprocs`` ranks."""

    pattern: Pattern = "serial"
    nprocs: int = 8
    #: bytes per rank (approximate for 'random')
    bytes_per_rank: int = 4096
    #: granularity of the pieces within a rank's access
    piece_bytes: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ConfigError("nprocs must be positive")
        if self.bytes_per_rank <= 0 or self.piece_bytes <= 0:
            raise ConfigError("sizes must be positive")
        if self.pattern not in ("serial", "tiled", "interleaved", "random"):
            raise ConfigError(f"unknown pattern {self.pattern!r}")


def filetype_for(cfg: SyntheticConfig, rank: int) -> Datatype:
    """This rank's access as a derived datatype (disjoint across ranks)."""
    if not 0 <= rank < cfg.nprocs:
        raise ConfigError(f"rank {rank} out of range")
    p, n, piece = cfg.nprocs, cfg.bytes_per_rank, cfg.piece_bytes
    if cfg.pattern == "serial":
        return Subarray((p * n,), (n,), (rank * n,), BYTE)
    if cfg.pattern == "tiled":
        # near-square grid of tiles; tile = rows x piece bytes
        rows = max(1, n // piece)
        gr = max(1, int(np.sqrt(p)))
        while p % gr:
            gr -= 1
        gc = p // gr
        pr, pc = divmod(rank, gc)
        return Subarray((gr * rows, gc * piece), (rows, piece),
                        (pr * rows, pc * piece), BYTE)
    if cfg.pattern == "interleaved":
        npieces = max(1, n // piece)
        return Vector(npieces, piece, p * piece, BYTE)
    # random: seeded disjoint blocks; rank owns every block b with
    # owner[b] == rank from a shuffled assignment
    npieces_total = max(p, (p * n) // piece)
    # NOT hash("synth"): str hashes are randomized per process, which
    # would make the layout depend on PYTHONHASHSEED
    rng = np.random.Generator(np.random.PCG64(
        np.random.SeedSequence(entropy=cfg.seed,
                               spawn_key=(zlib.crc32(b"synth"),))))
    owners = rng.integers(0, p, size=npieces_total)
    # guarantee everyone owns at least one piece
    owners[:p] = rng.permutation(p)
    mine = np.flatnonzero(owners == rank)
    if mine.size == 0:
        mine = np.array([rank], dtype=np.int64)
    return HIndexed(np.full(mine.size, piece, dtype=np.int64),
                    mine.astype(np.int64) * piece, BYTE)


def rank_offsets_for_interleaved(cfg: SyntheticConfig, rank: int) -> int:
    """View displacement for the interleaved pattern (rank's phase)."""
    return rank * cfg.piece_bytes


def file_bytes_total(cfg: SyntheticConfig) -> int:
    """Upper bound on the file size the pattern produces."""
    if cfg.pattern == "random":
        piece = cfg.piece_bytes
        return max(cfg.nprocs, (cfg.nprocs * cfg.bytes_per_rank) // piece) * piece
    return cfg.nprocs * cfg.bytes_per_rank


def reference_file(cfg: SyntheticConfig, data_for) -> np.ndarray:
    """Assemble the expected file contents directly with NumPy.

    ``data_for(rank, nbytes)`` supplies each rank's dense bytes.
    """
    out = np.zeros(file_bytes_total(cfg), dtype=np.uint8)
    for rank in range(cfg.nprocs):
        ft = filetype_for(cfg, rank)
        offs, lens = ft.segments()
        disp = (rank_offsets_for_interleaved(cfg, rank)
                if cfg.pattern == "interleaved" else 0)
        data = data_for(rank, int(lens.sum()))
        pos = 0
        for o, l in zip(offs.tolist(), lens.tolist()):
            out[disp + o:disp + o + l] = data[pos:pos + l]
            pos += l
    return out
