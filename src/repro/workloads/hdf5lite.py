"""hdf5lite: a minimal HDF5-like container layout for Flash I/O.

Real Flash writes its checkpoint through HDF5, whose library costs are
dominated by (a) a serialized superblock/metadata write path and (b) one
collective data write per dataset.  This model keeps exactly that
structure: a fixed-size header, a per-dataset metadata record written by
rank 0 (independent I/O through the same simulated file system), and
aligned dataset extents addressed collectively by all ranks.

The layout is a pure function of the dataset creation sequence, so every
rank computes identical offsets without extra communication — as HDF5
does when all ranks create datasets collectively with the same arguments.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.errors import ConfigError

HEADER_BYTES = 2048
DATASET_META_BYTES = 512
DATASET_ALIGNMENT = 4096


class Hdf5LiteWriter:
    """Dataset layout planner + metadata writer over an open MPIFile."""

    def __init__(self, mpifile, comm):
        self.f = mpifile
        self.comm = comm
        self._cursor = HEADER_BYTES
        self.datasets: dict[str, tuple[int, int]] = {}

    def _align(self, off: int) -> int:
        return -(-off // DATASET_ALIGNMENT) * DATASET_ALIGNMENT

    def create_dataset(self, name: str, total_bytes: int
                       ) -> Generator[Any, Any, int]:
        """Reserve space and write the metadata record; returns the base.

        Collective: every rank must call with the same arguments.  Under
        collective I/O only rank 0 touches the metadata region (HDF5's
        coordinated metadata path); in *independent* mode every rank
        flushes its own metadata-cache update to the same region — the
        extent-lock ping-pong that collapses uncoordinated HDF5 output
        (the paper's "Cray w/o Coll" disaster case).
        """
        if name in self.datasets:
            raise ConfigError(f"dataset {name!r} already exists")
        if total_bytes < 0:
            raise ConfigError("total_bytes must be >= 0")
        meta_at = self._cursor
        base = self._align(meta_at + DATASET_META_BYTES)
        self.datasets[name] = (base, total_bytes)
        self._cursor = base + total_bytes
        independent = self.f.hints.protocol == "independent"
        if self.comm.rank == 0 or independent:
            verified = self.f.io.fs.params.store_data
            meta = (np.full(DATASET_META_BYTES, 0x4D, dtype=np.uint8)
                    if verified else None)
            yield from self.f.write_at(meta_at, meta,
                                       nbytes=DATASET_META_BYTES)
        return base

    def write_header(self) -> Generator[Any, Any, None]:
        """Rank 0 writes the superblock."""
        if self.comm.rank == 0:
            verified = self.f.io.fs.params.store_data
            hdr = (np.full(HEADER_BYTES, 0x89, dtype=np.uint8)
                   if verified else None)
            yield from self.f.write_at(0, hdr, nbytes=HEADER_BYTES)

    def dataset_base(self, name: str) -> int:
        return self.datasets[name][0]

    @property
    def file_bytes(self) -> int:
        return self._cursor
