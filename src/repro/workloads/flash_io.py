"""Flash I/O: astrophysics checkpoint and plotfile output (Section 5.4).

Flash distributes ``blocks_per_proc`` AMR blocks of ``nxb*nyb*nzb`` cells
to each process and checkpoints through HDF5: one dataset per unknown
(24 double-precision variables), each of global shape
``[totblocks, nzb, nyb, nxb]``.  Blocks are distributed contiguously, so
every process's write within one dataset is a single large contiguous
region — few large segments, which is why the paper sees smaller (but
still real) ParColl gains here than for tile/BT patterns.

Three outputs mirror the benchmark: a checkpoint (all 24 variables,
doubles), a centered plotfile and a corner plotfile (4 variables, single
precision; corner data is ``(n+1)^3`` per block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import ConfigError
from repro.workloads.base import AccessTimes, WorkloadIOStats, payload_for
from repro.workloads.hdf5lite import Hdf5LiteWriter


@dataclass(frozen=True)
class FlashIOConfig:
    """Flash I/O parameters (paper: 32^3 cells/block, 80 blocks, 24 vars)."""

    nxb: int = 8
    nyb: int = 8
    nzb: int = 8
    blocks_per_proc: int = 4
    nvars: int = 24
    plot_vars: int = 4
    checkpoint: bool = True
    plot_centered: bool = False
    plot_corner: bool = False
    filename: str = "flash"
    hints: dict | None = None

    def __post_init__(self) -> None:
        if min(self.nxb, self.nyb, self.nzb, self.blocks_per_proc) <= 0:
            raise ConfigError("block dimensions must be positive")
        if self.nvars <= 0 or self.plot_vars <= 0:
            raise ConfigError("variable counts must be positive")

    @property
    def cells_per_block(self) -> int:
        return self.nxb * self.nyb * self.nzb

    @property
    def corner_cells_per_block(self) -> int:
        return (self.nxb + 1) * (self.nyb + 1) * (self.nzb + 1)

    def checkpoint_bytes(self, nprocs: int) -> int:
        return (nprocs * self.blocks_per_proc * self.cells_per_block
                * 8 * self.nvars)

    def total_bytes(self, nprocs: int) -> int:
        total = 0
        if self.checkpoint:
            total += self.checkpoint_bytes(nprocs)
        if self.plot_centered:
            total += (nprocs * self.blocks_per_proc * self.cells_per_block
                      * 4 * self.plot_vars)
        if self.plot_corner:
            total += (nprocs * self.blocks_per_proc
                      * self.corner_cells_per_block * 4 * self.plot_vars)
        return total


def _write_output(cfg: FlashIOConfig, comm, io, filename: str, nvars: int,
                  cell_bytes: int, cells: int, stats_key: str,
                  stats: WorkloadIOStats) -> Generator[Any, Any, None]:
    """Write one Flash output file: per-variable collective datasets."""
    verified = io.fs.params.store_data
    f = yield from io.open(comm, filename, hints=cfg.hints)
    writer = Hdf5LiteWriter(f, comm)
    yield from writer.write_header()
    totblocks = comm.size * cfg.blocks_per_proc
    per_block = cells * cell_bytes
    my_bytes = cfg.blocks_per_proc * per_block
    my_off = comm.rank * my_bytes
    t0 = comm.now
    # block metadata datasets (tree structure, coordinates, bounding boxes)
    for name, per_block_meta in (("lrefine", 4), ("coordinates", 24),
                                 ("bnd_box", 48)):
        base = yield from writer.create_dataset(name,
                                                totblocks * per_block_meta)
        meta_bytes = cfg.blocks_per_proc * per_block_meta
        data = payload_for(comm.rank, meta_bytes, verified)
        yield from f.write_at_all(base + comm.rank * meta_bytes, data,
                                  nbytes=meta_bytes)
    # one dataset per variable — the bulk of the checkpoint
    for var in range(nvars):
        base = yield from writer.create_dataset(f"var{var:02d}",
                                                totblocks * per_block)
        data = payload_for(comm.rank, my_bytes, verified, salt=var)
        tw = comm.now
        n = yield from f.write_at_all(base + my_off, data, nbytes=my_bytes)
        stats.io_seconds += comm.now - tw
        stats.bytes_written += n
    stats.extra[stats_key] = AccessTimes(t0, comm.now)
    stats.bytes_written += cfg.blocks_per_proc * (4 + 24 + 48)
    yield from f.close()


def flash_io_program(cfg: FlashIOConfig, comm, io
                     ) -> Generator[Any, Any, WorkloadIOStats]:
    """One rank's Flash I/O run: checkpoint and/or plotfiles."""
    stats = WorkloadIOStats()
    t0 = comm.now
    if cfg.checkpoint:
        yield from _write_output(cfg, comm, io, f"{cfg.filename}_chk",
                                 cfg.nvars, 8, cfg.cells_per_block,
                                 "checkpoint", stats)
    if cfg.plot_centered:
        yield from _write_output(cfg, comm, io, f"{cfg.filename}_plt_cnt",
                                 cfg.plot_vars, 4, cfg.cells_per_block,
                                 "plot_centered", stats)
    if cfg.plot_corner:
        yield from _write_output(cfg, comm, io, f"{cfg.filename}_plt_crn",
                                 cfg.plot_vars, 4, cfg.corner_cells_per_block,
                                 "plot_corner", stats)
    stats.write_times = AccessTimes(t0, comm.now)
    return stats
