"""IOR: contiguous shared-file I/O in fixed transfer units (Section 5.1).

The paper's configuration: every process collectively writes a contiguous
buffer (512 MB in the paper, scaled here) into a shared file in 4 MB
units.  Rank ``r``'s region is ``[r*block_size, (r+1)*block_size)``
(IOR's segmented layout).  Contiguous I/O gains nothing from aggregation —
the experiment isolates the *synchronization* cost of collective I/O,
which is exactly what ParColl removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import ConfigError
from repro.workloads.base import AccessTimes, WorkloadIOStats, payload_for


@dataclass(frozen=True)
class IORConfig:
    """IOR parameters (sizes in bytes)."""

    block_size: int = 1 << 20
    transfer_size: int = 1 << 18
    read_back: bool = False
    filename: str = "ior.dat"
    hints: dict | None = None

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.transfer_size <= 0:
            raise ConfigError("IOR sizes must be positive")
        if self.block_size % self.transfer_size:
            raise ConfigError(
                f"block_size {self.block_size} must be a multiple of "
                f"transfer_size {self.transfer_size}"
            )

    @property
    def transfers_per_block(self) -> int:
        return self.block_size // self.transfer_size

    def total_bytes(self, nprocs: int) -> int:
        return nprocs * self.block_size


def ior_program(cfg: IORConfig, comm, io) -> Generator[Any, Any, WorkloadIOStats]:
    """One rank's IOR run: write (and optionally read back) its block."""
    verified = io.fs.params.store_data
    stats = WorkloadIOStats()
    f = yield from io.open(comm, cfg.filename, hints=cfg.hints)
    base = comm.rank * cfg.block_size
    t0 = comm.now
    for t in range(cfg.transfers_per_block):
        offset = base + t * cfg.transfer_size
        data = payload_for(comm.rank, cfg.transfer_size, verified, salt=t)
        tw = comm.now
        n = yield from f.write_at_all(offset, data, nbytes=cfg.transfer_size)
        stats.io_seconds += comm.now - tw
        stats.bytes_written += n
    stats.write_times = AccessTimes(t0, comm.now)
    if cfg.read_back:
        t0 = comm.now
        for t in range(cfg.transfers_per_block):
            offset = base + t * cfg.transfer_size
            out = yield from f.read_at_all(offset, cfg.transfer_size)
            stats.bytes_read += cfg.transfer_size if out is None else out.size
        stats.read_times = AccessTimes(t0, comm.now)
    yield from f.close()
    return stats
