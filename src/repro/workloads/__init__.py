"""The paper's benchmark workloads, reimplemented from their access patterns.

* :mod:`repro.workloads.ior` — IOR: contiguous blocks per rank into a
  shared file, in fixed transfer units (Section 5.1);
* :mod:`repro.workloads.tile_io` — MPI-Tile-IO: each rank renders one
  tile of a dense 2-D dataset (Section 5.2); pattern (b) of Figure 4;
* :mod:`repro.workloads.btio` — NAS BT-IO (full mode): diagonal
  multi-partitioning, the pattern (c) workload requiring intermediate
  file views (Section 5.3);
* :mod:`repro.workloads.flash_io` — Flash I/O: HDF5 checkpoint + plotfile
  output via :mod:`repro.workloads.hdf5lite` (Section 5.4); large
  contiguous per-variable writes.

Each workload exposes a dataclass config and a ``program(comm, io)``
generator suitable for :meth:`repro.harness.runner.run_experiment`.
"""

from repro.workloads.base import AccessTimes, WorkloadIOStats
from repro.workloads.ior import IORConfig, ior_program
from repro.workloads.tile_io import TileIOConfig, tile_io_program
from repro.workloads.btio import BTIOConfig, btio_program
from repro.workloads.flash_io import FlashIOConfig, flash_io_program

__all__ = [
    "AccessTimes",
    "WorkloadIOStats",
    "IORConfig",
    "ior_program",
    "TileIOConfig",
    "tile_io_program",
    "BTIOConfig",
    "btio_program",
    "FlashIOConfig",
    "flash_io_program",
]
