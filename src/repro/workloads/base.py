"""Shared workload plumbing: per-rank data, timing records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class AccessTimes:
    """Start/end of one rank's timed I/O phase (virtual seconds)."""

    start: float
    end: float

    @property
    def elapsed(self) -> float:
        return self.end - self.start


@dataclass
class WorkloadIOStats:
    """What one rank reports back to the harness."""

    bytes_written: int = 0
    bytes_read: int = 0
    write_times: Optional[AccessTimes] = None
    read_times: Optional[AccessTimes] = None
    #: summed duration of this rank's I/O operations (excludes compute
    #: phases between them; includes waits inside collective calls)
    io_seconds: float = 0.0
    #: workload-specific extras (e.g. per-phase timings)
    extra: dict = field(default_factory=dict)


def deterministic_bytes(rank: int, n: int, salt: int = 0) -> np.ndarray:
    """Cheap reproducible per-rank payload for verified runs."""
    return ((np.arange(n, dtype=np.int64) * 131 + rank * 17 + salt * 29 + 7)
            % 251).astype(np.uint8)


def payload_for(rank: int, n: int, verified: bool,
                salt: int = 0) -> Optional[np.ndarray]:
    """Real bytes in verified mode, None (size-only) in model mode."""
    return deterministic_bytes(rank, n, salt) if verified else None


def compute_phase_time(rank: int, step: int, base: float, jitter: float,
                       seed: int = 0) -> float:
    """Duration of one solver/compute phase for one rank.

    ``base`` plus an exponential tail of scale ``jitter`` — heavy-tailed
    per-rank imbalance is what makes the *max* entry skew into a
    collective grow with the process count (the cascading effect global
    synchronization amplifies).  Deterministic per (seed, rank, step).
    """
    if base <= 0 and jitter <= 0:
        return 0.0
    ss = np.random.SeedSequence(entropy=seed, spawn_key=(rank, step))
    rng = np.random.Generator(np.random.PCG64(ss))
    extra = float(rng.exponential(jitter)) if jitter > 0 else 0.0
    return base + extra
