"""NAS BT-IO (full mode): diagonal multi-partitioning output (Section 5.3).

BT runs on ``P = q^2`` processes over an ``N^3`` grid of cells with 5
doubles per cell.  The grid divides into ``q`` z-slabs of ``q x q``
blocks; process ``(i, j)`` owns one block per slab, shifted diagonally so
no two of its blocks align — its file segments therefore spread across the
whole solution array.  This is the paper's pattern (c): direct file-area
partitioning is impossible and ParColl must switch to intermediate file
views.

The benchmark appends the full solution every ``wr_interval`` steps
(class C: 162^3 grid, 40 steps, every 5).  Sizes here are configurable so
verified tests stay small while model-mode sweeps scale up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

from repro.datatypes import BYTE, Struct, Subarray
from repro.errors import ConfigError
from repro.workloads.base import (AccessTimes, WorkloadIOStats,
                                  compute_phase_time, payload_for)

#: bytes per grid cell: 5 solution components, double precision
CELL_BYTES = 5 * 8


@dataclass(frozen=True)
class BTIOConfig:
    """BT-IO parameters. ``grid_points`` is N (the cube side in cells)."""

    grid_points: int = 24
    nsteps: int = 2
    #: solver time between dumps (the real benchmark runs 5 BT timesteps
    #: per dump); per-rank imbalance is base + Exp(jitter) seconds
    compute_seconds: float = 0.0
    compute_jitter: float = 0.0
    #: read every dump back collectively at the end and (in verified mode)
    #: compare against what was written — BT-IO full mode's verify phase
    verify_read: bool = False
    seed: int = 0
    filename: str = "btio.dat"
    hints: dict | None = None

    def __post_init__(self) -> None:
        if self.grid_points <= 0 or self.nsteps <= 0:
            raise ConfigError("grid_points and nsteps must be positive")
        if self.compute_seconds < 0 or self.compute_jitter < 0:
            raise ConfigError("compute times must be >= 0")

    @staticmethod
    def q_of(nprocs: int) -> int:
        q = int(round(math.sqrt(nprocs)))
        if q * q != nprocs:
            raise ConfigError(f"BT-IO needs a square process count, got {nprocs}")
        return q

    def cells_per_block(self, nprocs: int) -> int:
        q = self.q_of(nprocs)
        if self.grid_points % q:
            raise ConfigError(
                f"grid_points {self.grid_points} not divisible by q={q}"
            )
        side = self.grid_points // q
        return side ** 3

    def step_bytes(self) -> int:
        return self.grid_points ** 3 * CELL_BYTES

    def total_bytes(self, nprocs: int) -> int:
        return self.nsteps * self.step_bytes()


def bt_block_coords(q: int, rank: int) -> list[tuple[int, int, int]]:
    """Block coordinates (bz, by, bx) per slab for this rank.

    Diagonal multi-partitioning as in NPB BT: in slab ``s`` the process
    owns the block at ``x=(rank+s) mod q``, ``y=rank div q`` — a bijection
    per slab, diagonal across slabs.  Consecutive ranks own x-adjacent
    blocks, so a band of ``q`` consecutive ranks covers whole y-rows in
    every slab (which is what makes subgroup aggregation produce dense,
    coalescible writes under ParColl's intermediate views).
    """
    return [(s, rank // q, (rank % q + s) % q) for s in range(q)]


def bt_filetype(cfg: BTIOConfig, nprocs: int, rank: int):
    """This rank's q diagonal blocks as one derived datatype.

    The global array is (N, N, N) cells in C order (z, y, x) with
    CELL_BYTES per cell; each block is a Subarray, and the blocks combine
    as a Struct at displacement 0 (their extents all span the full array).
    """
    q = cfg.q_of(nprocs)
    n = cfg.grid_points
    side = n // q
    blocks = []
    for (bz, by, bx) in bt_block_coords(q, rank):
        blocks.append(Subarray(
            (n, n, n * CELL_BYTES),
            (side, side, side * CELL_BYTES),
            (bz * side, by * side, bx * side * CELL_BYTES),
            BYTE,
        ))
    if len(blocks) == 1:
        return blocks[0]
    return Struct([1] * len(blocks), [0] * len(blocks), blocks)


def btio_program(cfg: BTIOConfig, comm, io
                 ) -> Generator[Any, Any, WorkloadIOStats]:
    """One rank's BT-IO run: append the solution ``nsteps`` times."""
    verified = io.fs.params.store_data
    stats = WorkloadIOStats()
    ft = bt_filetype(cfg, comm.size, comm.rank)
    f = yield from io.open(comm, cfg.filename, hints=cfg.hints)
    f.set_view(0, BYTE, ft)
    per_step = ft.size
    t0 = comm.now
    for step in range(cfg.nsteps):
        solver = compute_phase_time(comm.rank, step, cfg.compute_seconds,
                                    cfg.compute_jitter, cfg.seed)
        if solver > 0:
            yield from comm.proc.compute(solver)
        data = payload_for(comm.rank, per_step, verified, salt=step)
        # successive steps land in successive filetype tiles (the view's
        # extent is the whole solution array), exactly like BT-IO appends
        tw = comm.now
        n = yield from f.write_all(data, nbytes=per_step)
        stats.io_seconds += comm.now - tw
        stats.bytes_written += n
    stats.write_times = AccessTimes(t0, comm.now)
    if cfg.verify_read:
        # BT-IO full mode ends with a read-back verification pass
        f.set_view(0, BYTE, ft)  # reset the individual file pointer
        t0 = comm.now
        for step in range(cfg.nsteps):
            tw = comm.now
            got = yield from f.read_all(per_step)
            stats.io_seconds += comm.now - tw
            stats.bytes_read += per_step
            if got is not None:
                import numpy as np

                expected = payload_for(comm.rank, per_step, True, salt=step)
                if not np.array_equal(got, expected):
                    raise AssertionError(
                        f"BT-IO verification failed: rank {comm.rank} "
                        f"step {step} read back different bytes"
                    )
        stats.read_times = AccessTimes(t0, comm.now)
    yield from f.close()
    return stats
