"""Workload configs, access patterns, and verified-mode data integrity."""

import numpy as np
import pytest

from repro.datatypes.flatten import validate_segments
from repro.errors import ConfigError
from repro.workloads import (BTIOConfig, FlashIOConfig, IORConfig,
                             TileIOConfig, btio_program, flash_io_program,
                             ior_program, tile_io_program)
from repro.workloads.base import deterministic_bytes
from repro.workloads.btio import CELL_BYTES, bt_block_coords, bt_filetype
from repro.workloads.tile_io import default_grid, tile_filetype
from tests.conftest import Stack


class TestIORConfig:
    def test_block_must_be_multiple_of_transfer(self):
        with pytest.raises(ConfigError):
            IORConfig(block_size=100, transfer_size=64)

    def test_total_bytes(self):
        cfg = IORConfig(block_size=1 << 20, transfer_size=1 << 18)
        assert cfg.total_bytes(4) == 4 << 20
        assert cfg.transfers_per_block == 4


class TestIORRun:
    def test_write_produces_correct_file(self):
        st = Stack(nprocs=4)
        cfg = IORConfig(block_size=1024, transfer_size=256,
                        filename="ior_t")

        def program(comm, io):
            return (yield from ior_program(cfg, comm, io))

        results = st.run(program)
        assert all(s.bytes_written == 1024 for s in results)
        got = st.file_bytes("ior_t")
        assert got.size == 4096
        for r in range(4):
            for t in range(4):
                seg = got[r * 1024 + t * 256:r * 1024 + (t + 1) * 256]
                np.testing.assert_array_equal(
                    seg, deterministic_bytes(r, 256, salt=t))

    def test_read_back(self):
        st = Stack(nprocs=2)
        cfg = IORConfig(block_size=512, transfer_size=512, read_back=True,
                        filename="ior_rb")

        def program(comm, io):
            return (yield from ior_program(cfg, comm, io))

        results = st.run(program)
        assert all(s.bytes_read == 512 for s in results)
        assert all(s.read_times.elapsed > 0 for s in results)


class TestTileIO:
    def test_default_grid_shapes(self):
        assert default_grid(4) == (2, 2)
        assert default_grid(8) == (2, 4)
        assert default_grid(512) == (16, 32)
        assert default_grid(7) == (1, 7)

    def test_grid_mismatch_rejected(self):
        cfg = TileIOConfig(grid=(2, 3))
        with pytest.raises(ConfigError):
            cfg.resolved_grid(4)

    def test_filetype_covers_tile(self):
        cfg = TileIOConfig(tile_rows=4, tile_cols=8, element_size=2,
                           grid=(2, 2))
        ft = tile_filetype(cfg, 4, 3)
        assert ft.size == cfg.tile_bytes == 4 * 8 * 2
        o, l = ft.segments()
        validate_segments(o, l)

    def test_tiles_partition_global_array(self):
        cfg = TileIOConfig(tile_rows=2, tile_cols=3, element_size=1,
                           grid=(2, 2))
        covered = set()
        for r in range(4):
            o, l = tile_filetype(cfg, 4, r).segments()
            for off, ln in zip(o.tolist(), l.tolist()):
                covered.update(range(off, off + ln))
        assert covered == set(range(4 * cfg.tile_bytes))

    def test_run_writes_dense_array(self):
        st = Stack(nprocs=4)
        cfg = TileIOConfig(tile_rows=4, tile_cols=4, element_size=2,
                           grid=(2, 2), filename="tile_t")

        def program(comm, io):
            return (yield from tile_io_program(cfg, comm, io))

        results = st.run(program)
        assert all(s.bytes_written == cfg.tile_bytes for s in results)
        got = st.file_bytes("tile_t").reshape(8, 16)
        for r in range(4):
            pr, pc = divmod(r, 2)
            tile = got[pr * 4:(pr + 1) * 4, pc * 8:(pc + 1) * 8]
            np.testing.assert_array_equal(tile.ravel(),
                                          deterministic_bytes(r, 32))

    def test_read_mode(self):
        st = Stack(nprocs=4)
        cfg = TileIOConfig(tile_rows=2, tile_cols=2, element_size=1,
                           grid=(2, 2), mode="both", filename="tile_rb")

        def program(comm, io):
            return (yield from tile_io_program(cfg, comm, io))

        results = st.run(program)
        for s in results:
            assert s.bytes_read == cfg.tile_bytes


class TestBTIO:
    def test_square_process_count_required(self):
        with pytest.raises(ConfigError):
            BTIOConfig.q_of(6)
        assert BTIOConfig.q_of(9) == 3

    def test_grid_divisibility(self):
        cfg = BTIOConfig(grid_points=10)
        with pytest.raises(ConfigError):
            cfg.cells_per_block(9)  # 10 % 3 != 0

    def test_diagonal_blocks_bijective_per_slab(self):
        q = 3
        for s in range(q):
            seen = set()
            for rank in range(q * q):
                coords = bt_block_coords(q, rank)[s]
                assert coords[0] == s
                seen.add(coords[1:])
            assert len(seen) == q * q

    def test_rank_blocks_are_diagonal(self):
        # no two blocks of one rank share an x position
        q = 4
        for rank in range(16):
            xs = [c[2] for c in bt_block_coords(q, rank)]
            assert len(set(xs)) == q

    def test_filetypes_partition_solution_array(self):
        cfg = BTIOConfig(grid_points=4)
        total = cfg.step_bytes()
        covered = set()
        for rank in range(4):
            o, l = bt_filetype(cfg, 4, rank).segments()
            validate_segments(o, l)
            for off, ln in zip(o.tolist(), l.tolist()):
                covered.update(range(off, off + ln))
        assert covered == set(range(total))

    def test_run_is_byte_correct(self):
        st = Stack(nprocs=4)
        cfg = BTIOConfig(grid_points=4, nsteps=2, filename="bt_t",
                         hints={"protocol": "parcoll", "parcoll_ngroups": 2})

        def program(comm, io):
            return (yield from btio_program(cfg, comm, io))

        results = st.run(program)
        per_step = cfg.step_bytes() // 4
        assert all(s.bytes_written == 2 * per_step for s in results)
        got = st.file_bytes("bt_t")
        assert got.size == 2 * cfg.step_bytes()
        # verify one rank's first block in step 0
        ft = bt_filetype(cfg, 4, 0)
        o, l = ft.segments()
        from repro.datatypes import gather_segments

        mine = gather_segments(got, o, l)
        np.testing.assert_array_equal(mine,
                                      deterministic_bytes(0, per_step, salt=0))

    def test_pattern_requires_intermediate_views(self):
        """BT extents interleave: the ParColl plan must switch modes."""
        from repro.parcoll import plan_partition

        cfg = BTIOConfig(grid_points=8)
        extents = []
        for rank in range(16):
            o, l = bt_filetype(cfg, 16, rank).segments()
            extents.append((int(o[0]), int(o[-1] + l[-1]), int(l.sum())))
        plan = plan_partition(extents, 4)
        assert plan.mode == "intermediate"


class TestFlashIO:
    def test_config_sizes(self):
        cfg = FlashIOConfig(nxb=4, nyb=4, nzb=4, blocks_per_proc=2, nvars=3)
        assert cfg.cells_per_block == 64
        assert cfg.checkpoint_bytes(2) == 2 * 2 * 64 * 8 * 3

    def test_checkpoint_write_correct_bytes(self):
        st = Stack(nprocs=4, stripe_size=1024)
        cfg = FlashIOConfig(nxb=2, nyb=2, nzb=2, blocks_per_proc=2, nvars=3,
                            filename="fl")

        def program(comm, io):
            return (yield from flash_io_program(cfg, comm, io))

        results = st.run(program)
        data_bytes = cfg.blocks_per_proc * cfg.cells_per_block * 8 * cfg.nvars
        for s in results:
            assert s.bytes_written >= data_bytes
            assert "checkpoint" in s.extra
        # check one variable dataset region byte-for-byte
        got = st.file_bytes("fl_chk")
        from repro.workloads.hdf5lite import Hdf5LiteWriter

        # dataset var00 base: recompute layout independently
        assert got.size > 0

    def test_all_three_outputs(self):
        st = Stack(nprocs=2, store_data=False)
        cfg = FlashIOConfig(nxb=2, nyb=2, nzb=2, blocks_per_proc=1, nvars=2,
                            plot_vars=1, plot_centered=True, plot_corner=True,
                            filename="fl3")

        def program(comm, io):
            return (yield from flash_io_program(cfg, comm, io))

        results = st.run(program)
        for s in results:
            assert {"checkpoint", "plot_centered", "plot_corner"} <= set(s.extra)
        assert st.fs.lookup("fl3_chk").size > 0
        assert st.fs.lookup("fl3_plt_cnt").size > 0
        assert st.fs.lookup("fl3_plt_crn").size > 0

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            FlashIOConfig(nxb=0)
        with pytest.raises(ConfigError):
            FlashIOConfig(nvars=0)


class TestBTIOVerifyRead:
    def test_read_back_matches_written(self):
        st = Stack(nprocs=4, stripe_size=1024)
        cfg = BTIOConfig(grid_points=8, nsteps=2, verify_read=True,
                         filename="bt_v",
                         hints={"protocol": "parcoll",
                                "parcoll_ngroups": 2})

        def program(comm, io):
            return (yield from btio_program(cfg, comm, io))

        results = st.run(program)
        for s in results:
            assert s.bytes_read == s.bytes_written
            assert s.read_times is not None
            assert s.read_times.elapsed > 0

    def test_verification_detects_corruption(self):
        """Corrupt the stored file between write and read: must raise."""
        st = Stack(nprocs=4, stripe_size=1024)
        cfg = BTIOConfig(grid_points=8, nsteps=1, verify_read=True,
                         filename="bt_c", hints={"protocol": "ext2ph"})

        def program(comm, io):
            return (yield from btio_program(cfg, comm, io))

        # run normally first, then corrupt the stored file and re-read
        st.run(program)
        lf = st.fs.lookup("bt_c")
        lf.store.write(5, np.array([0xFF], dtype=np.uint8) ^ lf.store.read(5, 1))

        def reread(comm, io):
            from repro.workloads.btio import bt_filetype
            from repro.datatypes import BYTE

            f = yield from io.open(comm, "bt_c")
            ft = bt_filetype(cfg, comm.size, comm.rank)
            f.set_view(0, BYTE, ft)
            got = yield from f.read_all(ft.size)
            yield from f.close()
            expected = deterministic_bytes(comm.rank, ft.size, salt=0)
            return bool(np.array_equal(got, expected))

        results = st.run(reread)
        assert not all(results)  # someone sees the corruption

    def test_model_mode_verify_read_times_only(self):
        st = Stack(nprocs=4, store_data=False)
        cfg = BTIOConfig(grid_points=8, nsteps=2, verify_read=True,
                         filename="bt_m", hints={"protocol": "ext2ph"})

        def program(comm, io):
            return (yield from btio_program(cfg, comm, io))

        results = st.run(program)
        assert all(s.bytes_read > 0 for s in results)
