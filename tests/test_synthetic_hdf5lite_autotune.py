"""Synthetic pattern generator, hdf5lite container, autotuner."""

import numpy as np
import pytest

from repro.errors import ConfigError, ParCollError
from repro.parcoll import plan_partition
from repro.parcoll.autotune import recommend_groups
from repro.workloads.base import deterministic_bytes
from repro.workloads.hdf5lite import (DATASET_ALIGNMENT, DATASET_META_BYTES,
                                      HEADER_BYTES, Hdf5LiteWriter)
from repro.workloads.synthetic import (SyntheticConfig, file_bytes_total,
                                       filetype_for, reference_file,
                                       rank_offsets_for_interleaved)
from tests.conftest import Stack


class TestSyntheticPatterns:
    @pytest.mark.parametrize("pattern", ["serial", "tiled", "interleaved",
                                         "random"])
    def test_patterns_are_disjoint_across_ranks(self, pattern):
        from repro.analysis import check_coverage

        cfg = SyntheticConfig(pattern=pattern, nprocs=6,
                              bytes_per_rank=1536, piece_bytes=128, seed=7)
        fts = [filetype_for(cfg, r) for r in range(6)]
        disps = [rank_offsets_for_interleaved(cfg, r)
                 if pattern == "interleaved" else 0 for r in range(6)]
        rep = check_coverage(fts, disps=disps)
        assert rep.disjoint, rep.summary()

    def test_serial_is_pattern_a(self):
        cfg = SyntheticConfig(pattern="serial", nprocs=4)
        extents = []
        for r in range(4):
            o, l = filetype_for(cfg, r).segments()
            extents.append((int(o[0]), int(o[-1] + l[-1]), int(l.sum())))
        plan = plan_partition(extents, 4)
        assert plan.mode == "direct"

    def test_interleaved_is_pattern_c(self):
        cfg = SyntheticConfig(pattern="interleaved", nprocs=4,
                              bytes_per_rank=1024, piece_bytes=128)
        extents = []
        for r in range(4):
            o, l = filetype_for(cfg, r).segments()
            disp = rank_offsets_for_interleaved(cfg, r)
            extents.append((int(o[0]) + disp, int(o[-1] + l[-1]) + disp,
                            int(l.sum())))
        plan = plan_partition(extents, 2)
        assert plan.mode == "intermediate"

    def test_random_everyone_owns_something(self):
        cfg = SyntheticConfig(pattern="random", nprocs=16,
                              bytes_per_rank=256, piece_bytes=256, seed=1)
        for r in range(16):
            assert filetype_for(cfg, r).size > 0

    def test_random_seed_changes_pattern(self):
        a = SyntheticConfig(pattern="random", nprocs=4, seed=1)
        b = SyntheticConfig(pattern="random", nprocs=4, seed=2)
        sa = filetype_for(a, 0).segments()[0]
        sb = filetype_for(b, 0).segments()[0]
        assert sa.shape != sb.shape or not np.array_equal(sa, sb)

    def test_reference_file_matches_manual_serial(self):
        cfg = SyntheticConfig(pattern="serial", nprocs=3, bytes_per_rank=64)
        ref = reference_file(cfg, deterministic_bytes)
        for r in range(3):
            np.testing.assert_array_equal(ref[r * 64:(r + 1) * 64],
                                          deterministic_bytes(r, 64))

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(pattern="weird")
        with pytest.raises(ConfigError):
            SyntheticConfig(nprocs=0)
        cfg = SyntheticConfig()
        with pytest.raises(ConfigError):
            filetype_for(cfg, 99)

    def test_file_bytes_total_upper_bound(self):
        for pattern in ("serial", "tiled", "interleaved", "random"):
            cfg = SyntheticConfig(pattern=pattern, nprocs=5,
                                  bytes_per_rank=640, piece_bytes=64, seed=3)
            total = file_bytes_total(cfg)
            for r in range(5):
                o, l = filetype_for(cfg, r).segments()
                disp = (rank_offsets_for_interleaved(cfg, r)
                        if pattern == "interleaved" else 0)
                assert int(o[-1] + l[-1]) + disp <= total


class TestHdf5Lite:
    def run_writer(self, fn, nprocs=4):
        st = Stack(nprocs=nprocs, stripe_size=2048)
        out = {}

        def program(comm, io):
            f = yield from io.open(comm, "h5")
            w = Hdf5LiteWriter(f, comm)
            yield from fn(w, comm, f)
            yield from f.close()
            out[comm.rank] = w

        st.run(program)
        return st, out

    def test_layout_deterministic_across_ranks(self):
        def body(w, comm, f):
            yield from w.write_header()
            yield from w.create_dataset("a", 1000)
            yield from w.create_dataset("b", 5000)

        _, writers = self.run_writer(body)
        layouts = {r: w.datasets for r, w in writers.items()}
        assert all(l == layouts[0] for l in layouts.values())

    def test_dataset_alignment_and_no_overlap(self):
        def body(w, comm, f):
            yield from w.create_dataset("a", 100)
            yield from w.create_dataset("b", 3000)
            yield from w.create_dataset("c", 1)

        _, writers = self.run_writer(body)
        w = writers[0]
        prev_end = HEADER_BYTES
        for name in ("a", "b", "c"):
            base, size = w.datasets[name]
            assert base % DATASET_ALIGNMENT == 0
            assert base >= prev_end + DATASET_META_BYTES
            prev_end = base + size

    def test_duplicate_dataset_rejected(self):
        def body(w, comm, f):
            yield from w.create_dataset("a", 10)
            yield from w.create_dataset("a", 10)

        with pytest.raises(ConfigError):
            self.run_writer(body)

    def test_collective_mode_metadata_only_rank0(self):
        st = Stack(nprocs=4, stripe_size=2048)

        def program(comm, io):
            f = yield from io.open(comm, "meta", hints={"protocol": "ext2ph"})
            w = Hdf5LiteWriter(f, comm)
            yield from w.create_dataset("a", 128)
            yield from f.close()

        st.run(program)
        io_times = [p.breakdown.get("io") for p in st.world.procs]
        assert io_times[0] > 0
        assert all(t == 0 for t in io_times[1:])

    def test_independent_mode_every_rank_writes_metadata(self):
        st = Stack(nprocs=4, stripe_size=2048)

        def program(comm, io):
            f = yield from io.open(comm, "meta2",
                                   hints={"protocol": "independent"})
            w = Hdf5LiteWriter(f, comm)
            yield from w.create_dataset("a", 128)
            yield from f.close()

        st.run(program)
        io_times = [p.breakdown.get("io") for p in st.world.procs]
        assert all(t > 0 for t in io_times)
        # the shared metadata region got lock-thrashed
        assert st.fs.lookup("meta2").locks.revocations >= 3


class TestAutotune:
    def serial_extents(self, n, block):
        return [(r * block, (r + 1) * block, block) for r in range(n)]

    def test_empty_pattern_single_group(self):
        assert recommend_groups([(-1, -1, 0)] * 8, 8, n_osts=8) == 1

    def test_recommendation_is_power_of_two(self):
        g = recommend_groups(self.serial_extents(64, 48 << 20), 64, n_osts=72)
        assert g & (g - 1) == 0

    def test_never_exceeds_nprocs_over_min_group(self):
        g = recommend_groups(self.serial_extents(32, 1 << 20), 32,
                             n_osts=72, min_group_size=4)
        assert g <= 8

    def test_small_files_stay_unpartitioned(self):
        # a file much smaller than one stripe per OST
        g = recommend_groups(self.serial_extents(64, 1024), 64, n_osts=72)
        assert g == 1

    def test_matches_swept_optimum_order_of_magnitude(self):
        """Tile-IO at 64 procs: swept optimum was 4-8 groups."""
        from repro.workloads.tile_io import TileIOConfig, tile_filetype

        cfg = TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64)
        extents = []
        for r in range(64):
            o, l = tile_filetype(cfg, 64, r).segments()
            extents.append((int(o[0]), int(o[-1] + l[-1]), int(l.sum())))
        g = recommend_groups(extents, 64, n_osts=72)
        assert 2 <= g <= 16

    def test_invalid_nprocs(self):
        with pytest.raises(ParCollError):
            recommend_groups([], 0, n_osts=8)
