"""The strongest correctness property in the suite: every protocol path
writes byte-identical files on every (disjoint) access pattern.

Patterns come from the synthetic generator (the paper's Figure 4 families
plus seeded random disjoint sets); protocols are independent I/O, the
ext2ph baseline, ParColl with several group counts and both
intermediate-view data paths, and the registry's rivals (node
aggregation, list I/O).  Hypothesis drives sizes and seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import BYTE
from repro.workloads.base import deterministic_bytes
from repro.workloads.synthetic import (SyntheticConfig, file_bytes_total,
                                       filetype_for, reference_file,
                                       rank_offsets_for_interleaved)
from tests.conftest import Stack

PROTOCOLS = [
    {"protocol": "independent"},
    {"protocol": "ext2ph"},
    {"protocol": "ext2ph", "cb_buffer_size": 512},
    {"protocol": "parcoll", "parcoll_ngroups": 2},
    {"protocol": "parcoll", "parcoll_ngroups": 4, "cb_buffer_size": 512},
    {"protocol": "parcoll", "parcoll_ngroups": 4,
     "parcoll_data_path": "logical"},
    {"protocol": "parcoll", "parcoll_ngroups": 8,
     "parcoll_intermediate_views": False},
    {"protocol": "nodeagg"},
    {"protocol": "nodeagg", "parcoll_ngroups": 2},
    {"protocol": "listio"},
    {"protocol": "listio:4"},
    {"protocol": "listio", "listio_max_segments": 2},
]


def run_pattern(cfg: SyntheticConfig, hints: dict) -> np.ndarray:
    st_ = Stack(nprocs=cfg.nprocs, stripe_size=512, n_osts=4,
                stripe_count=4)

    def program(comm, io):
        ft = filetype_for(cfg, comm.rank)
        disp = (rank_offsets_for_interleaved(cfg, comm.rank)
                if cfg.pattern == "interleaved" else 0)
        f = yield from io.open(comm, "synth", hints=hints)
        f.set_view(disp, BYTE, ft)
        data = deterministic_bytes(comm.rank, ft.size)
        yield from f.write_at_all(0, data)
        yield from f.close()

    st_.run(program)
    got = st_.file_bytes("synth")
    # pad to the reference size (trailing unwritten bytes are zero)
    full = np.zeros(file_bytes_total(cfg), dtype=np.uint8)
    full[: got.size] = got
    return full


@pytest.mark.parametrize("pattern", ["serial", "tiled", "interleaved",
                                     "random"])
@pytest.mark.parametrize("hints", PROTOCOLS,
                         ids=[str(h) for h in PROTOCOLS])
def test_every_protocol_matches_reference(pattern, hints):
    cfg = SyntheticConfig(pattern=pattern, nprocs=8, bytes_per_rank=2048,
                          piece_bytes=128, seed=3)
    expected = reference_file(cfg, deterministic_bytes)
    got = run_pattern(cfg, hints)
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=15, deadline=None)
@given(
    pattern=st.sampled_from(["serial", "tiled", "interleaved", "random"]),
    nprocs=st.sampled_from([2, 4, 6, 8]),
    bytes_per_rank=st.sampled_from([256, 1024, 3072]),
    piece=st.sampled_from([64, 256]),
    seed=st.integers(0, 10_000),
    proto=st.sampled_from(["ext2ph", "parcoll"]),
    ngroups=st.sampled_from([2, 3, 8]),
)
def test_random_patterns_roundtrip(pattern, nprocs, bytes_per_rank, piece,
                                   seed, proto, ngroups):
    cfg = SyntheticConfig(pattern=pattern, nprocs=nprocs,
                          bytes_per_rank=bytes_per_rank, piece_bytes=piece,
                          seed=seed)
    hints = {"protocol": proto}
    if proto == "parcoll":
        hints["parcoll_ngroups"] = ngroups
    expected = reference_file(cfg, deterministic_bytes)
    got = run_pattern(cfg, hints)
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("hints", PROTOCOLS[:5],
                         ids=[str(h) for h in PROTOCOLS[:5]])
def test_read_back_equivalence(hints):
    """Reads through every protocol return each rank's own bytes."""
    cfg = SyntheticConfig(pattern="interleaved", nprocs=4,
                          bytes_per_rank=1024, piece_bytes=128)

    st_ = Stack(nprocs=cfg.nprocs, stripe_size=512, n_osts=4, stripe_count=4)

    def program(comm, io):
        ft = filetype_for(cfg, comm.rank)
        disp = rank_offsets_for_interleaved(cfg, comm.rank)
        f = yield from io.open(comm, "rb", hints=hints)
        f.set_view(disp, BYTE, ft)
        data = deterministic_bytes(comm.rank, ft.size)
        yield from f.write_at_all(0, data)
        got = yield from f.read_at_all(0, ft.size)
        yield from f.close()
        return got

    results = st_.run(program)
    for rank, got in enumerate(results):
        np.testing.assert_array_equal(
            got, deterministic_bytes(rank,
                                     filetype_for(cfg, rank).size))


@pytest.mark.parametrize("pattern", ["serial", "tiled", "interleaved",
                                     "random"])
def test_registry_cross_product_under_oracle(pattern):
    """Every *registered* protocol, under the runtime oracle, writes the
    byte-identical reference file — the registry-wide differential
    property (new registrations are covered automatically)."""
    from repro.mpiio.protocols import available_protocols

    cfg = SyntheticConfig(pattern=pattern, nprocs=4, bytes_per_rank=1024,
                          piece_bytes=128, seed=7)
    expected = reference_file(cfg, deterministic_bytes)
    for name in available_protocols():
        hints = {"protocol": name, "parcoll_validate": True}
        if name in ("parcoll", "nodeagg"):
            hints["parcoll_ngroups"] = 2
        got = run_pattern(cfg, hints)
        np.testing.assert_array_equal(
            got, expected, err_msg=f"protocol {name!r} on {pattern!r}")
