"""End-to-end extended two-phase collective I/O: correctness and accounting."""

import numpy as np
import pytest

from repro.datatypes import BYTE, Subarray, Vector
from repro.errors import MPIIOError
from tests.conftest import Stack, rank_pattern

MODES = ("analytic", "detailed")


def written_reference_contiguous(nprocs, block):
    return np.concatenate([rank_pattern(r, block) for r in range(nprocs)])


@pytest.mark.parametrize("mode", MODES)
def test_contiguous_collective_write(mode):
    """IOR-style: each rank writes its block at rank*block."""
    st = Stack(nprocs=4, collective_mode=mode)
    block = 512

    def program(comm, io):
        f = yield from io.open(comm, "ior")
        data = rank_pattern(comm.rank, block)
        n = yield from f.write_at_all(comm.rank * block, data)
        yield from f.close()
        return n

    results = st.run(program)
    assert results == [block] * 4
    np.testing.assert_array_equal(st.file_bytes("ior"),
                                  written_reference_contiguous(4, block))


@pytest.mark.parametrize("mode", MODES)
def test_tiled_collective_write(mode):
    """2-D tiles (MPI-Tile-IO pattern): interleaved rows from all ranks."""
    st = Stack(nprocs=4, collective_mode=mode)
    # 2x2 process grid over a 8x8-byte array: tiles of 4x4
    rows = cols = 8
    tr = tc = 4

    def program(comm, io):
        pr, pc = divmod(comm.rank, 2)
        ft = Subarray((rows, cols), (tr, tc), (pr * tr, pc * tc), BYTE)
        f = yield from io.open(comm, "tiles")
        f.set_view(0, BYTE, ft)
        data = rank_pattern(comm.rank, tr * tc)
        yield from f.write_at_all(0, data)
        yield from f.close()

    st.run(program)
    got = st.file_bytes("tiles").reshape(rows, cols)
    for r in range(4):
        pr, pc = divmod(r, 2)
        tile = got[pr * tr:(pr + 1) * tr, pc * tc:(pc + 1) * tc]
        np.testing.assert_array_equal(tile.ravel(), rank_pattern(r, tr * tc))


@pytest.mark.parametrize("mode", MODES)
def test_collective_read_returns_written_bytes(mode):
    st = Stack(nprocs=4, collective_mode=mode)
    block = 300

    def program(comm, io):
        f = yield from io.open(comm, "rw")
        data = rank_pattern(comm.rank, block)
        yield from f.write_at_all(comm.rank * block, data)
        # read the block of the "next" rank
        peer = (comm.rank + 1) % comm.size
        got = yield from f.read_at_all(peer * block, block)
        yield from f.close()
        return got

    results = st.run(program)
    for r, got in enumerate(results):
        peer = (r + 1) % 4
        np.testing.assert_array_equal(got, rank_pattern(peer, block))


@pytest.mark.parametrize("cb", [64, 100, 256, 1 << 20])
def test_multiple_rounds_preserve_correctness(cb):
    """Small collective buffers force many exchange rounds."""
    st = Stack(nprocs=4)
    block = 333  # deliberately unaligned

    def program(comm, io):
        f = yield from io.open(comm, "rounds", hints={"cb_buffer_size": cb})
        data = rank_pattern(comm.rank, block)
        yield from f.write_at_all(comm.rank * block, data)
        yield from f.close()

    st.run(program)
    np.testing.assert_array_equal(st.file_bytes("rounds"),
                                  written_reference_contiguous(4, block))


def test_interleaved_strided_views():
    """Each rank owns every 4th byte-block (vector view) — worst case."""
    st = Stack(nprocs=4)
    nblocks, bsz = 16, 8

    def program(comm, io):
        ft = Vector(nblocks, bsz, 4 * bsz, BYTE)
        f = yield from io.open(comm, "strided",
                               hints={"cb_buffer_size": 128})
        f.set_view(comm.rank * bsz, BYTE, ft)
        data = rank_pattern(comm.rank, nblocks * bsz)
        yield from f.write_at_all(0, data)
        yield from f.close()

    st.run(program)
    got = st.file_bytes("strided").reshape(-1, bsz)
    assert got.shape[0] == 4 * nblocks
    for r in range(4):
        mine = got[r::4].ravel()
        np.testing.assert_array_equal(mine, rank_pattern(r, nblocks * bsz))


def test_unequal_sizes_and_idle_ranks():
    """Some ranks write nothing; others different amounts."""
    st = Stack(nprocs=4)
    sizes = [100, 0, 250, 50]
    offsets = [0, 100, 100, 350]

    def program(comm, io):
        f = yield from io.open(comm, "ragged")
        data = rank_pattern(comm.rank, sizes[comm.rank])
        yield from f.write_at_all(offsets[comm.rank], data,
                                  nbytes=sizes[comm.rank])
        yield from f.close()

    st.run(program)
    got = st.file_bytes("ragged")
    np.testing.assert_array_equal(got[0:100], rank_pattern(0, 100))
    np.testing.assert_array_equal(got[100:350], rank_pattern(2, 250))
    np.testing.assert_array_equal(got[350:400], rank_pattern(3, 50))


def test_all_ranks_empty_access():
    st = Stack(nprocs=4)

    def program(comm, io):
        f = yield from io.open(comm, "empty")
        n = yield from f.write_at_all(0, np.empty(0, np.uint8))
        yield from f.close()
        return n

    assert st.run(program) == [0, 0, 0, 0]


def test_model_mode_covers_extents_without_data():
    st = Stack(nprocs=4, store_data=False)
    block = 1 << 16

    def program(comm, io):
        f = yield from io.open(comm, "big")
        n = yield from f.write_at_all(comm.rank * block, nbytes=block)
        yield from f.close()
        return n

    assert st.run(program) == [block] * 4
    lf = st.fs.lookup("big")
    assert lf.tracker.covered_bytes == 4 * block
    assert lf.tracker.is_fully_covered(0, 4 * block)


def test_verified_mode_requires_data():
    st = Stack(nprocs=2)

    def program(comm, io):
        f = yield from io.open(comm, "nodata")
        yield from f.write_at_all(0, nbytes=64)

    with pytest.raises(MPIIOError):
        st.run(program)


def test_time_categories_populated():
    st = Stack(nprocs=4)

    def program(comm, io):
        ft = Subarray((8, 64), (4, 32), (4 * (comm.rank // 2),
                                         32 * (comm.rank % 2)), BYTE)
        f = yield from io.open(comm, "timed", hints={"cb_buffer_size": 64})
        f.set_view(0, BYTE, ft)
        yield from f.write_at_all(0, rank_pattern(comm.rank, 128))
        yield from f.close()

    st.run(program)
    for proc in st.world.procs:
        bd = proc.breakdown
        assert bd.get("sync") > 0
        assert bd.get("meta") > 0
    # at least the aggregators did file I/O
    assert any(p.breakdown.get("io") > 0 for p in st.world.procs)


def test_write_all_advances_file_pointer():
    st = Stack(nprocs=2)

    def program(comm, io):
        f = yield from io.open(comm, "fp")
        base = comm.rank * 128
        f.set_view(base, BYTE, BYTE)
        yield from f.write_all(rank_pattern(comm.rank, 64))
        yield from f.write_all(rank_pattern(comm.rank, 64)[::-1].copy())
        yield from f.close()

    st.run(program)
    got = st.file_bytes("fp")
    np.testing.assert_array_equal(got[0:64], rank_pattern(0, 64))
    np.testing.assert_array_equal(got[64:128], rank_pattern(0, 64)[::-1])
    np.testing.assert_array_equal(got[128:192], rank_pattern(1, 64))


def test_close_reports_breakdown_summary():
    st = Stack(nprocs=4)

    def program(comm, io):
        f = yield from io.open(comm, "summary")
        yield from f.write_at_all(comm.rank * 64, rank_pattern(comm.rank, 64))
        summary = yield from f.close()
        return summary

    results = st.run(program)
    assert results[1] is None
    s = results[0]
    assert "sync" in s and "meta" in s
    assert s["sync"]["max"] >= s["sync"]["mean"] >= 0


def test_operations_on_closed_file_rejected():
    st = Stack(nprocs=2)

    def program(comm, io):
        f = yield from io.open(comm, "closed")
        yield from f.close()
        yield from f.write_at_all(0, np.zeros(4, np.uint8))

    with pytest.raises(MPIIOError):
        st.run(program)


def test_explicit_aggregator_hints_respected():
    st = Stack(nprocs=4)

    def program(comm, io):
        f = yield from io.open(comm, "aggs",
                               hints={"cb_config_ranks": (3,)})
        yield from f.write_at_all(comm.rank * 64, rank_pattern(comm.rank, 64))
        yield from f.close()

    st.run(program)
    # only rank 3 should have touched the file system for data
    io_times = [p.breakdown.get("io") for p in st.world.procs]
    assert io_times[3] > 0
    assert io_times[0] == io_times[1] == io_times[2] == 0
    np.testing.assert_array_equal(st.file_bytes("aggs"),
                                  written_reference_contiguous(4, 64))


@pytest.mark.parametrize("mode", MODES)
def test_independent_protocol_writes_correctly(mode):
    st = Stack(nprocs=4, collective_mode=mode)

    def program(comm, io):
        f = yield from io.open(comm, "indep", hints={"protocol": "independent"})
        yield from f.write_at_all(comm.rank * 128, rank_pattern(comm.rank, 128))
        yield from f.close()

    st.run(program)
    np.testing.assert_array_equal(st.file_bytes("indep"),
                                  written_reference_contiguous(4, 128))


def test_independent_read_with_data_sieving():
    st = Stack(nprocs=2)

    def program(comm, io):
        f = yield from io.open(comm, "sieve")
        if comm.rank == 0:
            yield from f.write_at(0, rank_pattern(0, 512))
        yield from comm.barrier()
        ft = Vector(8, 16, 32, BYTE)  # every other 16-byte block
        f.set_view(0, BYTE, ft)
        out = yield from f.read_at(0, 128, data_sieving=True)
        yield from f.close()
        return out

    results = st.run(program)
    ref = rank_pattern(0, 512).reshape(-1, 16)[::2][:8].ravel()
    np.testing.assert_array_equal(results[0], ref)
    np.testing.assert_array_equal(results[1], ref)
