"""Data-sieving writes: correctness, fallback policy, read amplification."""

import numpy as np
import pytest

from repro.datatypes import BYTE, Vector
from repro.errors import MPIIOError
from repro.mpiio.data_sieving import SieveConfig, should_sieve
from tests.conftest import Stack, rank_pattern


def strided_segments(nseg, seg, stride):
    offs = np.arange(nseg, dtype=np.int64) * stride
    lens = np.full(nseg, seg, dtype=np.int64)
    return offs, lens


class TestPolicy:
    def test_dense_fragmented_access_sieves(self):
        segs = strided_segments(16, 8, 16)  # 50% dense
        assert should_sieve(segs, SieveConfig())

    def test_sparse_access_does_not(self):
        segs = strided_segments(16, 8, 1000)  # <1% dense
        assert not should_sieve(segs, SieveConfig())

    def test_few_extents_direct(self):
        segs = strided_segments(2, 8, 16)
        assert not should_sieve(segs, SieveConfig(min_extents=4))

    def test_invalid_config(self):
        with pytest.raises(MPIIOError):
            SieveConfig(buffer_size=0)
        with pytest.raises(MPIIOError):
            SieveConfig(min_density=0.0)


class TestSievedWrite:
    def test_preserves_existing_bytes_between_extents(self):
        """RMW must not clobber data in the holes."""
        st = Stack(nprocs=1)

        def program(comm, io):
            f = yield from io.open(comm, "rmw")
            # pre-fill the whole region
            base = rank_pattern(9, 256)
            yield from f.write_at(0, base)
            # strided overwrite: every other 16-byte block
            ft = Vector(8, 16, 32, BYTE)
            f.set_view(0, BYTE, ft)
            yield from f.write_at(0, rank_pattern(1, 128), data_sieving=True)
            yield from f.close()

        st.run(program)
        got = st.file_bytes("rmw")
        new = rank_pattern(1, 128).reshape(8, 16)
        old = rank_pattern(9, 256).reshape(8, 32)
        for i in range(8):
            np.testing.assert_array_equal(got[i * 32:i * 32 + 16], new[i])
            np.testing.assert_array_equal(got[i * 32 + 16:(i + 1) * 32],
                                          old[i][16:])

    def test_equivalent_to_direct_write(self):
        def run(sieving):
            st = Stack(nprocs=2)

            def program(comm, io):
                f = yield from io.open(comm, "eq")
                ft = Vector(16, 8, 16 * 2, BYTE)  # interleave two ranks
                f.set_view(comm.rank * 8, BYTE, ft)
                yield from f.write_at(0, rank_pattern(comm.rank, 128),
                                      data_sieving=sieving)
                yield from f.close()

            st.run(program)
            return st.file_bytes("eq")

        # NOTE: ranks' sieve windows overlap here, so run them one at a
        # time per the nonatomic-semantics contract
        direct = run(False)
        # sieved single-writer run must produce identical bytes
        st = Stack(nprocs=1)

        def program(comm, io):
            f = yield from io.open(comm, "eq1")
            for r in range(2):
                ft = Vector(16, 8, 16 * 2, BYTE)
                f.set_view(r * 8, BYTE, ft)
                yield from f.write_at(0, rank_pattern(r, 128),
                                      data_sieving=True)
            yield from f.close()

        st.run(program)
        np.testing.assert_array_equal(st.file_bytes("eq1"), direct)

    def test_read_amplification_visible(self):
        """Sieving reads the windows it rewrites."""
        st = Stack(nprocs=1, stripe_size=4096)

        def program(comm, io):
            f = yield from io.open(comm, "amp")
            ft = Vector(32, 8, 16, BYTE)
            f.set_view(0, BYTE, ft)
            yield from f.write_at(0, rank_pattern(0, 256), data_sieving=True)
            yield from f.close()

        st.run(program)
        assert st.fs.bytes_read > 0  # the RMW fetches
        assert st.fs.bytes_written >= 256

    def test_sparse_access_falls_back_to_direct(self):
        st = Stack(nprocs=1, stripe_size=1 << 20)

        def program(comm, io):
            f = yield from io.open(comm, "fb")
            ft = Vector(8, 8, 4096, BYTE)  # ~0.2% dense
            f.set_view(0, BYTE, ft)
            yield from f.write_at(0, rank_pattern(0, 64), data_sieving=True)
            yield from f.close()

        st.run(program)
        # no read amplification on the direct path
        assert st.fs.bytes_read == 0
        got = st.file_bytes("fb")
        ref = rank_pattern(0, 64).reshape(8, 8)
        for i in range(8):
            np.testing.assert_array_equal(got[i * 4096:i * 4096 + 8], ref[i])

    def test_model_mode(self):
        st = Stack(nprocs=1, store_data=False)

        def program(comm, io):
            f = yield from io.open(comm, "mm")
            ft = Vector(16, 256, 512, BYTE)
            f.set_view(0, BYTE, ft)
            n = yield from f.write_at(0, nbytes=16 * 256, data_sieving=True)
            yield from f.close()
            return n

        (n,) = st.run(program)
        assert n == 4096
