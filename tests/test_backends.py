"""Collective-fidelity backends: registry, hybrid mode, overrides, and
the one-path-per-call regression guard."""

import numpy as np
import pytest

from repro.cluster import MachineConfig, NetworkParams
from repro.errors import MPIError, MPIIOError, ParCollError
from repro.datatypes import BYTE, Vector
from repro.simmpi import (HybridBackend, World, available_backends,
                          resolve_backend)
from repro.simmpi.world import Communicator
from tests.conftest import Stack, rank_pattern

ALL_MODES = ("analytic", "detailed", "hybrid:sync=analytic,default=detailed")


def make_world(nprocs=8, mode="analytic"):
    return World(MachineConfig(nprocs=nprocs, cores_per_node=2),
                 net_params=NetworkParams(), collective_mode=mode)


# ----------------------------------------------------------------------
# registry and spec parsing
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert {"analytic", "detailed", "hybrid"} <= set(available_backends())


def test_unknown_backend_error_lists_registered():
    with pytest.raises(MPIError) as exc:
        resolve_backend("telepathic")
    msg = str(exc.value)
    for name in available_backends():
        assert name in msg


def test_world_rejects_unknown_mode():
    with pytest.raises(MPIError):
        make_world(4, "telepathic")


def test_leaf_backends_reject_options():
    with pytest.raises(MPIError):
        resolve_backend("analytic:sync=detailed")


@pytest.mark.parametrize("spec", [
    "hybrid:sync=banana",          # unknown fidelity
    "hybrid:sync",                 # missing '='
    "hybrid:default=hybrid",       # hybrid is not a leaf fidelity
    "hybrid:=analytic",            # empty category
])
def test_hybrid_spec_parse_errors(spec):
    with pytest.raises(MPIError):
        resolve_backend(spec)


def test_hybrid_describe_is_canonical_and_round_trips():
    spec = "hybrid:io=detailed,sync=analytic"
    canonical = resolve_backend(spec).describe()
    assert canonical.startswith("hybrid:")
    assert resolve_backend(canonical).describe() == canonical


def test_world_collective_mode_property():
    for mode in ("analytic", "detailed"):
        assert make_world(2, mode).collective_mode == mode
    w = make_world(2, "hybrid:sync=analytic,default=detailed")
    assert w.collective_mode.startswith("hybrid:")
    assert "sync=analytic" in w.collective_mode


def test_resolve_backend_instance_passthrough():
    b = HybridBackend({"sync": "analytic"}, default="detailed")
    assert resolve_backend(b) is b
    assert b.fidelity("sync") == "analytic"
    assert b.fidelity("exchange") == "detailed"
    assert b.fidelity("io") == "detailed"


# ----------------------------------------------------------------------
# hybrid honors per-category fidelity (detailed p2p traffic only where
# the table says 'detailed')
# ----------------------------------------------------------------------
def _collective_storm(comm, category):
    yield from comm.barrier(category=category)
    yield from comm.allreduce(comm.rank, category=category)
    yield from comm.allgather(comm.rank, category=category)


def test_hybrid_analytic_categories_send_no_messages():
    w = make_world(8, "hybrid:sync=analytic,default=detailed")
    w.launch(lambda comm: _collective_storm(comm, "sync"))
    assert w.network.messages_sent == 0


def test_hybrid_detailed_categories_send_messages():
    w = make_world(8, "hybrid:sync=analytic,default=detailed")
    w.launch(lambda comm: _collective_storm(comm, "exchange"))
    assert w.network.messages_sent > 0


def test_hybrid_charges_the_callers_category():
    w = make_world(8, "hybrid:sync=analytic,default=detailed")
    w.launch(lambda comm: _collective_storm(comm, "exchange"))
    for p in w.procs:
        assert p.breakdown.get("exchange") > 0
        assert p.breakdown.get("sync") == 0


# ----------------------------------------------------------------------
# regression: exactly one execution path constructed per collective call
# ----------------------------------------------------------------------
def _count_paths(monkeypatch, mode, nprocs=4):
    from repro.simmpi import collectives_detailed as detailed

    counts = {"analytic": 0, "detailed": 0}
    real_site = Communicator._analytic_site
    real_allreduce = detailed.allreduce

    def counting_site(self, *a, **kw):
        counts["analytic"] += 1
        return real_site(self, *a, **kw)

    def counting_allreduce(*a, **kw):
        counts["detailed"] += 1
        return real_allreduce(*a, **kw)

    monkeypatch.setattr(Communicator, "_analytic_site", counting_site)
    monkeypatch.setattr(detailed, "allreduce", counting_allreduce)

    w = make_world(nprocs, mode)

    def program(comm):
        yield from comm.allreduce(comm.rank)

    w.launch(program)
    return counts


def test_analytic_mode_never_constructs_detailed_path(monkeypatch):
    counts = _count_paths(monkeypatch, "analytic")
    assert counts["analytic"] == 4   # one site entry per rank
    assert counts["detailed"] == 0


def test_detailed_mode_never_constructs_analytic_path(monkeypatch):
    counts = _count_paths(monkeypatch, "detailed")
    assert counts["detailed"] == 4
    assert counts["analytic"] == 0


def test_analytic_collectives_produce_no_network_traffic():
    w = make_world(8, "analytic")

    def program(comm):
        yield from comm.barrier()
        yield from comm.allreduce(comm.rank)
        yield from comm.allgather(comm.rank)

    w.launch(program)
    assert w.network.messages_sent == 0


# ----------------------------------------------------------------------
# backend overrides: with_backend, split inheritance, IOHints
# ----------------------------------------------------------------------
def test_with_backend_overrides_only_the_clone():
    w = make_world(4, "analytic")

    def program(comm):
        det = comm.with_backend("detailed")
        assert det.backend.describe() == "detailed"
        assert comm.backend.describe() == "analytic"
        # the clone shares group state and sequencing with the original
        assert det.desc is comm.desc
        yield from det.allreduce(comm.rank)

    w.launch(program)
    assert w.network.messages_sent > 0


def test_split_inherits_backend_override():
    w = make_world(4, "analytic")

    def program(comm):
        det = comm.with_backend("detailed")
        sub = yield from det.split(color=comm.rank % 2)
        assert sub.backend.describe() == "detailed"
        yield from sub.allreduce(comm.rank)

    w.launch(program)
    assert w.network.messages_sent > 0


def test_with_backend_shares_op_sequencing():
    """Interleaving collectives across the base handle and an override
    clone must keep op sequence numbers distinct (no site aliasing)."""
    w = make_world(4, "analytic")
    got = {}

    def program(comm):
        other = comm.with_backend("analytic")
        a = yield from comm.allreduce(comm.rank)
        b = yield from other.allreduce(comm.rank * 10)
        c = yield from comm.allreduce(1)
        got[comm.rank] = (a, b, c)

    w.launch(program)
    assert all(v == (6, 60, 4) for v in got.values())


def test_hints_collective_mode_reroutes_file_collectives():
    st = Stack(nprocs=4, collective_mode="analytic")

    def program(comm, io):
        f = yield from io.open(comm, "hinted", hints={
            "protocol": "ext2ph", "collective_mode": "detailed"})
        assert f.comm.backend.describe() == "detailed"
        assert comm.backend.describe() == "analytic"
        yield from f.write_at_all(comm.rank * 64, rank_pattern(comm.rank, 64))
        yield from f.close()

    st.run(program)
    # the file's collectives ran detailed even though the world is analytic
    assert st.world.network.messages_sent > 0


def test_hints_reject_unknown_collective_mode():
    st = Stack(nprocs=2)

    def program(comm, io):
        with pytest.raises(MPIIOError):
            yield from io.open(comm, "bad", hints={
                "collective_mode": "telepathic"})
        yield from comm.barrier()

    st.run(program)


# ----------------------------------------------------------------------
# three-way equivalence: data movement and first-order timing
# ----------------------------------------------------------------------
def _run_tileio(mode):
    st = Stack(nprocs=8, collective_mode=mode)
    block = 512

    def program(comm, io):
        f = yield from io.open(comm, "eq", hints={
            "protocol": "ext2ph", "cb_buffer_size": 1024})
        yield from f.write_at_all(comm.rank * block,
                                  rank_pattern(comm.rank, block))
        got = yield from f.read_at_all(comm.rank * block, block)
        yield from f.close()
        return got

    reads = st.run(program)
    return st.file_bytes("eq"), reads, st.world.engine.now


def test_backends_agree_on_data_movement():
    ref_bytes, ref_reads, _ = _run_tileio("analytic")
    for mode in ALL_MODES[1:]:
        got_bytes, got_reads, _ = _run_tileio(mode)
        np.testing.assert_array_equal(got_bytes, ref_bytes)
        for a, b in zip(ref_reads, got_reads):
            np.testing.assert_array_equal(a, b)


def test_backends_agree_on_first_order_time():
    """The analytic costs are calibrated to the detailed schedules, so
    end-to-end times agree within a small factor across backends."""
    times = {m: _run_tileio(m)[2] for m in ALL_MODES}
    t_det = times["detailed"]
    assert t_det > 0
    for mode, t in times.items():
        assert 0.5 < t / t_det < 2.0, (mode, t, t_det)


# ----------------------------------------------------------------------
# parcoll replan guard: stationarity contract under replan='once'
# ----------------------------------------------------------------------
def _fragmented_program(comm, io, replan, second_view):
    # rank r owns two 16-byte blocks inside its private 64-byte band:
    # fragmented per rank, rank-monotone overall -> a *direct* plan
    f = yield from io.open(comm, "frag", hints={
        "protocol": "parcoll", "parcoll_ngroups": 2,
        "parcoll_replan": replan})
    f.set_view(comm.rank * 64, BYTE, Vector(2, 16, 32, BYTE))
    yield from f.write_at_all(0, rank_pattern(comm.rank, 32))
    if second_view is not None:
        f.set_view(comm.rank * 64, BYTE, second_view)
        yield from f.write_at_all(0, rank_pattern(comm.rank, 16))
    yield from f.close()


def test_replan_once_rejects_fragmented_extent_drift():
    st = Stack(nprocs=4)
    with pytest.raises(ParCollError, match="non-contiguous access changed"):
        st.run(lambda comm, io: _fragmented_program(
            comm, io, "once", Vector(2, 8, 32, BYTE)))


def test_replan_always_allows_extent_drift():
    st = Stack(nprocs=4)
    st.run(lambda comm, io: _fragmented_program(
        comm, io, "always", Vector(2, 8, 32, BYTE)))
    got = st.file_bytes("frag")
    # second (8-byte-block) write overlays the first within each band
    for r in range(4):
        band = got[r * 64:r * 64 + 48]
        second = rank_pattern(r, 16)
        np.testing.assert_array_equal(band[0:8], second[0:8])
        np.testing.assert_array_equal(band[32:40], second[8:16])


def test_replan_once_allows_contiguous_drift():
    """Flash-style: successive contiguous datasets at moving offsets and
    sizes reuse the cached grouping (the rank-monotone contract)."""
    st = Stack(nprocs=4)

    def program(comm, io):
        f = yield from io.open(comm, "contig", hints={
            "protocol": "parcoll", "parcoll_ngroups": 2,
            "parcoll_replan": "once"})
        yield from f.write_at_all(comm.rank * 100,
                                  rank_pattern(comm.rank, 100))
        yield from f.write_at_all(400 + comm.rank * 50,
                                  rank_pattern(comm.rank + 1, 50))
        yield from f.close()

    st.run(program)
    got = st.file_bytes("contig")
    for r in range(4):
        np.testing.assert_array_equal(got[r * 100:(r + 1) * 100],
                                      rank_pattern(r, 100))
        np.testing.assert_array_equal(got[400 + r * 50:400 + (r + 1) * 50],
                                      rank_pattern(r + 1, 50))


def test_replan_auto_replans_on_fragmented_extent_drift():
    """'auto' converts the 'once' stationarity error into a global
    re-plan and produces exactly the bytes 'always' produces."""
    st_auto = Stack(nprocs=4)
    st_auto.run(lambda comm, io: _fragmented_program(
        comm, io, "auto", Vector(2, 8, 32, BYTE)))
    st_always = Stack(nprocs=4)
    st_always.run(lambda comm, io: _fragmented_program(
        comm, io, "always", Vector(2, 8, 32, BYTE)))
    np.testing.assert_array_equal(st_auto.file_bytes("frag"),
                                  st_always.file_bytes("frag"))


def test_replan_auto_reuses_plan_for_stationary_pattern():
    """While the pattern holds, 'auto' skips the extent allgather and
    regrouping — the repeated call costs less than under 'always'."""
    def program(replan):
        def run(comm, io):
            f = yield from io.open(comm, "rep", hints={
                "protocol": "parcoll", "parcoll_ngroups": 2,
                "parcoll_replan": replan})
            f.set_view(comm.rank * 64, BYTE, Vector(2, 16, 32, BYTE))
            for _ in range(6):  # same fragmented view every call
                yield from f.write_at_all(0, rank_pattern(comm.rank, 32))
            yield from f.close()
        return run

    elapsed = {}
    payload = {}
    for replan in ("auto", "always", "once"):
        st = Stack(nprocs=4)
        st.run(program(replan))
        elapsed[replan] = st.world.engine.now
        payload[replan] = st.file_bytes("rep")
    np.testing.assert_array_equal(payload["auto"], payload["always"])
    np.testing.assert_array_equal(payload["auto"], payload["once"])
    # auto pays one tiny agreement allreduce per call but skips the
    # allgather + split; it must stay cheaper than full replanning
    # (no ordering vs 'once': drifted subgroups change OST contention)
    assert elapsed["auto"] < elapsed["always"]


def test_hints_reject_unknown_replan_mode():
    from repro.mpiio.hints import IOHints

    with pytest.raises(MPIIOError, match="parcoll_replan"):
        IOHints(parcoll_replan="never")


# ----------------------------------------------------------------------
# backend symmetry: rank-divergent specs fail fast instead of hanging
# ----------------------------------------------------------------------
def test_rank_divergent_backend_override_raises():
    st = Stack(nprocs=4)

    def program(comm, io):
        c = comm.with_backend("detailed") if comm.rank == 0 else comm
        yield from c.barrier()

    with pytest.raises(ParCollError, match="backend divergence"):
        st.run(program)


def test_divergence_error_names_ranks_and_backends():
    st = Stack(nprocs=4)

    def program(comm, io):
        c = comm.with_backend("detailed") if comm.rank % 2 else comm
        yield from c.allreduce(1, nbytes=8)

    with pytest.raises(ParCollError) as excinfo:
        st.run(program)
    msg = str(excinfo.value)
    assert "detailed" in msg and "analytic" in msg
    assert "with_backend" in msg  # tells the user how to fix it


def test_symmetric_backend_override_is_not_divergent():
    st = Stack(nprocs=4)

    def program(comm, io):
        det = comm.with_backend("detailed")
        yield from det.barrier()
        yield from comm.barrier()  # back on the world backend: also fine
        return comm.rank

    assert st.run(program) == [0, 1, 2, 3]


def test_divergence_check_spans_successive_collectives():
    """The ledger keys on the op sequence: symmetric call #1 must not
    mask a divergent call #2."""
    st = Stack(nprocs=4)

    def program(comm, io):
        yield from comm.barrier()
        c = comm.with_backend("detailed") if comm.rank == 3 else comm
        yield from c.barrier()

    with pytest.raises(ParCollError, match="backend divergence"):
        st.run(program)
