"""Unit tests of the byte-level file-content oracles (layer 1)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.validate import (ORACLE_VERSION, OracleDiff, ShadowFile,
                            sequential_golden)


def segs(*pairs):
    offs = np.array([o for o, _ in pairs], dtype=np.int64)
    lens = np.array([l for _, l in pairs], dtype=np.int64)
    return offs, lens


class TestSequentialGolden:
    def test_applies_writes_in_order(self):
        w1 = (segs((0, 4)), np.arange(4, dtype=np.uint8) + 1)
        w2 = (segs((2, 4)), np.full(4, 9, dtype=np.uint8))
        out = sequential_golden(8, [w1, w2])
        np.testing.assert_array_equal(out, [1, 2, 9, 9, 9, 9, 0, 0])

    def test_scattered_segments_follow_data_order(self):
        w = (segs((6, 2), (0, 2)), np.array([1, 2, 3, 4], dtype=np.uint8))
        out = sequential_golden(8, [w])
        np.testing.assert_array_equal(out, [3, 4, 0, 0, 0, 0, 1, 2])

    def test_rejects_mismatched_data_size(self):
        with pytest.raises(ValidationError, match="golden_writer"):
            sequential_golden(8, [(segs((0, 4)),
                                   np.zeros(3, dtype=np.uint8))])


class TestShadowFile:
    def test_verified_bytes_and_diff_clean(self):
        sh = ShadowFile("f", verified=True)
        sh.record(segs((0, 3)), np.array([7, 8, 9], dtype=np.uint8))
        sh.record(segs((5, 2)), np.array([1, 2], dtype=np.uint8))
        assert sh.size == 7
        np.testing.assert_array_equal(sh.bytes, [7, 8, 9, 0, 0, 1, 2])
        assert sh.diff_bytes(sh.bytes) is None

    def test_diff_reports_first_divergence(self):
        sh = ShadowFile("f", verified=True)
        sh.record(segs((0, 4)), np.array([1, 2, 3, 4], dtype=np.uint8))
        actual = np.array([1, 2, 9, 4], dtype=np.uint8)
        diff = sh.diff_bytes(actual)
        assert diff is not None
        assert (diff.kind, diff.offset, diff.nbytes) == ("bytes", 2, 1)
        with pytest.raises(ValidationError, match="file_oracle"):
            diff.raise_()

    def test_short_actual_compares_as_zeros(self):
        sh = ShadowFile("f", verified=True)
        sh.record(segs((0, 2), (4, 2)),
                  np.array([5, 6, 0, 0], dtype=np.uint8))
        # the fs never materialized the trailing zero bytes
        assert sh.diff_bytes(np.array([5, 6], dtype=np.uint8)) is None

    def test_verified_record_requires_data(self):
        sh = ShadowFile("f", verified=True)
        with pytest.raises(ValidationError, match="without data"):
            sh.record(segs((0, 4)), None)

    def test_model_mode_tracks_extents(self):
        sh = ShadowFile("f", verified=False)
        sh.record(segs((0, 4)), None)
        sh.record(segs((4, 4)), None)
        offs, lens = sh.extents
        np.testing.assert_array_equal(offs, [0])
        np.testing.assert_array_equal(lens, [8])
        assert sh.diff_extents([0], [8]) is None
        diff = sh.diff_extents([0], [6])
        assert diff is not None and diff.kind == "extents"

    def test_expected_read_returns_recorded_bytes(self):
        sh = ShadowFile("f", verified=True)
        sh.record(segs((2, 3)), np.array([4, 5, 6], dtype=np.uint8))
        out = sh.expected_read(segs((0, 4)))
        np.testing.assert_array_equal(out, [0, 0, 4, 5])

    def test_oracle_diff_round_trips_and_describes(self):
        d = OracleDiff(file="f", kind="bytes", offset=3, nbytes=2,
                       expected=[1, 2], got=[1, 9])
        assert d.to_dict()["offset"] == 3
        assert "offset 3" in d.describe() and "'f'" in d.describe()

    def test_oracle_version_is_an_int(self):
        assert isinstance(ORACLE_VERSION, int) and ORACLE_VERSION >= 1
