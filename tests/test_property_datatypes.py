"""Property-based tests (hypothesis) for segment algebra and datatypes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (BYTE, Contiguous, Indexed, Subarray, Vector,
                             coalesce, gather_segments, scatter_segments,
                             validate_segments)
from repro.datatypes.flatten import intersect_range, total_bytes

# -- strategies -----------------------------------------------------------

segment_lists = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 40)), min_size=0, max_size=30
)


def covered_set(offsets, lengths):
    s = set()
    for o, l in zip(offsets.tolist(), lengths.tolist()):
        s.update(range(o, o + l))
    return s


# -- coalesce -------------------------------------------------------------

@given(segment_lists)
def test_coalesce_output_is_canonical(raw):
    offs = [o for o, _ in raw]
    lens = [l for _, l in raw]
    o, l = coalesce(offs, lens)
    validate_segments(o, l, allow_adjacent=False)


@given(segment_lists)
def test_coalesce_preserves_covered_bytes(raw):
    offs = np.array([o for o, _ in raw], dtype=np.int64)
    lens = np.array([l for _, l in raw], dtype=np.int64)
    o, l = coalesce(offs, lens)
    assert covered_set(o, l) == covered_set(offs, lens)


@given(segment_lists)
def test_coalesce_idempotent(raw):
    o1, l1 = coalesce([o for o, _ in raw], [l for _, l in raw])
    o2, l2 = coalesce(o1, l1)
    np.testing.assert_array_equal(o1, o2)
    np.testing.assert_array_equal(l1, l2)


# -- intersect_range ------------------------------------------------------

@given(segment_lists, st.integers(0, 600), st.integers(0, 600))
def test_intersect_is_subset_and_exact(raw, a, b):
    lo, hi = min(a, b), max(a, b)
    o0, l0 = coalesce([o for o, _ in raw], [l for _, l in raw])
    o, l = intersect_range((o0, l0), lo, hi)
    validate_segments(o, l)
    full = covered_set(o0, l0)
    assert covered_set(o, l) == {x for x in full if lo <= x < hi}


@given(segment_lists, st.lists(st.integers(0, 600), min_size=2, max_size=6))
def test_disjoint_ranges_partition_segments(raw, cuts):
    """Splitting a segment list at cut points loses and duplicates nothing."""
    o0, l0 = coalesce([o for o, _ in raw], [l for _, l in raw])
    bounds = sorted(set(cuts) | {0, 1000})
    pieces = [intersect_range((o0, l0), lo, hi)
              for lo, hi in zip(bounds[:-1], bounds[1:])]
    union = set()
    total = 0
    for o, l in pieces:
        cov = covered_set(o, l)
        assert union.isdisjoint(cov)
        union |= cov
        total += total_bytes((o, l))
    assert union == covered_set(o0, l0)
    assert total == total_bytes((o0, l0))


# -- datatype invariants ---------------------------------------------------

@given(st.integers(0, 20), st.integers(0, 10), st.integers(-15, 15))
def test_vector_flattened_size_matches(count, blocklength, stride):
    if count > 0 and blocklength > 0 and abs(stride) < blocklength:
        stride = blocklength  # avoid overlapping typemaps (invalid in MPI too)
    t = Vector(count, blocklength, stride, BYTE)
    assert total_bytes(t.segments()) == t.size


@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 100)),
                min_size=0, max_size=10))
def test_indexed_size_invariant(blocks):
    # space displacements so blocks never overlap
    bls, disps, cursor = [], [], 0
    for bl, gap in blocks:
        disps.append(cursor + gap)
        bls.append(bl)
        cursor += gap + bl
    t = Indexed(bls, disps, BYTE)
    assert total_bytes(t.segments()) == t.size == sum(bls)


@settings(max_examples=60)
@given(st.data())
def test_subarray_matches_numpy_reference(data):
    ndim = data.draw(st.integers(1, 3))
    shape = tuple(data.draw(st.integers(1, 8)) for _ in range(ndim))
    subsizes, starts = [], []
    for n in shape:
        sub = data.draw(st.integers(0, n))
        start = data.draw(st.integers(0, n - sub))
        subsizes.append(sub)
        starts.append(start)
    t = Subarray(shape, tuple(subsizes), tuple(starts), BYTE)
    buf = np.arange(np.prod(shape), dtype=np.uint8)
    arr = buf.reshape(shape)
    sl = tuple(slice(s, s + z) for s, z in zip(starts, subsizes))
    expected = arr[sl].ravel()
    o, l = t.segments()
    np.testing.assert_array_equal(gather_segments(buf, o, l), expected)


@settings(max_examples=60)
@given(st.integers(1, 50), st.integers(1, 20), st.data())
def test_gather_scatter_roundtrip(nsegs, maxlen, data):
    # build disjoint segments
    offs, cursor = [], 0
    lens = []
    for _ in range(nsegs):
        gap = data.draw(st.integers(0, 10))
        ln = data.draw(st.integers(1, maxlen))
        offs.append(cursor + gap)
        lens.append(ln)
        cursor += gap + ln
    offs = np.array(offs, dtype=np.int64)
    lens = np.array(lens, dtype=np.int64)
    rng = np.random.default_rng(0)
    buf = rng.integers(0, 256, size=cursor + 5, dtype=np.uint8)
    packed = gather_segments(buf, offs, lens)
    out = np.zeros_like(buf)
    scatter_segments(out, offs, lens, packed)
    packed2 = gather_segments(out, offs, lens)
    np.testing.assert_array_equal(packed, packed2)
