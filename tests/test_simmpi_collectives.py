"""Collective correctness in analytic and detailed modes, and agreement."""

import numpy as np
import pytest

from repro.cluster import MachineConfig, NetworkParams
from repro.simmpi import MAX, MIN, SUM, World

MODES = ("analytic", "detailed")
SIZES = (1, 2, 3, 4, 7, 8)


def make_world(nprocs, mode):
    return World(MachineConfig(nprocs=nprocs, cores_per_node=2),
                 net_params=NetworkParams(),
                 collective_mode=mode)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_barrier_synchronizes(mode, p):
    w = make_world(p, mode)
    exits = {}

    def program(comm):
        # rank r works r seconds before the barrier
        yield from comm.proc.compute(float(comm.rank))
        yield from comm.barrier()
        exits[comm.rank] = comm.now

    w.launch(program)
    # nobody leaves before the slowest rank arrives
    assert all(t >= p - 1 for t in exits.values())


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_root_value(mode, p, root):
    root = 0 if root == 0 else p - 1
    w = make_world(p, mode)
    got = {}

    def program(comm):
        obj = {"v": 42} if comm.rank == root else None
        out = yield from comm.bcast(obj, root=root)
        got[comm.rank] = out

    w.launch(program)
    assert got == {r: {"v": 42} for r in range(p)}


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_reduce_sum_at_root(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        out = yield from comm.reduce(comm.rank + 1, op=SUM, root=0)
        got[comm.rank] = out

    w.launch(program)
    assert got[0] == p * (p + 1) // 2
    for r in range(1, p):
        assert got[r] is None


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_allreduce_max_and_min(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        hi = yield from comm.allreduce(comm.rank * 10, op=MAX)
        lo = yield from comm.allreduce(comm.rank * 10, op=MIN)
        got[comm.rank] = (hi, lo)

    w.launch(program)
    assert got == {r: ((p - 1) * 10, 0) for r in range(p)}


@pytest.mark.parametrize("mode", MODES)
def test_allreduce_numpy_arrays(mode):
    p = 4
    w = make_world(p, mode)
    got = {}

    def program(comm):
        arr = np.full(8, comm.rank, dtype=np.int64)
        out = yield from comm.allreduce(arr, op=SUM)
        got[comm.rank] = out

    w.launch(program)
    for r in range(p):
        np.testing.assert_array_equal(got[r], np.full(8, 6))


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_gather_collects_in_rank_order(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        out = yield from comm.gather(f"r{comm.rank}", root=0)
        got[comm.rank] = out

    w.launch(program)
    assert got[0] == [f"r{r}" for r in range(p)]
    for r in range(1, p):
        assert got[r] is None


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_allgather_everyone_gets_everything(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        out = yield from comm.allgather(comm.rank ** 2)
        got[comm.rank] = out

    w.launch(program)
    expected = [r ** 2 for r in range(p)]
    assert all(v == expected for v in got.values())


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_alltoall_transposes(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        values = [(comm.rank, dst) for dst in range(p)]
        out = yield from comm.alltoall(values)
        got[comm.rank] = out

    w.launch(program)
    for r in range(p):
        assert got[r] == [(src, r) for src in range(p)]


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_scan_inclusive_prefix_sum(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        out = yield from comm.scan(comm.rank + 1, op=SUM)
        got[comm.rank] = out

    w.launch(program)
    assert got == {r: (r + 1) * (r + 2) // 2 for r in range(p)}


@pytest.mark.parametrize("mode", MODES)
def test_collectives_charge_sync_category(mode):
    w = make_world(4, mode)

    def program(comm):
        yield from comm.proc.compute(0.1 * comm.rank)
        yield from comm.barrier()

    w.launch(program)
    # rank 0 arrived first and waited ~0.3s: sync must be charged
    assert w.procs[0].breakdown.get("sync") >= 0.29


@pytest.mark.parametrize("p", [2, 4, 8])
def test_analytic_and_detailed_barrier_costs_agree(p):
    """Exit times of the two modes agree within a small factor.

    One core per node: the analytic model assumes inter-node messages, so
    co-located ranks (memcpy path) would make the comparison meaningless.
    """
    exits = {}
    for mode in MODES:
        w = World(MachineConfig(nprocs=p, cores_per_node=1),
                  collective_mode=mode)

        def program(comm):
            yield from comm.barrier()
            return comm.now

        results = w.launch(program)
        exits[mode] = max(results)

    assert exits["analytic"] <= exits["detailed"] * 3
    assert exits["detailed"] <= exits["analytic"] * 3


@pytest.mark.parametrize("p", [4, 8])
def test_analytic_and_detailed_allreduce_costs_agree(p):
    exits = {}
    payload = np.zeros(1024, dtype=np.int64)
    for mode in MODES:
        w = World(MachineConfig(nprocs=p, cores_per_node=1),
                  collective_mode=mode)

        def program(comm):
            yield from comm.allreduce(payload.copy(), op=SUM)
            return comm.now

        results = w.launch(program)
        exits[mode] = max(results)

    assert exits["analytic"] <= exits["detailed"] * 4
    assert exits["detailed"] <= exits["analytic"] * 4


@pytest.mark.parametrize("mode", MODES)
def test_collective_ordering_multiple_ops(mode):
    """Back-to-back collectives keep their values straight."""
    p = 5
    w = make_world(p, mode)
    got = {}

    def program(comm):
        a = yield from comm.allreduce(1, op=SUM)
        b = yield from comm.allgather(comm.rank)
        c = yield from comm.bcast("z" if comm.rank == 2 else None, root=2)
        got[comm.rank] = (a, b, c)

    w.launch(program)
    for r in range(p):
        assert got[r] == (p, list(range(p)), "z")
