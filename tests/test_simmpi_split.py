"""Communicator split semantics (the mechanism ParColl subgroups use)."""

import pytest

from repro.cluster import MachineConfig
from repro.simmpi import SUM, World

MODES = ("analytic", "detailed")


@pytest.mark.parametrize("mode", MODES)
def test_split_even_odd(mode):
    w = World(MachineConfig(nprocs=8, cores_per_node=2), collective_mode=mode)
    got = {}

    def program(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        got[comm.rank] = (sub.rank, sub.size)

    w.launch(program)
    # even ranks 0,2,4,6 -> subranks 0..3; odd likewise
    assert got == {
        0: (0, 4), 2: (1, 4), 4: (2, 4), 6: (3, 4),
        1: (0, 4), 3: (1, 4), 5: (2, 4), 7: (3, 4),
    }


@pytest.mark.parametrize("mode", MODES)
def test_split_undefined_color_gets_none(mode):
    w = World(MachineConfig(nprocs=4), collective_mode=mode)
    got = {}

    def program(comm):
        color = 0 if comm.rank < 2 else None
        sub = yield from comm.split(color=color)
        got[comm.rank] = None if sub is None else sub.size

    w.launch(program)
    assert got == {0: 2, 1: 2, 2: None, 3: None}


@pytest.mark.parametrize("mode", MODES)
def test_split_key_reorders_ranks(mode):
    w = World(MachineConfig(nprocs=4), collective_mode=mode)
    got = {}

    def program(comm):
        # reverse order within the single group
        sub = yield from comm.split(color=0, key=-comm.rank)
        got[comm.rank] = sub.rank

    w.launch(program)
    assert got == {0: 3, 1: 2, 2: 1, 3: 0}


@pytest.mark.parametrize("mode", MODES)
def test_subgroup_collectives_are_isolated(mode):
    """Collectives in one subgroup must not involve or block the other."""
    w = World(MachineConfig(nprocs=8, cores_per_node=2), collective_mode=mode)
    got = {}

    def program(comm):
        sub = yield from comm.split(color=comm.rank // 4)
        total = yield from sub.allreduce(comm.rank, op=SUM)
        got[comm.rank] = total

    w.launch(program)
    assert all(got[r] == 0 + 1 + 2 + 3 for r in range(4))
    assert all(got[r] == 4 + 5 + 6 + 7 for r in range(4, 8))


@pytest.mark.parametrize("mode", MODES)
def test_subgroup_does_not_wait_for_slow_outsiders(mode):
    """The whole point of ParColl: a small group's sync cost is local."""
    w = World(MachineConfig(nprocs=8, cores_per_node=2), collective_mode=mode)
    exit_times = {}

    def program(comm):
        sub = yield from comm.split(color=comm.rank // 4)
        if comm.rank >= 4:
            yield from comm.proc.compute(100.0)  # slow group
        yield from sub.barrier()
        exit_times[comm.rank] = comm.now

    w.launch(program)
    assert all(exit_times[r] < 1.0 for r in range(4))
    assert all(exit_times[r] >= 100.0 for r in range(4, 8))


@pytest.mark.parametrize("mode", MODES)
def test_nested_split(mode):
    w = World(MachineConfig(nprocs=8, cores_per_node=2), collective_mode=mode)
    got = {}

    def program(comm):
        half = yield from comm.split(color=comm.rank // 4)
        quarter = yield from half.split(color=half.rank // 2)
        got[comm.rank] = (half.size, quarter.size, quarter.rank)

    w.launch(program)
    for r in range(8):
        assert got[r] == (4, 2, r % 2)


@pytest.mark.parametrize("mode", MODES)
def test_p2p_within_subcommunicator_uses_group_ranks(mode):
    w = World(MachineConfig(nprocs=6, cores_per_node=2), collective_mode=mode)
    got = {}

    def program(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        if sub.rank == 0:
            yield from sub.send(f"from-world-{comm.rank}", dest=sub.size - 1)
        elif sub.rank == sub.size - 1:
            p = yield from sub.recv(source=0)
            got[comm.rank] = p.data

    w.launch(program)
    # world rank 4 is group rank 2 of the even group; sender was world rank 0
    assert got[4] == "from-world-0"
    assert got[5] == "from-world-1"


@pytest.mark.parametrize("mode", MODES)
def test_two_sequential_splits_get_distinct_contexts(mode):
    w = World(MachineConfig(nprocs=4), collective_mode=mode)
    got = {}

    def program(comm):
        a = yield from comm.split(color=0)
        b = yield from comm.split(color=0)
        got[comm.rank] = (a.desc.ctx, b.desc.ctx)

    w.launch(program)
    for r in range(4):
        ctx_a, ctx_b = got[r]
        assert ctx_a != ctx_b
    # all ranks agree on the context ids
    assert len({got[r] for r in range(4)}) == 1
