"""Layer-2 invariant checkers: pass on real protocol state, fire on
corrupted state.  Every checker gets one "good" case built by the code
under normal operation and at least one deliberately broken mutation."""

from dataclasses import replace

import numpy as np
import pytest

from repro.datatypes.flatten import coalesce
from repro.errors import ValidationError
from repro.mpiio.two_phase import plan_rounds
from repro.parcoll.intermediate_view import IntermediateView
from repro.parcoll.partition import plan_partition
from repro.validate.invariants import (check_aggregator_distribution,
                                       check_exchange_plan,
                                       check_iview_roundtrip,
                                       check_partition_plan,
                                       check_round_conservation)


def serial_extents(nprocs=4, per_rank=1024):
    return [(r * per_rank, (r + 1) * per_rank, per_rank)
            for r in range(nprocs)]


def interleaved_extents(nprocs=4, per_rank=1024, piece=256):
    # every rank spans nearly the whole file: forces intermediate mode
    stride = nprocs * piece
    out = []
    for r in range(nprocs):
        lo = r * piece
        hi = lo + stride * (per_rank // piece - 1) + piece
        out.append((lo, hi, per_rank))
    return out


class TestPartitionPlan:
    def test_direct_plan_passes(self):
        extents = serial_extents()
        plan = plan_partition(extents, 2)
        check_partition_plan(plan, extents)

    def test_intermediate_plan_passes(self):
        extents = interleaved_extents()
        plan = plan_partition(extents, 2)
        assert plan.uses_intermediate_view
        check_partition_plan(plan, extents)

    def test_overlapping_fas_fire(self):
        extents = serial_extents()
        plan = plan_partition(extents, 2)
        bad = replace(plan, fa_bounds=((0, 3000), (1024, 4096)))
        with pytest.raises(ValidationError, match="hull|overlap"):
            check_partition_plan(bad, extents)

    def test_bad_group_ids_fire(self):
        extents = serial_extents()
        plan = plan_partition(extents, 2)
        bad = replace(plan, group_of=(0, 0, 0, 2))
        with pytest.raises(ValidationError, match="group ids"):
            check_partition_plan(bad, extents)

    def test_logical_gap_fires(self):
        extents = interleaved_extents()
        plan = plan_partition(extents, 2)
        (lo0, hi0), (lo1, hi1) = plan.fa_bounds
        bad = replace(plan, fa_bounds=((lo0, hi0 - 8), (lo1, hi1)))
        with pytest.raises(ValidationError):
            check_partition_plan(bad, extents)


class TestAggregatorDistribution:
    # 4 ranks on 2 nodes (2 cores/node): node_of = rank // 2
    node_of = staticmethod(lambda r: r // 2)

    def test_clean_assignment_passes(self):
        check_aggregator_distribution(
            groups=[[0, 1], [2, 3]], assignment=[[0], [2]],
            agg_nodes=[0, 1], node_of=self.node_of)

    def test_empty_assignment_fires_constraint_a(self):
        with pytest.raises(ValidationError, match=r"constraint \(a\)"):
            check_aggregator_distribution(
                groups=[[0, 1], [2, 3]], assignment=[[0], []],
                agg_nodes=[0, 1], node_of=self.node_of)

    def test_shared_node_fires_constraint_b(self):
        # two multi-aggregator (non-fallback) groups both claim node 0
        with pytest.raises(ValidationError, match=r"constraint \(b\)"):
            check_aggregator_distribution(
                groups=[[0, 2], [1, 3]], assignment=[[0, 2], [1, 3]],
                agg_nodes=[0, 1], node_of=self.node_of)

    def test_fallback_sharing_a_node_is_allowed(self):
        # group 1's single min-member aggregator may reuse node 0: the
        # requirement-(a) fallback overrides node exclusivity
        check_aggregator_distribution(
            groups=[[0, 2], [1, 3]], assignment=[[0, 2], [1]],
            agg_nodes=[0], node_of=self.node_of)

    def test_unused_hosting_slot_fires_constraint_c(self):
        with pytest.raises(ValidationError, match=r"constraint \(c\)"):
            check_aggregator_distribution(
                groups=[[0, 1, 2, 3]], assignment=[[0]],
                agg_nodes=[0, 1], node_of=self.node_of)

    def test_imbalance_with_full_reach_fires_constraint_c(self):
        # both groups reach all four nodes, but group 0 hoards three
        # slots while group 1 gets one (counts differ by more than one)
        with pytest.raises(ValidationError, match=r"constraint \(c\)"):
            check_aggregator_distribution(
                groups=[[0, 2, 4, 6], [1, 3, 5, 7]],
                assignment=[[0, 2, 4], [7]],
                agg_nodes=[0, 1, 2, 3], node_of=self.node_of)

    def test_non_member_aggregator_fires(self):
        with pytest.raises(ValidationError, match="not one of its members"):
            check_aggregator_distribution(
                groups=[[0, 1], [2, 3]], assignment=[[2], [3]],
                agg_nodes=[0, 1], node_of=self.node_of)


def iview_for(nprocs=4, per_rank=512, piece=128):
    extents = interleaved_extents(nprocs, per_rank, piece)
    plan = plan_partition(extents, 2)
    assert plan.uses_intermediate_view
    stride = nprocs * piece
    offs = np.arange(per_rank // piece, dtype=np.int64) * stride
    lens = np.full(per_rank // piece, piece, dtype=np.int64)
    return IntermediateView((offs, lens), plan.logical_prefix[0])


class TestIviewRoundtrip:
    def test_real_translator_passes(self):
        check_iview_roundtrip(iview_for())

    def test_byte_losing_translator_fires(self):
        class Lossy:
            """An iview whose translator drops the last physical piece."""

            def __init__(self, iview):
                self._iv = iview
                self.total = iview.total
                self.logical_base = iview.logical_base
                self.phys_segs = iview.phys_segs

            def translate(self, segs):
                offs, lens = self._iv.translate(segs)
                return ((offs[:-1], lens[:-1]) if offs.size > 1
                        else (offs, lens))

        with pytest.raises(ValidationError, match="iview_roundtrip"):
            check_iview_roundtrip(Lossy(iview_for()))


class TestExchangePlan:
    def segs(self):
        offs = np.array([0, 512, 1024], dtype=np.int64)
        lens = np.array([256, 256, 256], dtype=np.int64)
        return offs, lens

    def plan(self, segs):
        starts = np.array([0, 768], dtype=np.int64)
        ends = np.array([768, 2048], dtype=np.int64)
        return plan_rounds(segs, [0, 1], starts, ends, cb=256)

    def test_real_plan_passes(self):
        segs = self.segs()
        plan = self.plan(segs)
        ntimes = max(int(p[3].max()) for p in plan if p[3].size) + 1
        check_exchange_plan(segs, plan, ntimes)

    def test_lost_piece_fires(self):
        segs = self.segs()
        plan = self.plan(segs)
        ntimes = 8
        broken = [(p[0], p[1][:-1], p[2][:-1], p[3][:-1]) for p in plan[:1]]
        with pytest.raises(ValidationError, match="created or lost|empty round plan"):
            check_exchange_plan(segs, broken + list(plan[1:]), ntimes)

    def test_round_out_of_range_fires(self):
        segs = self.segs()
        plan = self.plan(segs)
        with pytest.raises(ValidationError, match="targets round"):
            check_exchange_plan(segs, plan, ntimes=0 + 0)


class TestRoundConservation:
    def test_balanced_round_passes(self):
        check_round_conservation(4096, 4096, 4096, rnd=0)

    def test_short_receive_fires(self):
        with pytest.raises(ValidationError, match="arrived"):
            check_round_conservation(4096, 4000, 4000, rnd=1)

    def test_short_write_fires(self):
        with pytest.raises(ValidationError, match="merged"):
            check_round_conservation(4096, 4096, 100, rnd=2)
