"""The example scripts must keep running (they are the public quickstart).

Each is executed in-process with its ``main()`` so failures surface as
ordinary test errors; only the fast examples run here (the heavier
sweeps are exercised by the benchmarks)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("name", ["quickstart", "aggregator_placement",
                                  "btio_checkpoint"])
def test_example_runs(name, capsys):
    mod = load_example(name)
    mod.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_verifies_bytes(capsys):
    mod = load_example("quickstart")
    mod.main()
    out = capsys.readouterr().out
    assert "verified byte-for-byte" in out
    assert "ParColl-8" in out


def test_aggregator_placement_matches_figure5(capsys):
    mod = load_example("aggregator_placement")
    mod.main()
    out = capsys.readouterr().out
    assert "N0(P0), N1(P2)" in out
    assert "N2(P6)" in out
