"""Hints validation and aggregator / file-domain logic."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineConfig
from repro.errors import MPIIOError
from repro.lustre import StripeLayout
from repro.mpiio import IOHints
from repro.mpiio.aggregation import (default_aggregators, domain_of_offsets,
                                     partition_file_domains)


class TestHints:
    def test_defaults_valid(self):
        h = IOHints()
        assert h.cb_buffer_size == 4 << 20
        assert h.protocol == "ext2ph"

    def test_from_dict_roundtrip(self):
        h = IOHints.from_dict({"cb_buffer_size": 1024, "protocol": "parcoll",
                               "parcoll_ngroups": 8})
        assert h.cb_buffer_size == 1024
        assert h.parcoll_ngroups == 8

    def test_unknown_hint_rejected(self):
        with pytest.raises(MPIIOError):
            IOHints.from_dict({"romio_no_such_hint": 1})

    def test_invalid_values_rejected(self):
        with pytest.raises(MPIIOError):
            IOHints(cb_buffer_size=0)
        with pytest.raises(MPIIOError):
            IOHints(protocol="magic")
        with pytest.raises(MPIIOError):
            IOHints(parcoll_ngroups=0)
        with pytest.raises(MPIIOError):
            IOHints(cb_nodes=-1)
        with pytest.raises(MPIIOError):
            IOHints(cb_config_ranks=())
        with pytest.raises(MPIIOError):
            IOHints(cb_config_ranks=(1, 1))

    def test_with_override(self):
        h = IOHints().with_(protocol="parcoll", parcoll_ngroups=4)
        assert h.protocol == "parcoll"
        assert h.cb_buffer_size == IOHints().cb_buffer_size


class TestDefaultAggregators:
    def make_machine(self, nprocs=8, cores=2, mapping="block"):
        return Machine(MachineConfig(nprocs=nprocs, cores_per_node=cores,
                                     mapping=mapping))

    def test_one_per_node_block_mapping(self):
        m = self.make_machine()
        aggs = default_aggregators(list(range(8)), m, IOHints())
        # block: lowest rank on each node: 0, 2, 4, 6
        assert aggs == [0, 2, 4, 6]

    def test_one_per_node_cyclic_mapping(self):
        m = self.make_machine(mapping="cyclic")
        aggs = default_aggregators(list(range(8)), m, IOHints())
        # cyclic: node i first hosts rank i
        assert aggs == [0, 1, 2, 3]

    def test_cb_nodes_caps_count(self):
        m = self.make_machine()
        aggs = default_aggregators(list(range(8)), m, IOHints(cb_nodes=2))
        assert aggs == [0, 2]

    def test_explicit_config_ranks(self):
        m = self.make_machine()
        aggs = default_aggregators(list(range(8)), m,
                                   IOHints(cb_config_ranks=(7, 3)))
        assert aggs == [7, 3]

    def test_explicit_config_ranks_validated(self):
        m = self.make_machine()
        with pytest.raises(MPIIOError):
            default_aggregators(list(range(4)), m, IOHints(cb_config_ranks=(9,)))

    def test_subgroup_members(self):
        # communicator holding world ranks 4..7 (nodes 2 and 3)
        m = self.make_machine()
        aggs = default_aggregators([4, 5, 6, 7], m, IOHints())
        assert aggs == [0, 2]  # group ranks of world ranks 4 and 6


class TestFileDomains:
    def test_even_split(self):
        s, e = partition_file_domains(0, 100, 4)
        assert s.tolist() == [0, 25, 50, 75]
        assert e.tolist() == [25, 50, 75, 100]

    def test_remainder_spread(self):
        s, e = partition_file_domains(0, 10, 3)
        assert (e - s).tolist() == [4, 3, 3]
        assert s[0] == 0 and e[-1] == 10

    def test_more_aggs_than_bytes(self):
        s, e = partition_file_domains(0, 2, 4)
        assert (e - s).tolist() == [1, 1, 0, 0]

    def test_empty_range(self):
        s, e = partition_file_domains(5, 5, 3)
        assert (e - s).tolist() == [0, 0, 0]

    def test_alignment_snaps_to_stripes(self):
        lay = StripeLayout(stripe_size=100, stripe_count=2, n_osts=4)
        s, e = partition_file_domains(0, 1000, 3, align=lay)
        # interior boundaries 333, 667 snap to 300, 700
        assert s.tolist() == [0, 300, 700]
        assert e.tolist() == [300, 700, 1000]

    def test_alignment_keeps_bounds_monotone(self):
        lay = StripeLayout(stripe_size=1000, stripe_count=2, n_osts=4)
        s, e = partition_file_domains(0, 500, 4, align=lay)
        assert (e >= s).all()
        assert s[0] == 0 and e[-1] == 500

    def test_invalid(self):
        with pytest.raises(MPIIOError):
            partition_file_domains(0, 10, 0)
        with pytest.raises(MPIIOError):
            partition_file_domains(10, 0, 2)

    def test_domain_of_offsets(self):
        starts = np.array([0, 25, 50, 75], dtype=np.int64)
        ends = np.array([25, 50, 75, 100], dtype=np.int64)
        offs = np.array([0, 24, 25, 74, 99], dtype=np.int64)
        idx = domain_of_offsets(offs, starts, ends)
        assert idx.tolist() == [0, 0, 1, 2, 3]
