"""Fault injection: plans, profiles, retry, determinism, cache identity."""

import numpy as np
import pytest

from repro.errors import (ConfigError, FaultExhaustedError, MPIIOError,
                          SimulationError)
from repro.faults import (FaultInjector, FaultPlan, FlakyRPC, NodeSlowdown,
                          OSTDegrade, OSTStall, RetryPolicy)
from repro.harness.parallel import ExperimentExecutor, ExperimentTask
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.sim.resources import ServiceProfile
from repro.workloads import TileIOConfig
from repro.workloads.tile_io import tile_io_program

LUSTRE = {"n_osts": 4, "default_stripe_count": 4, "default_stripe_size": 1024}


def tile_task(faults=None, retry=None, seed=0, **hints):
    wl = TileIOConfig(tile_rows=32, tile_cols=32, element_size=8,
                      hints=hints or None)
    cfg = ExperimentConfig(nprocs=8, lustre=LUSTRE, seed=seed,
                           faults=faults, retry=retry or {})
    return ExperimentTask(cfg, "tile_io", wl)


def run_tile(faults=None, retry=None, **hints):
    return tile_task(faults=faults, retry=retry, **hints).run()


def metrics(result):
    """Exact-identity fingerprint of one run."""
    return (result.elapsed_total.hex(), result.write_bandwidth.hex(),
            result.events, result.messages,
            {c: (v["sum"].hex(), v["max"].hex(), v["count"])
             for c, v in result.breakdown.items()})


class TestFaultPlan:
    def test_canonical_order_independent_identity(self):
        a = FaultPlan((OSTDegrade(ost=1, factor=0.5),
                       OSTStall(ost=0, start=1.0, duration=2.0)))
        b = FaultPlan((OSTStall(ost=0, start=1.0, duration=2.0),
                       OSTDegrade(ost=1, factor=0.5)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.to_dict() == b.to_dict()

    def test_builders_and_add(self):
        plan = (FaultPlan.straggler_ost(0, 0.25)
                + FaultPlan.flaky(0.5, ost=1)
                + FaultPlan.slow_node(2, 0.5)
                + FaultPlan.stall(3, start=1.0, duration=0.5))
        assert len(plan.events) == 4
        assert not plan.is_empty
        assert FaultPlan().is_empty

    def test_dict_round_trip(self):
        plan = (FaultPlan.straggler_ost(1, 0.1, start=0.5, end=2.0)
                + FaultPlan.flaky(0.3))
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        # coerce accepts the plan, its dict form, an event tuple, None
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(plan.to_dict()) == plan
        assert FaultPlan.coerce(plan.events) == plan
        assert FaultPlan.coerce(None) == FaultPlan()

    def test_validation(self):
        with pytest.raises(ConfigError, match="factor must be > 0"):
            OSTDegrade(ost=0, factor=0.0)
        with pytest.raises(ConfigError, match="duration must be > 0"):
            OSTStall(ost=0, start=0.0, duration=0.0)
        with pytest.raises(ConfigError, match="prob must be in"):
            FlakyRPC(prob=1.5)
        with pytest.raises(ConfigError, match="must be after"):
            NodeSlowdown(node=0, factor=0.5, start=2.0, end=1.0)
        with pytest.raises(ConfigError, match="unknown event kind"):
            FaultPlan.from_dict({"events": [{"kind": "meteor_strike"}]})
        with pytest.raises(ConfigError, match="as a FaultPlan"):
            FaultPlan.coerce(42)

    def test_flaky_prob_windows_compound(self):
        plan = (FaultPlan.flaky(0.5, ost=0, start=0.0, end=2.0)
                + FaultPlan.flaky(0.5, start=1.0, end=3.0))  # all OSTs
        assert plan.flaky_prob(0, 0.5) == 0.5
        assert plan.flaky_prob(0, 1.5) == pytest.approx(0.75)
        assert plan.flaky_prob(0, 2.5) == 0.5
        assert plan.flaky_prob(0, 3.0) == 0.0
        assert plan.flaky_prob(3, 0.5) == 0.0  # ost-0 window doesn't apply
        assert plan.has_flaky(3)  # the all-OST window does


class TestServiceProfile:
    def test_speed_at_multiplies_overlapping_windows(self):
        prof = ServiceProfile([(0.0, 4.0, 0.5), (2.0, 6.0, 0.5)])
        assert prof.speed_at(1.0) == 0.5
        assert prof.speed_at(3.0) == 0.25
        assert prof.speed_at(5.0) == 0.5
        assert prof.speed_at(7.0) == 1.0

    def test_finish_time_integrates_across_segments(self):
        # half speed for the first 2 s: 3 s of work = 2 s at 0.5 (1 s
        # done) + 2 s at full speed
        prof = ServiceProfile([(0.0, 2.0, 0.5)])
        assert prof.finish_time(0.0, 3.0) == pytest.approx(4.0)
        # started after the window: unaffected
        assert prof.finish_time(2.0, 3.0) == pytest.approx(5.0)

    def test_stall_window_blocks_until_it_ends(self):
        prof = ServiceProfile([(1.0, 3.0, 0.0)])
        # 1 s of work starting at 0: 1 s done exactly as the stall begins
        assert prof.finish_time(0.0, 1.0) == pytest.approx(1.0)
        # 1.5 s of work: the last 0.5 s waits out the stall
        assert prof.finish_time(0.0, 1.5) == pytest.approx(3.5)

    def test_forever_stalled_profile_raises(self):
        with pytest.raises(SimulationError, match="permanent stall"):
            ServiceProfile([(1.0, None, 0.0)])


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        pol = RetryPolicy(backoff_base=1e-3, backoff_factor=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert pol.backoff_delay(1, rng) == pytest.approx(1e-3)
        assert pol.backoff_delay(3, rng) == pytest.approx(4e-3)

    def test_jitter_consults_rng_deterministically(self):
        pol = RetryPolicy(backoff_base=1e-3, jitter=0.5)
        a = pol.backoff_delay(1, np.random.default_rng(7))
        b = pol.backoff_delay(1, np.random.default_rng(7))
        assert a == b
        assert 1e-3 <= a <= 1.5e-3

    def test_with_validates(self):
        pol = RetryPolicy()
        assert pol.with_(max_attempts=3).max_attempts == 3
        with pytest.raises(ConfigError, match="max_attempts"):
            pol.with_(max_attempts=0)

    def test_hint_overrides_validate_and_map(self):
        from repro.mpiio.hints import IOHints

        h = IOHints(retry_max_attempts=3, retry_jitter=0.0)
        assert h.retry_overrides() == {"max_attempts": 3, "jitter": 0.0}
        with pytest.raises(MPIIOError, match="retry_timeout"):
            IOHints(retry_timeout=0.0)


class TestInjector:
    def test_profiles_are_none_for_untouched_resources(self):
        inj = FaultInjector(FaultPlan.straggler_ost(1, 0.5), seed=0)
        assert inj.ost_profile(0) is None
        assert inj.ost_profile(1) is not None
        assert inj.node_profile(0) is None

    def test_validate_platform_rejects_missing_resources(self):
        inj = FaultInjector(FaultPlan.straggler_ost(7, 0.5), seed=0)
        with pytest.raises(ConfigError, match="only 4 OSTs"):
            inj.validate_platform(n_osts=4, nnodes=4)
        inj = FaultInjector(FaultPlan.slow_node(9, 0.5), seed=0)
        with pytest.raises(ConfigError, match="only 4 nodes"):
            inj.validate_platform(n_osts=16, nnodes=4)

    def test_rpc_delay_counts_failures_and_exhausts(self):
        inj = FaultInjector(FaultPlan.flaky(1.0, ost=0), seed=0)
        pol = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(FaultExhaustedError) as err:
            inj.rpc_delay(0, 0.0, pol)
        assert err.value.ost == 0
        assert err.value.attempts == 3
        assert err.value.virtual_time > 0
        assert "ost-0" in str(err.value)
        # other OSTs are untouched and consume no randomness
        assert inj.rpc_delay(1, 0.0, pol) == (0.0, 0)


class TestFaultRuns:
    def test_zero_fault_runs_bit_identical_to_no_fault_config(self):
        base = run_tile(faults=None)
        empty = run_tile(faults=FaultPlan())
        # a flaky window the run never reaches also leaves it untouched
        late = run_tile(faults=FaultPlan.flaky(0.9, ost=0, start=1e9))
        assert metrics(empty) == metrics(base)
        assert metrics(late) == metrics(base)
        assert "fault_retry" not in base.breakdown

    def test_straggler_slows_and_is_deterministic(self):
        base = run_tile()
        slow = run_tile(faults=FaultPlan.straggler_ost(0, 0.05))
        again = run_tile(faults=FaultPlan.straggler_ost(0, 0.05))
        assert slow.elapsed_total > base.elapsed_total
        assert metrics(slow) == metrics(again)

    def test_flaky_run_charges_fault_retry_with_counts(self):
        res = run_tile(faults=FaultPlan.flaky(0.4, ost=1))
        fr = res.breakdown.get("fault_retry")
        assert fr is not None
        assert fr["sum"] > 0
        assert fr["count"] >= 1
        # retry time is accounted, not invented: it never exceeds the
        # run's total accounted time
        assert fr["sum"] < sum(v["sum"] for v in res.breakdown.values())

    def test_no_retry_policy_aborts_with_exhaustion(self):
        with pytest.raises(FaultExhaustedError):
            run_tile(faults=FaultPlan.flaky(1.0, ost=0),
                     retry={"max_attempts": 1})

    def test_retry_hints_override_platform_policy(self):
        plan = FaultPlan.flaky(1.0, ost=0)
        # platform default survives nothing at prob=1 with 1 attempt;
        # the per-file hint deepens the budget but prob=1 still exhausts
        # it — the hint's attempt count must be the one in the error
        with pytest.raises(FaultExhaustedError) as err:
            run_tile(faults=plan, retry={"max_attempts": 1},
                     retry_max_attempts=4)
        assert err.value.attempts == 4

    def test_fault_plan_changes_cache_key(self):
        base = tile_task()
        empty = tile_task(faults=FaultPlan())
        flaky = tile_task(faults=FaultPlan.flaky(0.4, ost=1))
        flakier = tile_task(faults=FaultPlan.flaky(0.5, ost=1))
        retried = tile_task(faults=FaultPlan.flaky(0.4, ost=1),
                            retry={"max_attempts": 4})
        # every spelling of "no faults" is one platform and one key
        assert base.cache_key() == empty.cache_key()
        assert base.cache_key() == tile_task(
            faults={"events": []}).cache_key()
        keys = {t.cache_key() for t in (base, flaky, flakier, retried)}
        assert len(keys) == 4
        # but identical plans authored in different orders share a key
        a = tile_task(faults=FaultPlan.straggler_ost(0, 0.5)
                      + FaultPlan.stall(1, 1.0, 2.0))
        b = tile_task(faults=FaultPlan.stall(1, 1.0, 2.0)
                      + FaultPlan.straggler_ost(0, 0.5))
        assert a.cache_key() == b.cache_key()

    def test_plan_serializes_through_config_dict_form(self):
        plan = FaultPlan.straggler_ost(0, 0.05)
        via_plan = run_tile(faults=plan)
        via_dict = run_tile(faults=plan.to_dict())
        assert metrics(via_plan) == metrics(via_dict)

    def test_build_rejects_plan_outside_platform(self):
        with pytest.raises(ConfigError, match="only 4 OSTs"):
            run_tile(faults=FaultPlan.straggler_ost(17, 0.5))


class TestParallelFaultSweeps:
    def test_fault_sweep_bit_identical_serial_vs_two_jobs(self, tmp_path):
        plans = [None,
                 FaultPlan.straggler_ost(0, 0.25),
                 FaultPlan.flaky(0.4, ost=1),
                 FaultPlan.stall(2, 0.0, 0.01)]
        tasks = [tile_task(faults=p) for p in plans]
        serial = ExperimentExecutor(jobs=1, cache=False).run_many(tasks)
        pooled = ExperimentExecutor(jobs=2, cache=False).run_many(tasks)
        assert [metrics(r) for r in serial] == [metrics(r) for r in pooled]

    def test_cached_fault_run_round_trips(self, tmp_path):
        task = tile_task(faults=FaultPlan.flaky(0.4, ost=1))
        ex = ExperimentExecutor(jobs=1, cache_dir=tmp_path)
        first = ex.run_many([task])[0]
        again = ex.run_many([task])[0]
        assert ex.cache.hits >= 1
        assert metrics(first) == metrics(again)

    def test_exhaustion_surfaces_inline_through_run_many(self):
        task = tile_task(faults=FaultPlan.flaky(1.0, ost=0),
                         retry={"max_attempts": 2})
        ex = ExperimentExecutor(jobs=1, cache=False)
        with pytest.raises(FaultExhaustedError) as err:
            ex.run_many([task])
        assert err.value.ost == 0
        assert err.value.attempts == 2

    def test_exhaustion_surfaces_from_pool_with_worker_traceback(self):
        from repro.harness.parallel import RemoteTraceback

        task = tile_task(faults=FaultPlan.flaky(1.0, ost=0),
                         retry={"max_attempts": 2})
        ex = ExperimentExecutor(jobs=2, cache=False)
        with pytest.raises(FaultExhaustedError) as err:
            ex.run_many([task, tile_task()])
        assert err.value.attempts == 2
        # the worker's failure site rides along as the cause
        cause = err.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        assert "FaultExhaustedError" in cause.tb
        assert "rpc_delay" in cause.tb or "fault" in cause.tb


class TestFaultSweepHarness:
    def test_sweep_tasks_grid_shape_and_identity(self):
        from repro.harness.fault_sweep import fault_class, sweep_tasks

        fc = fault_class("straggler")
        tasks = sweep_tasks(fc, (0.0, 0.9), "small")
        assert len(tasks) == 4  # 2 severities x 2 protocols
        assert tasks[0].config.faults.is_empty
        assert not tasks[2].config.faults.is_empty
        assert len({t.cache_key() for t in tasks}) == 4

    def test_unknown_class_and_scale_fail_fast(self):
        from repro.harness.fault_sweep import fault_sweep, scale_info

        with pytest.raises(ConfigError, match="unknown fault class"):
            fault_sweep("gremlins")
        with pytest.raises(ConfigError, match="unknown fault-sweep scale"):
            scale_info("galactic")

    def test_straggler_sweep_shows_containment(self):
        from repro.harness.fault_sweep import fault_sweep

        res = fault_sweep("straggler", severities=(0.9,), scale="small",
                          executor=ExperimentExecutor(jobs=1, cache=False))
        flat = res.series["ext2ph retained"][0.9]
        part = res.series["parcoll retained"][0.9]
        assert part > flat
        assert res.series["ext2ph retained"][0.0] == 1.0


def test_run_report_renders_counts():
    from repro.harness.report import run_report

    res = run_tile(faults=FaultPlan.flaky(0.4, ost=1))
    text = run_report(res)
    assert "fault_retry" in text
    assert "count" in text
