"""Shared fixtures: a small simulated machine + file system + MPI-IO stack.

Hypothesis runs under one of two registered profiles, selected by the
``HYPOTHESIS_PROFILE`` environment variable:

* ``fast`` (default) — few, seeded, deterministic examples; what CI's
  test matrix and local ``pytest`` runs use;
* ``thorough`` — many examples with no deadline, for the nightly
  property sweep (``HYPOTHESIS_PROFILE=thorough pytest``).
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.cluster import MachineConfig, NetworkParams
from repro.lustre import LustreFS, LustreParams
from repro.mpiio import MPIIO
from repro.simmpi import World

settings.register_profile(
    "fast", max_examples=20, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "thorough", max_examples=300, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))


class Stack:
    """A bundled world + file system + MPI-IO library for tests."""

    def __init__(self, nprocs=8, cores_per_node=2, mapping="block",
                 collective_mode="analytic", store_data=True,
                 stripe_size=256, stripe_count=4, n_osts=4, jitter=0.0,
                 seed=0, **net_kw):
        self.world = World(
            MachineConfig(nprocs=nprocs, cores_per_node=cores_per_node,
                          mapping=mapping),
            net_params=NetworkParams(**net_kw),
            collective_mode=collective_mode,
        )
        self.fs = LustreFS(self.world.engine,
                           LustreParams(n_osts=n_osts,
                                        default_stripe_count=stripe_count,
                                        default_stripe_size=stripe_size,
                                        jitter=jitter,
                                        store_data=store_data),
                           seed=seed)
        self.io = MPIIO(self.world, self.fs)
        self.nprocs = nprocs

    def run(self, program):
        """program(comm, io) generator per rank; returns per-rank results."""
        return self.world.launch(lambda comm: program(comm, self.io))

    def file_bytes(self, name):
        return self.fs.lookup(name).contents()


@pytest.fixture
def stack_factory():
    return Stack


def rank_pattern(rank: int, n: int) -> np.ndarray:
    """Deterministic per-rank test bytes."""
    return ((np.arange(n) * 31 + rank * 7 + 13) % 251).astype(np.uint8)
