"""Striping math and backing stores."""

import numpy as np
import pytest

from repro.errors import FileSystemError
from repro.lustre import ByteStore, ExtentTracker, StripeLayout
from repro.lustre.store import MAX_VERIFIED_BYTES


class TestStripeLayout:
    def test_ost_of_offset_round_robin(self):
        lay = StripeLayout(stripe_size=100, stripe_count=4, n_osts=8, start_ost=0)
        assert lay.ost_of_offset(0) == 0
        assert lay.ost_of_offset(99) == 0
        assert lay.ost_of_offset(100) == 1
        assert lay.ost_of_offset(399) == 3
        assert lay.ost_of_offset(400) == 0  # wraps at stripe_count

    def test_start_ost_shifts(self):
        lay = StripeLayout(stripe_size=100, stripe_count=4, n_osts=8, start_ost=6)
        assert lay.ost_of_offset(0) == 6
        assert lay.ost_of_offset(100) == 7
        assert lay.ost_of_offset(200) == 0  # modulo n_osts

    def test_chunks_split_at_boundaries(self):
        lay = StripeLayout(stripe_size=100, stripe_count=2, n_osts=4)
        offs, lens, osts = lay.chunks([50], [200])
        assert offs.tolist() == [50, 100, 200]
        assert lens.tolist() == [50, 100, 50]
        assert osts.tolist() == [0, 1, 0]

    def test_chunks_within_one_stripe(self):
        lay = StripeLayout(stripe_size=100, stripe_count=2, n_osts=4)
        offs, lens, osts = lay.chunks([10, 110], [20, 30])
        assert offs.tolist() == [10, 110]
        assert lens.tolist() == [20, 30]
        assert osts.tolist() == [0, 1]

    def test_chunks_preserve_total_bytes(self):
        lay = StripeLayout(stripe_size=64, stripe_count=3, n_osts=5)
        rng = np.random.default_rng(1)
        offs = np.sort(rng.integers(0, 10_000, 50)) * 7
        lens = rng.integers(1, 500, 50)
        _, clens, _ = lay.chunks(offs, lens)
        assert clens.sum() == lens.sum()

    def test_zero_length_segments_dropped(self):
        lay = StripeLayout(stripe_size=100, stripe_count=2, n_osts=2)
        offs, lens, osts = lay.chunks([0, 50], [0, 10])
        assert offs.tolist() == [50]

    def test_bytes_per_ost(self):
        lay = StripeLayout(stripe_size=100, stripe_count=2, n_osts=2)
        per = lay.bytes_per_ost([0], [400])
        assert per == {0: 200, 1: 200}

    def test_aligned_boundaries(self):
        lay = StripeLayout(stripe_size=100, stripe_count=2, n_osts=2)
        assert lay.aligned_boundaries(50, 350).tolist() == [100, 200, 300]
        assert lay.aligned_boundaries(0, 100).tolist() == [0, 100]
        assert lay.aligned_boundaries(101, 199).size == 0

    def test_invalid_params(self):
        with pytest.raises(FileSystemError):
            StripeLayout(0, 1, 4)
        with pytest.raises(FileSystemError):
            StripeLayout(100, 5, 4)  # stripe_count > n_osts
        with pytest.raises(FileSystemError):
            StripeLayout(100, 1, 4, start_ost=9)

    def test_negative_offset_rejected(self):
        lay = StripeLayout(100, 2, 4)
        with pytest.raises(FileSystemError):
            lay.chunks([-5], [10])


class TestByteStore:
    def test_write_read_roundtrip(self):
        bs = ByteStore()
        data = np.arange(50, dtype=np.uint8)
        bs.write(100, data)
        np.testing.assert_array_equal(bs.read(100, 50), data)
        assert bs.size == 150

    def test_unwritten_reads_zero(self):
        bs = ByteStore()
        bs.write(10, np.ones(5, dtype=np.uint8))
        np.testing.assert_array_equal(bs.read(0, 10), np.zeros(10, np.uint8))

    def test_growth(self):
        bs = ByteStore(initial_capacity=16)
        bs.write(10_000, np.full(100, 7, dtype=np.uint8))
        assert bs.size == 10_100
        assert bs.read(10_050, 1)[0] == 7

    def test_snapshot(self):
        bs = ByteStore()
        bs.write(0, np.array([1, 2, 3], dtype=np.uint8))
        snap = bs.snapshot()
        np.testing.assert_array_equal(snap, [1, 2, 3])
        bs.write(0, np.array([9], dtype=np.uint8))
        assert snap[0] == 1  # snapshot is a copy

    def test_size_cap(self):
        bs = ByteStore()
        with pytest.raises(FileSystemError):
            bs.write(MAX_VERIFIED_BYTES, np.ones(1, dtype=np.uint8))

    def test_negative_offset(self):
        bs = ByteStore()
        with pytest.raises(FileSystemError):
            bs.write(-1, np.ones(1, dtype=np.uint8))


class TestExtentTracker:
    def test_coverage_merges(self):
        t = ExtentTracker()
        t.write(0, 10)
        t.write(10, 10)
        t.write(30, 5)
        o, l = t.extents
        assert o.tolist() == [0, 30]
        assert l.tolist() == [20, 5]
        assert t.covered_bytes == 25
        assert t.size == 35

    def test_is_fully_covered(self):
        t = ExtentTracker()
        t.write(0, 100)
        t.write(200, 100)
        assert t.is_fully_covered(0, 100)
        assert t.is_fully_covered(10, 50)
        assert not t.is_fully_covered(50, 150)
        assert not t.is_fully_covered(100, 200)
        assert t.is_fully_covered(250, 250)  # empty range

    def test_zero_length_ignored(self):
        t = ExtentTracker()
        t.write(5, 0)
        assert t.covered_bytes == 0
