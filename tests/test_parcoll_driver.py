"""End-to-end ParColl: correctness in both modes, caching, and the
sync-cost reduction that is the point of the paper."""

import numpy as np
import pytest

from repro.datatypes import BYTE, Subarray, Vector
from repro.parcoll.intermediate_view import IntermediateView
from repro.errors import ParCollError
from tests.conftest import Stack, rank_pattern

MODES = ("analytic", "detailed")


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("ngroups", [1, 2, 4, 8])
def test_serial_pattern_write_correct(mode, ngroups):
    st = Stack(nprocs=8, collective_mode=mode)
    block = 256

    def program(comm, io):
        f = yield from io.open(comm, "pc", hints={
            "protocol": "parcoll", "parcoll_ngroups": ngroups})
        yield from f.write_at_all(comm.rank * block,
                                  rank_pattern(comm.rank, block))
        yield from f.close()

    st.run(program)
    ref = np.concatenate([rank_pattern(r, block) for r in range(8)])
    np.testing.assert_array_equal(st.file_bytes("pc"), ref)


@pytest.mark.parametrize("ngroups", [1, 2, 4])
def test_tiled_pattern_write_correct(ngroups):
    """4x2 process grid of tiles; groups become tile-row bands."""
    st = Stack(nprocs=8)
    rows, cols, tr, tc = 16, 8, 4, 4

    def program(comm, io):
        pr, pc = divmod(comm.rank, 2)
        ft = Subarray((rows, cols), (tr, tc), (pr * tr, pc * tc), BYTE)
        f = yield from io.open(comm, "tiles", hints={
            "protocol": "parcoll", "parcoll_ngroups": ngroups,
            "cb_buffer_size": 64})
        f.set_view(0, BYTE, ft)
        yield from f.write_at_all(0, rank_pattern(comm.rank, tr * tc))
        yield from f.close()

    st.run(program)
    got = st.file_bytes("tiles").reshape(rows, cols)
    for r in range(8):
        pr, pc = divmod(r, 2)
        tile = got[pr * tr:(pr + 1) * tr, pc * tc:(pc + 1) * tc]
        np.testing.assert_array_equal(tile.ravel(), rank_pattern(r, tr * tc))


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("ngroups", [2, 4])
def test_interleaved_pattern_uses_intermediate_view_and_is_correct(mode, ngroups):
    """BT-IO-like pattern (c): each rank's blocks spread across the file."""
    st = Stack(nprocs=8, collective_mode=mode)
    nblocks, bsz = 8, 32

    def program(comm, io):
        # rank r owns block r, r+8, r+16, ... (vector stride = nprocs)
        ft = Vector(nblocks, bsz, comm.size * bsz, BYTE)
        f = yield from io.open(comm, "inter", hints={
            "protocol": "parcoll", "parcoll_ngroups": ngroups,
            "cb_buffer_size": 128})
        f.set_view(comm.rank * bsz, BYTE, ft)
        yield from f.write_at_all(0, rank_pattern(comm.rank, nblocks * bsz))
        yield from f.close()

    st.run(program)
    got = st.file_bytes("inter").reshape(-1, bsz)
    for r in range(8):
        np.testing.assert_array_equal(got[r::8].ravel(),
                                      rank_pattern(r, nblocks * bsz))


@pytest.mark.parametrize("ngroups", [2, 4])
def test_parcoll_read_roundtrip(ngroups):
    st = Stack(nprocs=8)
    block = 200

    def program(comm, io):
        f = yield from io.open(comm, "rt", hints={
            "protocol": "parcoll", "parcoll_ngroups": ngroups})
        yield from f.write_at_all(comm.rank * block,
                                  rank_pattern(comm.rank, block))
        got = yield from f.read_at_all(comm.rank * block, block)
        yield from f.close()
        return got

    results = st.run(program)
    for r, got in enumerate(results):
        np.testing.assert_array_equal(got, rank_pattern(r, block))


def test_parcoll_read_interleaved_intermediate_view():
    st = Stack(nprocs=4)
    nblocks, bsz = 4, 16

    def program(comm, io):
        ft = Vector(nblocks, bsz, comm.size * bsz, BYTE)
        f = yield from io.open(comm, "ri", hints={
            "protocol": "parcoll", "parcoll_ngroups": 2})
        f.set_view(comm.rank * bsz, BYTE, ft)
        yield from f.write_at_all(0, rank_pattern(comm.rank, nblocks * bsz))
        got = yield from f.read_at_all(0, nblocks * bsz)
        yield from f.close()
        return got

    results = st.run(program)
    for r, got in enumerate(results):
        np.testing.assert_array_equal(got, rank_pattern(r, nblocks * bsz))


def test_subgroup_comm_cached_across_calls():
    st = Stack(nprocs=8)
    block = 64

    def program(comm, io):
        f = yield from io.open(comm, "cache", hints={
            "protocol": "parcoll", "parcoll_ngroups": 4})
        for step in range(3):
            data = rank_pattern(comm.rank + step, block)
            yield from f.write_at_all(comm.rank * block, data)
        ncached = len(f.shared.parcoll_cache)
        yield from f.close()
        return ncached

    results = st.run(program)
    # two cache entries per rank (the plan-keyed comm + the held plan)
    # plus the two shared rank-independent entries (the global plan and
    # the aggregator distribution), unchanged across the three calls
    assert all(n == 18 for n in results)


def test_parcoll_model_mode_covers_file():
    st = Stack(nprocs=8, store_data=False)
    block = 1 << 14

    def program(comm, io):
        f = yield from io.open(comm, "model", hints={
            "protocol": "parcoll", "parcoll_ngroups": 4})
        yield from f.write_at_all(comm.rank * block, nbytes=block)
        yield from f.close()

    st.run(program)
    lf = st.fs.lookup("model")
    assert lf.tracker.is_fully_covered(0, 8 * block)


def test_parcoll_reduces_sync_time_vs_global():
    """The headline mechanism: smaller groups, less synchronization wait."""
    def run(protocol, ngroups):
        st = Stack(nprocs=16, cores_per_node=2, jitter=0.3,
                   stripe_size=4096, n_osts=8, stripe_count=8)
        block = 1 << 14

        def program(comm, io):
            f = yield from io.open(comm, "x", hints={
                "protocol": protocol, "parcoll_ngroups": ngroups,
                "cb_buffer_size": 4096})
            yield from f.write_at_all(comm.rank * block,
                                      rank_pattern(comm.rank, block))
            yield from f.close()

        st.run(program)
        return max(p.breakdown.get("sync") for p in st.world.procs)

    sync_global = run("ext2ph", 1)
    sync_parcoll = run("parcoll", 8)
    assert sync_parcoll < sync_global


def test_parcoll_ngroups_one_equals_ext2ph_result():
    """ParColl-1 degenerates to the baseline protocol (same bytes)."""
    def run(protocol):
        st = Stack(nprocs=4)

        def program(comm, io):
            f = yield from io.open(comm, "same", hints={"protocol": protocol})
            yield from f.write_at_all(comm.rank * 100,
                                      rank_pattern(comm.rank, 100))
            yield from f.close()

        st.run(program)
        return st.file_bytes("same")

    np.testing.assert_array_equal(run("ext2ph"), run("parcoll"))


class TestIntermediateViewUnit:
    def test_logical_segments_single_run(self):
        segs = (np.array([10, 50], dtype=np.int64),
                np.array([5, 5], dtype=np.int64))
        iv = IntermediateView(segs, logical_base=100)
        lo, ll = iv.logical_segments
        assert lo.tolist() == [100]
        assert ll.tolist() == [10]

    def test_translate_clips_physical(self):
        segs = (np.array([10, 50], dtype=np.int64),
                np.array([5, 5], dtype=np.int64))
        iv = IntermediateView(segs, logical_base=100)
        # logical [103, 107) = data bytes 3..7 = phys [13,2) + [50,2)
        po, pl = iv.translate((np.array([103], dtype=np.int64),
                               np.array([4], dtype=np.int64)))
        assert po.tolist() == [13, 50]
        assert pl.tolist() == [2, 2]

    def test_translate_out_of_range_rejected(self):
        segs = (np.array([0], dtype=np.int64), np.array([4], dtype=np.int64))
        iv = IntermediateView(segs, logical_base=0)
        with pytest.raises(ParCollError):
            iv.translate((np.array([2], dtype=np.int64),
                          np.array([10], dtype=np.int64)))
