"""Property-based tests: partition-plan and striping invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lustre import StripeLayout
from repro.parcoll import plan_partition
from repro.parcoll.intermediate_view import IntermediateView


# -- partition plans -------------------------------------------------------

@st.composite
def extent_lists(draw):
    """Random per-rank (lo, hi, nbytes) lists, mixing shapes and idles."""
    n = draw(st.integers(1, 24))
    kind = draw(st.sampled_from(["serial", "overlapping", "mixed"]))
    out = []
    cursor = 0
    for r in range(n):
        if draw(st.integers(0, 9)) == 0:
            out.append((-1, -1, 0))  # idle rank
            continue
        nbytes = draw(st.integers(1, 500))
        if kind == "serial":
            lo = cursor + draw(st.integers(0, 50))
            hi = lo + nbytes + draw(st.integers(0, 100))
            cursor = hi
        elif kind == "overlapping":
            lo = draw(st.integers(0, 200))
            hi = lo + nbytes + draw(st.integers(0, 400))
        else:
            lo = draw(st.integers(0, 1000))
            hi = lo + nbytes + draw(st.integers(0, 200))
        out.append((lo, hi, nbytes))
    return out


@settings(max_examples=120)
@given(extent_lists(), st.integers(1, 16))
def test_plan_assigns_every_rank_a_valid_group(extents, G):
    plan = plan_partition(extents, G)
    assert len(plan.group_of) == len(extents)
    assert all(0 <= g < plan.ngroups for g in plan.group_of)
    active = sum(1 for lo, _, nb in extents if lo >= 0 and nb > 0)
    assert plan.ngroups <= max(1, min(G, active if active else 1))


@settings(max_examples=120)
@given(extent_lists(), st.integers(1, 16))
def test_direct_plans_have_disjoint_fas_containing_members(extents, G):
    plan = plan_partition(extents, G)
    if plan.mode != "direct":
        return
    fas = plan.fa_bounds
    for g in range(plan.ngroups - 1):
        assert fas[g][1] <= fas[g + 1][0]
    for r, (lo, hi, nb) in enumerate(extents):
        if lo >= 0 and nb > 0:
            g = plan.group_of[r]
            assert fas[g][0] <= lo and hi <= fas[g][1]


@settings(max_examples=120)
@given(extent_lists(), st.integers(1, 16))
def test_intermediate_plans_partition_logical_space(extents, G):
    plan = plan_partition(extents, G)
    if plan.mode != "intermediate":
        return
    total = sum(nb for lo, _, nb in extents if lo >= 0)
    fas = plan.fa_bounds
    assert fas[0][0] == 0
    assert fas[-1][1] == total
    for g in range(plan.ngroups - 1):
        assert fas[g][1] == fas[g + 1][0]
    # every active rank's logical range sits inside its group's FA
    for r, (lo, hi, nb) in enumerate(extents):
        if lo >= 0 and nb > 0:
            g = plan.group_of[r]
            pfx = plan.logical_prefix[r]
            assert fas[g][0] <= pfx and pfx + nb <= fas[g][1]


@settings(max_examples=60)
@given(extent_lists(), st.integers(1, 16))
def test_plan_byte_balance_bounded(extents, G):
    """No group exceeds the ideal share by more than one rank's bytes."""
    plan = plan_partition(extents, G)
    active = [(r, nb) for r, (lo, _, nb) in enumerate(extents)
              if lo >= 0 and nb > 0]
    if not active:
        return
    total = sum(nb for _, nb in active)
    biggest = max(nb for _, nb in active)
    ideal = total / plan.ngroups
    per_group = [0] * plan.ngroups
    for r, nb in active:
        per_group[plan.group_of[r]] += nb
    assert max(per_group) <= ideal + biggest + 1e-9


@settings(max_examples=60)
@given(extent_lists(), st.integers(1, 16))
def test_plan_deterministic(extents, G):
    assert plan_partition(extents, G) == plan_partition(extents, G)


# -- intermediate-view translation ------------------------------------------

@st.composite
def segment_sets(draw):
    n = draw(st.integers(1, 20))
    offs, lens = [], []
    cursor = 0
    for _ in range(n):
        cursor += draw(st.integers(1, 30))
        ln = draw(st.integers(1, 40))
        offs.append(cursor)
        lens.append(ln)
        cursor += ln
    return (np.array(offs, dtype=np.int64), np.array(lens, dtype=np.int64))


@settings(max_examples=100)
@given(segment_sets(), st.integers(0, 10_000), st.data())
def test_translate_preserves_bytes_and_order(segs, base, data):
    iv = IntermediateView(segs, logical_base=base)
    total = iv.total
    dlo = data.draw(st.integers(0, total - 1))
    dhi = data.draw(st.integers(dlo + 1, total))
    sub = (np.array([base + dlo], dtype=np.int64),
           np.array([dhi - dlo], dtype=np.int64))
    po, pl = iv.translate(sub)
    # byte count preserved
    assert int(pl.sum()) == dhi - dlo
    # physical segments are a sorted subset of the original coverage
    assert np.all(np.diff(po) > 0) or po.size <= 1
    covered = set()
    for o, l in zip(segs[0].tolist(), segs[1].tolist()):
        covered.update(range(o, o + l))
    for o, l in zip(po.tolist(), pl.tolist()):
        assert set(range(o, o + l)) <= covered


@settings(max_examples=50)
@given(segment_sets(), st.data())
def test_translate_partition_reassembles(segs, data):
    """Cutting the logical range at arbitrary points loses nothing."""
    iv = IntermediateView(segs, logical_base=0)
    total = iv.total
    ncuts = data.draw(st.integers(0, 5))
    cuts = sorted({data.draw(st.integers(1, max(1, total - 1)))
                   for _ in range(ncuts)} | {0, total})
    covered = set()
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        if hi <= lo:
            continue
        po, pl = iv.translate((np.array([lo], dtype=np.int64),
                               np.array([hi - lo], dtype=np.int64)))
        for o, l in zip(po.tolist(), pl.tolist()):
            piece = set(range(o, o + l))
            assert covered.isdisjoint(piece)
            covered |= piece
    expected = set()
    for o, l in zip(segs[0].tolist(), segs[1].tolist()):
        expected.update(range(o, o + l))
    assert covered == expected


# -- striping ---------------------------------------------------------------

@settings(max_examples=100)
@given(
    st.integers(1, 1000), st.integers(1, 8), st.integers(1, 16),
    st.lists(st.tuples(st.integers(0, 5000), st.integers(1, 700)),
             min_size=1, max_size=20),
)
def test_chunks_partition_segments_exactly(stripe_size, count_idx, n_osts,
                                           raw):
    stripe_count = min(count_idx, n_osts)
    lay = StripeLayout(stripe_size, stripe_count, n_osts)
    from repro.datatypes.flatten import coalesce

    offs, lens = coalesce([o for o, _ in raw], [l for _, l in raw])
    co, cl, cost = lay.chunks(offs, lens)
    # totals preserved
    assert cl.sum() == lens.sum()
    # each chunk sits inside one stripe and on the right OST
    for o, l, ost in zip(co.tolist(), cl.tolist(), cost.tolist()):
        assert o // stripe_size == (o + l - 1) // stripe_size
        assert ost == int(lay.ost_of_offset(o))
    # chunk coverage equals segment coverage
    cover_seg = set()
    for o, l in zip(offs.tolist(), lens.tolist()):
        cover_seg.update(range(o, o + l))
    cover_chunk = set()
    for o, l in zip(co.tolist(), cl.tolist()):
        cover_chunk.update(range(o, o + l))
    assert cover_seg == cover_chunk
