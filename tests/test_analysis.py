"""Analysis tools: breakdown series, coverage checker, calibration."""

from functools import partial

import numpy as np
import pytest

from repro.analysis import (BreakdownSeries, CoverageReport,
                            PlatformCalibration, calibrate, check_coverage,
                            wall_diagnosis)
from repro.cluster import NetworkParams
from repro.datatypes import BYTE, Subarray, Vector
from repro.harness import ExperimentConfig, run_experiment
from repro.workloads import TileIOConfig, tile_io_program


def tile_run(nprocs):
    wl = TileIOConfig(tile_rows=256, tile_cols=192, element_size=64,
                      hints={"protocol": "ext2ph"})
    cfg = ExperimentConfig(nprocs=nprocs,
                           lustre={"n_osts": 16, "default_stripe_count": 16})
    return run_experiment(cfg, partial(tile_io_program, wl))


class TestBreakdownSeries:
    def test_accumulates_and_reports_growth(self):
        series = BreakdownSeries()
        for p in (8, 32):
            series.add(p, tile_run(p))
        assert set(series.points) == {8, 32}
        g = series.growth("sync")
        assert g is not None and g > 1.0

    def test_scaling_exponent_positive_for_sync(self):
        series = BreakdownSeries()
        for p in (8, 16, 32):
            series.add(p, tile_run(p))
        exp = series.scaling_exponent("sync")
        assert exp is not None and exp > 0

    def test_wall_onset_none_when_never_dominant(self):
        series = BreakdownSeries()
        series.points[4] = {"sync": 1.0, "io": 9.0, "exchange": 0.0}
        series.shares[4] = 0.1
        assert series.wall_onset() is None

    def test_diagnosis_mentions_wall_when_sync_explodes(self):
        series = BreakdownSeries()
        for k, (sync, io) in {8: (1.0, 1.0), 64: (50.0, 2.0)}.items():
            series.points[k] = {"sync": sync, "io": io, "exchange": 0.1}
            series.shares[k] = sync / (sync + io + 0.1)
        text = wall_diagnosis(series)
        assert "collective wall" in text

    def test_diagnosis_io_bound(self):
        series = BreakdownSeries()
        for k, (sync, io) in {8: (0.1, 5.0), 64: (0.2, 40.0)}.items():
            series.points[k] = {"sync": sync, "io": io, "exchange": 0.1}
            series.shares[k] = sync / (sync + io + 0.1)
        assert "I/O capacity bound" in wall_diagnosis(series)


class TestCoverage:
    def test_exact_tiling(self):
        patterns = [Subarray((4, 8), (2, 8), (2 * r, 0), BYTE)
                    for r in range(2)]
        rep = check_coverage(patterns)
        assert rep.exact_tiling
        assert rep.covered_bytes == 32
        assert "exact tiling" in rep.summary()

    def test_gaps_detected(self):
        patterns = [(np.array([0]), np.array([10])),
                    (np.array([20]), np.array([10]))]
        rep = check_coverage(patterns)
        assert rep.disjoint and not rep.exact_tiling
        assert rep.gap_bytes == 10

    def test_overlap_detected_with_pairs(self):
        patterns = [(np.array([0]), np.array([10])),
                    (np.array([5]), np.array([10])),
                    (np.array([100]), np.array([5]))]
        rep = check_coverage(patterns)
        assert not rep.disjoint
        assert rep.overlap_bytes == 5
        assert (0, 1) in rep.overlapping_pairs
        assert "OVERLAPPING" in rep.summary()

    def test_interleaved_with_disps(self):
        ft = Vector(4, 8, 16, BYTE)
        rep = check_coverage([ft, ft], disps=[0, 8])
        assert rep.exact_tiling

    def test_expected_range_widens_gaps(self):
        rep = check_coverage([(np.array([10]), np.array([10]))],
                             expected_range=(0, 100))
        assert rep.gap_bytes == 90

    def test_fragmentation_reported(self):
        ft = Vector(16, 4, 8, BYTE)
        rep = check_coverage([ft])
        assert rep.extents_per_rank == [16]

    def test_empty_patterns(self):
        rep = check_coverage([(np.array([]), np.array([]))])
        assert rep.covered_bytes == 0


class TestCalibration:
    def test_measures_configured_constants(self):
        params = NetworkParams(latency=5e-6, bandwidth=2e9,
                               send_overhead=1e-6, recv_overhead=1e-6)
        cal = calibrate(net_params=params, proc_counts=(4, 16))
        # one-way zero-byte time ~ overheads + latency
        assert cal.p2p_latency == pytest.approx(7e-6, rel=0.3)
        assert cal.p2p_bandwidth == pytest.approx(2e9, rel=0.3)
        # barrier grows with log P
        assert cal.barrier_seconds[16] > cal.barrier_seconds[4]
        assert cal.ost_stream_bandwidth > 0
        assert "barrier" in cal.summary()

    def test_ost_bandwidth_close_to_config(self):
        from repro.lustre import LustreParams

        cal = calibrate(
            lustre_params=LustreParams(ost_bandwidth=300e6, jitter=0.0,
                                       store_data=False),
            proc_counts=(4,))
        assert cal.ost_stream_bandwidth == pytest.approx(300e6, rel=0.2)
