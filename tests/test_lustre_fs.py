"""File-system behaviour: timing, contention, locks, data integrity."""

import numpy as np
import pytest

from repro.errors import FileSystemError
from repro.lustre import LustreFS, LustreParams
from repro.sim import Engine


def make_fs(**kw):
    kw.setdefault("n_osts", 4)
    kw.setdefault("default_stripe_count", 4)
    kw.setdefault("default_stripe_size", 1024)
    kw.setdefault("jitter", 0.0)
    eng = Engine()
    return eng, LustreFS(eng, LustreParams(**kw))


def run(eng, *gens):
    return eng.run_tasks(list(gens))


def test_open_creates_and_reopens_same_file():
    eng, fs = make_fs()

    def prog():
        f1 = yield from fs.open("a")
        f2 = yield from fs.open("a")
        return f1 is f2

    (same,) = run(eng, prog())
    assert same


def test_open_missing_without_create_raises():
    eng, fs = make_fs()

    def prog():
        yield from fs.open("nope", create=False)

    with pytest.raises(FileSystemError):
        run(eng, prog())


def test_write_read_roundtrip():
    eng, fs = make_fs()
    out = {}

    def prog():
        f = yield from fs.open("data")
        payload = np.arange(256, dtype=np.uint8)
        yield from fs.write(f, client=0, offsets=[100], lengths=[256],
                            data=payload)
        got = yield from fs.read(f, client=0, offsets=[100], lengths=[256])
        out["got"] = got

    run(eng, prog())
    np.testing.assert_array_equal(out["got"], np.arange(256, dtype=np.uint8))


def test_noncontiguous_write_lands_at_right_offsets():
    eng, fs = make_fs()
    out = {}

    def prog():
        f = yield from fs.open("nc")
        data = np.concatenate([np.full(10, 1, np.uint8), np.full(10, 2, np.uint8)])
        yield from fs.write(f, 0, offsets=[0, 50], lengths=[10, 10], data=data)
        out["contents"] = f.contents()

    run(eng, prog())
    c = out["contents"]
    assert c.size == 60
    assert (c[0:10] == 1).all()
    assert (c[10:50] == 0).all()
    assert (c[50:60] == 2).all()


def test_write_data_size_mismatch_rejected():
    eng, fs = make_fs()

    def prog():
        f = yield from fs.open("bad")
        yield from fs.write(f, 0, [0], [10], data=np.zeros(5, np.uint8))

    with pytest.raises(FileSystemError):
        run(eng, prog())


def test_model_mode_tracks_extents_without_data():
    eng, fs = make_fs(store_data=False)
    out = {}

    def prog():
        f = yield from fs.open("big")
        yield from fs.write(f, 0, [0, 1 << 20], [512, 512])
        got = yield from fs.read(f, 0, [0], [512])
        out["f"] = f
        out["got"] = got

    run(eng, prog())
    assert out["got"] is None
    assert out["f"].tracker.covered_bytes == 1024
    with pytest.raises(FileSystemError):
        out["f"].contents()


def test_striped_write_uses_multiple_osts():
    eng, fs = make_fs()

    def prog():
        f = yield from fs.open("striped")
        yield from fs.write(f, 0, [0], [4096],
                            data=np.zeros(4096, np.uint8))

    run(eng, prog())
    used = [o for o in fs.osts if o.total_requests > 0]
    assert len(used) == 4  # 4096 bytes over 4 x 1 KiB stripes


def test_single_ost_contention_serializes_clients():
    eng, fs = make_fs(ost_bandwidth=1e6, ost_rpc_overhead=0.0,
                      client_overhead=0.0, mds_op_cost=0.0,
                      ost_chunk_overhead=0.0, lock_grant_cost=0.0,
                      ost_seek_cost=0.0)
    finish = {}

    def prog(client):
        f = yield from fs.open("hot")
        # both clients hit stripe 0 = OST 0
        yield from fs.write(f, client, [0], [1000],
                            data=np.zeros(1000, np.uint8))
        finish[client] = eng.now

    run(eng, prog(0), prog(1))
    times = sorted(finish.values())
    # second client's 1 ms of service queues behind the first (plus one
    # lock revocation); small per-extent/lock-grant overheads allowed
    assert times[0] == pytest.approx(0.001, abs=1e-3)
    assert times[1] >= 0.002


def test_lock_revocation_charged_between_clients():
    eng, fs = make_fs()
    f_holder = {}

    def prog(client, offset):
        f = yield from fs.open("locky")
        f_holder["f"] = f
        yield from fs.write(f, client, [offset], [10],
                            data=np.zeros(10, np.uint8))

    run(eng, prog(0, 0), prog(1, 16))  # same stripe, different clients
    assert f_holder["f"].locks.revocations >= 1


def test_same_client_pays_no_revocation():
    eng, fs = make_fs()
    f_holder = {}

    def prog():
        f = yield from fs.open("solo")
        f_holder["f"] = f
        for i in range(5):
            yield from fs.write(f, 0, [i * 10], [10],
                                data=np.zeros(10, np.uint8))

    run(eng, prog())
    assert f_holder["f"].locks.revocations == 0


def test_concurrent_readers_share_locks():
    eng, fs = make_fs()
    f_holder = {}

    def writer():
        f = yield from fs.open("shared")
        f_holder["f"] = f
        yield from fs.write(f, 0, [0], [100], data=np.zeros(100, np.uint8))

    def reader(client):
        # runs after writer because of engine determinism? enforce via open order
        f = yield from fs.open("shared")
        yield from fs.read(f, client, [0], [100])

    eng2, fs2 = make_fs()

    def seq():
        f = yield from fs2.open("shared")
        yield from fs2.write(f, 0, [0], [100], data=np.zeros(100, np.uint8))
        base = f.locks.revocations
        yield from fs2.read(f, 1, [0], [50])
        yield from fs2.read(f, 2, [50], [50])
        # reader 1 revoked the writer; reader 2 shares with reader 1
        return f.locks.revocations - base

    (extra,) = run(eng2, seq())
    assert extra == 1


def test_rpc_overhead_scales_with_chunk_count():
    # many small discontiguous chunks cost more than one big write
    eng1, fs1 = make_fs(mds_op_cost=0.0, client_overhead=0.0)
    eng2, fs2 = make_fs(mds_op_cost=0.0, client_overhead=0.0)

    def small(fs):
        f = yield from fs.open("x")
        offs = np.arange(64, dtype=np.int64) * 16
        lens = np.full(64, 8, dtype=np.int64)
        yield from fs.write(f, 0, offs, lens,
                            data=np.zeros(64 * 8, np.uint8))
        return fs.engine.now

    def big(fs):
        f = yield from fs.open("x")
        yield from fs.write(f, 0, [0], [512], data=np.zeros(512, np.uint8))
        return fs.engine.now

    (t_small,) = run(eng1, small(fs1))
    (t_big,) = run(eng2, big(fs2))
    assert t_small > t_big


def test_mds_serializes_opens():
    eng, fs = make_fs(mds_op_cost=1.0, client_overhead=0.0)
    finish = {}

    def prog(i):
        yield from fs.open(f"f{i}")
        finish[i] = eng.now

    run(eng, prog(0), prog(1), prog(2))
    assert sorted(finish.values()) == pytest.approx([1.0, 2.0, 3.0])


def test_unlink_removes_file():
    eng, fs = make_fs()

    def prog():
        yield from fs.open("gone")
        yield from fs.unlink("gone")
        return "gone" in fs._files

    (exists,) = run(eng, prog())
    assert not exists


def test_jitter_is_deterministic_across_runs():
    def elapsed():
        eng, fs = make_fs(jitter=0.3)

        def prog():
            f = yield from fs.open("j")
            yield from fs.write(f, 0, [0], [2048], data=np.zeros(2048, np.uint8))
            return eng.now

        (t,) = run(eng, prog())
        return t

    assert elapsed() == elapsed()


def test_stats_counters():
    eng, fs = make_fs()

    def prog():
        f = yield from fs.open("s")
        yield from fs.write(f, 0, [0], [100], data=np.zeros(100, np.uint8))
        yield from fs.read(f, 0, [0], [40])

    run(eng, prog())
    assert fs.bytes_written == 100
    assert fs.bytes_read == 40
