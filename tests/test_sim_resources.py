"""Unit tests for FIFO resources and RNG streams."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Engine, FIFOResource, RngStreams, Sleep, TraceRecorder


def test_single_request_service_time():
    eng = Engine()
    res = FIFOResource(eng, "ost", rate=100.0, overhead=1.0)

    def prog():
        done = yield from res.service(200)
        return done

    (done,) = eng.run_tasks([prog()])
    assert done == pytest.approx(1.0 + 200 / 100.0)
    assert eng.now == pytest.approx(3.0)


def test_concurrent_requests_serialize():
    eng = Engine()
    res = FIFOResource(eng, "ost", rate=100.0, overhead=0.0)
    finish = {}

    def prog(i):
        yield from res.service(100)  # 1 second each
        finish[i] = eng.now

    eng.run_tasks([prog(0), prog(1), prog(2)])
    assert finish[0] == pytest.approx(1.0)
    assert finish[1] == pytest.approx(2.0)
    assert finish[2] == pytest.approx(3.0)


def test_resource_idles_then_serves():
    eng = Engine()
    res = FIFOResource(eng, "ost", rate=10.0, overhead=0.0)

    def prog():
        yield Sleep(5.0)
        yield from res.service(10)
        return eng.now

    (t,) = eng.run_tasks([prog()])
    assert t == pytest.approx(6.0)


def test_reserve_with_extra_time():
    eng = Engine()
    res = FIFOResource(eng, "ost", rate=10.0, overhead=0.5)
    done = res.reserve(10, extra=2.0)
    assert done == pytest.approx(0.5 + 1.0 + 2.0)
    assert res.busy_until == done


def test_resource_counters_and_utilization():
    eng = Engine()
    res = FIFOResource(eng, "ost", rate=100.0)

    def prog():
        yield from res.service(50)
        yield from res.service(50)

    eng.run_tasks([prog()])
    assert res.total_bytes == 100
    assert res.total_requests == 2
    assert res.utilization() == pytest.approx(1.0)


def test_invalid_resource_parameters():
    eng = Engine()
    with pytest.raises(SimulationError):
        FIFOResource(eng, "bad", rate=0.0)
    with pytest.raises(SimulationError):
        FIFOResource(eng, "bad", rate=1.0, overhead=-1.0)
    res = FIFOResource(eng, "ok", rate=1.0)
    with pytest.raises(SimulationError):
        res.reserve(-5)


def test_rng_streams_are_deterministic_and_independent():
    a1 = RngStreams(seed=7).stream("ost-3").random(5)
    a2 = RngStreams(seed=7).stream("ost-3").random(5)
    b = RngStreams(seed=7).stream("ost-4").random(5)
    c = RngStreams(seed=8).stream("ost-3").random(5)
    np.testing.assert_array_equal(a1, a2)
    assert not np.array_equal(a1, b)
    assert not np.array_equal(a1, c)


def test_rng_fork_changes_streams():
    root = RngStreams(seed=7)
    fork = root.fork("rep-1")
    assert not np.array_equal(root.stream("x").random(4), fork.stream("x").random(4))


def test_trace_recorder_filters_and_caps():
    tr = TraceRecorder(categories={"io"}, max_records=2)
    tr.record(0.0, "io", "a")
    tr.record(1.0, "net", "ignored")
    tr.record(2.0, "io", "b")
    tr.record(3.0, "io", "dropped")
    assert len(tr) == 2
    assert tr.dropped == 1
    assert tr.by_category("io") == [(0.0, "a"), (2.0, "b")]
    tr.clear()
    assert len(tr) == 0 and tr.dropped == 0
