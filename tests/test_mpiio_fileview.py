"""File views: data-space to file-space mapping."""

import numpy as np
import pytest

from repro.datatypes import BYTE, Contiguous, DOUBLE, INT, Subarray, Vector
from repro.errors import MPIIOError
from repro.mpiio import FileView


def view_segs(view, lo, hi):
    o, l = view.segments_for(lo, hi)
    return list(zip(o.tolist(), l.tolist()))


class TestByteView:
    def test_identity_view(self):
        v = FileView()
        assert view_segs(v, 0, 100) == [(0, 100)]
        assert view_segs(v, 10, 30) == [(10, 20)]

    def test_displacement_shifts(self):
        v = FileView(disp=1000)
        assert view_segs(v, 0, 50) == [(1000, 50)]

    def test_empty_range(self):
        v = FileView()
        o, l = v.segments_for(5, 5)
        assert o.size == 0

    def test_invalid_range(self):
        v = FileView()
        with pytest.raises(MPIIOError):
            v.segments_for(-1, 5)
        with pytest.raises(MPIIOError):
            v.segments_for(10, 5)


class TestStridedView:
    def test_vector_filetype_tiles(self):
        # filetype: 2 bytes data, 6-byte extent (stride 3 of 2-byte blocks)
        ft = Vector(2, 2, 3, BYTE)  # blocks at 0 and 3, extent 8? check below
        v = FileView(0, BYTE, ft)
        # one tile: data bytes 0..4 at file 0..2,3..5
        assert view_segs(v, 0, 4) == [(0, 2), (3, 2)]
        # second tile starts at extent
        e = ft.extent
        assert view_segs(v, 4, 8) == [(e, 2), (e + 3, 2)]

    def test_partial_head_and_tail(self):
        ft = Vector(2, 2, 3, BYTE)
        v = FileView(0, BYTE, ft)
        # data bytes 1..3: second half of block 0, first half of block 1
        assert view_segs(v, 1, 3) == [(1, 1), (3, 1)]

    def test_range_spanning_many_tiles(self):
        # extent 5 makes each tile's last block touch the next tile's
        # first block, so the cross-tile segments coalesce
        ft = Vector(2, 2, 3, BYTE)  # 4 data bytes per tile, extent 5
        v = FileView(0, BYTE, ft)
        segs = view_segs(v, 2, 10)
        assert segs == [(3, 4), (8, 4)]

    def test_total_data_bytes_preserved(self):
        ft = Vector(3, 5, 11, INT)
        v = FileView(64, INT, ft)
        for lo, hi in [(0, 60), (7, 133), (60, 180), (1, 2)]:
            o, l = v.segments_for(lo, hi)
            assert l.sum() == hi - lo


class TestSubarrayView:
    def test_tile_io_style_view(self):
        # 2D array 8x8 bytes; this process owns the 4x4 tile at (0, 4)
        ft = Subarray((8, 8), (4, 4), (0, 4), BYTE)
        v = FileView(0, BYTE, ft)
        segs = view_segs(v, 0, 16)
        assert segs == [(4, 4), (12, 4), (20, 4), (28, 4)]

    def test_etype_double(self):
        ft = Subarray((4, 4), (2, 2), (1, 1), DOUBLE)
        v = FileView(0, DOUBLE, ft)
        # offset in etype units: 1 double = skip 8 data bytes
        o, l = v.segments_for(8, 32)
        assert l.sum() == 24


class TestViewValidation:
    def test_etype_filetype_mismatch(self):
        with pytest.raises(MPIIOError):
            FileView(0, DOUBLE, Contiguous(3, BYTE))  # 3 % 8 != 0

    def test_negative_disp(self):
        with pytest.raises(MPIIOError):
            FileView(-5)

    def test_data_extent(self):
        ft = Vector(2, 2, 3, BYTE)
        v = FileView(100, BYTE, ft)
        lo, hi = v.data_extent(0, 4)
        assert lo == 100
        assert hi == 105

    def test_is_contiguous(self):
        assert FileView().is_contiguous
        assert not FileView(8).is_contiguous
        assert not FileView(0, BYTE, Vector(2, 1, 3, BYTE)).is_contiguous


class TestViewAgainstNumpyReference:
    def test_random_subarray_views_match(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            rows, cols = rng.integers(2, 12, 2)
            sr, sc = rng.integers(1, rows + 1), rng.integers(1, cols + 1)
            r0 = rng.integers(0, rows - sr + 1)
            c0 = rng.integers(0, cols - sc + 1)
            ft = Subarray((rows, cols), (sr, sc), (r0, c0), BYTE)
            v = FileView(0, BYTE, ft)
            total = sr * sc
            lo = int(rng.integers(0, total))
            hi = int(rng.integers(lo, total + 1))
            o, l = v.segments_for(lo, hi)
            # reference: element positions of the tile in row-major order
            positions = np.arange(rows * cols).reshape(rows, cols)
            flat = positions[r0:r0 + sr, c0:c0 + sc].ravel()[lo:hi]
            covered = np.concatenate(
                [np.arange(off, off + ln) for off, ln in zip(o, l)]
            ) if o.size else np.empty(0, np.int64)
            np.testing.assert_array_equal(np.sort(flat), covered)
