"""Split-phase (pipelined) collective writes: correctness and overlap."""

import numpy as np
import pytest

from tests.conftest import Stack, rank_pattern


def run_ior_like(pipelined, nprocs=8, block=4096, cb=512):
    st = Stack(nprocs=nprocs, stripe_size=1024, n_osts=4, stripe_count=4)

    def program(comm, io):
        f = yield from io.open(comm, "pipe", hints={
            "protocol": "ext2ph", "cb_buffer_size": cb,
            "pipelined_io": pipelined})
        yield from f.write_at_all(comm.rank * block,
                                  rank_pattern(comm.rank, block))
        yield from f.close()
        return comm.now

    times = st.run(program)
    return st, max(times)


class TestPipelinedWrites:
    def test_bytes_identical(self):
        a, _ = run_ior_like(False)
        b, _ = run_ior_like(True)
        np.testing.assert_array_equal(a.file_bytes("pipe"),
                                      b.file_bytes("pipe"))

    def test_overlap_not_slower(self):
        """Overlapping write rounds must never lose to the blocking path."""
        _, t_block = run_ior_like(False)
        _, t_pipe = run_ior_like(True)
        assert t_pipe <= t_block * 1.01

    def test_overlap_helps_with_many_rounds(self):
        """With many small rounds, hiding the write time should win."""
        _, t_block = run_ior_like(False, block=16384, cb=512)
        _, t_pipe = run_ior_like(True, block=16384, cb=512)
        assert t_pipe < t_block

    def test_works_with_parcoll(self):
        st = Stack(nprocs=8)
        block = 512

        def program(comm, io):
            f = yield from io.open(comm, "ppc", hints={
                "protocol": "parcoll", "parcoll_ngroups": 2,
                "pipelined_io": True, "cb_buffer_size": 128})
            yield from f.write_at_all(comm.rank * block,
                                      rank_pattern(comm.rank, block))
            yield from f.close()

        st.run(program)
        ref = np.concatenate([rank_pattern(r, block) for r in range(8)])
        np.testing.assert_array_equal(st.file_bytes("ppc"), ref)

    def test_model_mode(self):
        st = Stack(nprocs=4, store_data=False)
        block = 1 << 14

        def program(comm, io):
            f = yield from io.open(comm, "pm", hints={
                "protocol": "ext2ph", "pipelined_io": True,
                "cb_buffer_size": 2048})
            n = yield from f.write_at_all(comm.rank * block, nbytes=block)
            yield from f.close()
            return n

        assert st.run(program) == [block] * 4
        assert st.fs.lookup("pm").tracker.is_fully_covered(0, 4 * block)

    def test_sequential_collective_calls(self):
        """Pending writes of call N must not leak into call N+1."""
        st = Stack(nprocs=4)

        def program(comm, io):
            f = yield from io.open(comm, "seq", hints={
                "protocol": "ext2ph", "pipelined_io": True,
                "cb_buffer_size": 256})
            for step in range(3):
                yield from f.write_at_all(4096 * step + comm.rank * 512,
                                          rank_pattern(comm.rank + step, 512))
            yield from f.close()

        st.run(program)
        got = st.file_bytes("seq")
        for step in range(3):
            for r in range(4):
                seg = got[4096 * step + r * 512:4096 * step + (r + 1) * 512]
                np.testing.assert_array_equal(seg, rank_pattern(r + step, 512))
