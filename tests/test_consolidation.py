"""Node-level consolidation: correctness and traffic reduction."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineConfig
from repro.datatypes import BYTE, Subarray
from repro.mpiio.consolidation import node_groups
from tests.conftest import Stack, rank_pattern


class TestNodeGroups:
    def test_block_mapping_leaders(self):
        st = Stack(nprocs=8, cores_per_node=2, mapping="block")
        got = {}

        def program(comm, io):
            got[comm.rank] = node_groups(comm, io.world.machine)
            return
            yield  # pragma: no cover

        st.run(program)
        assert got[0] == (0, [0, 1])
        assert got[1] == (0, [0, 1])
        assert got[6] == (6, [6, 7])

    def test_cyclic_mapping_leaders(self):
        st = Stack(nprocs=8, cores_per_node=2, mapping="cyclic")
        got = {}

        def program(comm, io):
            got[comm.rank] = node_groups(comm, io.world.machine)
            return
            yield  # pragma: no cover

        st.run(program)
        assert got[4] == (0, [0, 4])  # node 0 hosts ranks 0 and 4
        assert got[7] == (3, [3, 7])


class TestConsolidatedWrites:
    def run_write(self, consolidation, nprocs=8, cores=4, **extra_hints):
        st = Stack(nprocs=nprocs, cores_per_node=cores)
        block = 256

        def program(comm, io):
            f = yield from io.open(comm, "cons", hints={
                "protocol": "ext2ph",
                "cb_node_consolidation": consolidation,
                "cb_buffer_size": 512,
                **extra_hints,
            })
            yield from f.write_at_all(comm.rank * block,
                                      rank_pattern(comm.rank, block))
            yield from f.close()

        st.run(program)
        return st

    def test_bytes_identical_with_and_without(self):
        a = self.run_write(False).file_bytes("cons")
        b = self.run_write(True).file_bytes("cons")
        np.testing.assert_array_equal(a, b)

    def test_fewer_cross_node_messages(self):
        # one remote aggregator: without consolidation every core talks
        # to it across the network; with it only node leaders do
        kw = dict(nprocs=16, cores=4, cb_config_ranks=(15,))
        base = self.run_write(False, **kw)
        cons = self.run_write(True, **kw)
        assert (cons.world.network.cross_node_messages
                < base.world.network.cross_node_messages)
        # and the data volume does not blow up
        assert (cons.world.network.cross_node_bytes
                <= 1.5 * base.world.network.cross_node_bytes)

    def test_tiled_pattern_correct(self):
        st = Stack(nprocs=8, cores_per_node=4)
        rows, cols, tr, tc = 16, 8, 4, 4

        def program(comm, io):
            pr, pc = divmod(comm.rank, 2)
            ft = Subarray((rows, cols), (tr, tc), (pr * tr, pc * tc), BYTE)
            f = yield from io.open(comm, "ctile", hints={
                "protocol": "ext2ph", "cb_node_consolidation": True,
                "cb_buffer_size": 32})
            f.set_view(0, BYTE, ft)
            yield from f.write_at_all(0, rank_pattern(comm.rank, tr * tc))
            yield from f.close()

        st.run(program)
        got = st.file_bytes("ctile").reshape(rows, cols)
        for r in range(8):
            pr, pc = divmod(r, 2)
            tile = got[pr * tr:(pr + 1) * tr, pc * tc:(pc + 1) * tc]
            np.testing.assert_array_equal(tile.ravel(),
                                          rank_pattern(r, tr * tc))

    def test_with_parcoll(self):
        st = Stack(nprocs=8, cores_per_node=2)
        block = 128

        def program(comm, io):
            f = yield from io.open(comm, "cpc", hints={
                "protocol": "parcoll", "parcoll_ngroups": 2,
                "cb_node_consolidation": True})
            yield from f.write_at_all(comm.rank * block,
                                      rank_pattern(comm.rank, block))
            yield from f.close()

        st.run(program)
        got = st.file_bytes("cpc")
        ref = np.concatenate([rank_pattern(r, block) for r in range(8)])
        np.testing.assert_array_equal(got, ref)

    def test_model_mode(self):
        st = Stack(nprocs=8, cores_per_node=4, store_data=False)
        block = 1 << 14

        def program(comm, io):
            f = yield from io.open(comm, "cm", hints={
                "protocol": "ext2ph", "cb_node_consolidation": True})
            n = yield from f.write_at_all(comm.rank * block, nbytes=block)
            yield from f.close()
            return n

        assert st.run(program) == [block] * 8
        assert st.fs.lookup("cm").tracker.is_fully_covered(0, 8 * block)

    def test_single_core_nodes_degenerate_cleanly(self):
        st = Stack(nprocs=4, cores_per_node=1)
        block = 64

        def program(comm, io):
            f = yield from io.open(comm, "c1", hints={
                "protocol": "ext2ph", "cb_node_consolidation": True})
            yield from f.write_at_all(comm.rank * block,
                                      rank_pattern(comm.rank, block))
            yield from f.close()

        st.run(program)
        ref = np.concatenate([rank_pattern(r, block) for r in range(4)])
        np.testing.assert_array_equal(st.file_bytes("c1"), ref)
