"""Layer 3: the generator fleet and the seeded differential harness."""

import json

from hypothesis import given, settings

from repro.validate.differential import (BACKENDS, PATTERNS, DiffCase,
                                         generate_cases, golden_bytes,
                                         run_case, run_differential)
from repro.validate.strategies import diff_cases, protocol_hints

# how many generated cases the in-suite gate runs (CI's validate-smoke
# job runs the full 200-case sweep through the CLI)
SMOKE_CASES = 12


class TestGenerateCases:
    def test_same_seed_same_cases(self):
        assert generate_cases(20, seed=7) == generate_cases(20, seed=7)
        assert generate_cases(20, seed=7) != generate_cases(20, seed=8)

    def test_small_draws_cover_patterns_and_backends(self):
        cases = generate_cases(8, seed=0)
        assert {c.pattern for c in cases} == set(PATTERNS)
        assert {c.backend for c in cases} == set(BACKENDS)

    def test_case_dict_round_trip(self):
        case = generate_cases(1, seed=1)[0]
        assert DiffCase(**case.to_dict()) == case


class TestDifferentialHarness:
    def test_seeded_sweep_passes(self):
        summary = run_differential(SMOKE_CASES, seed=11)
        assert summary.ok, summary.failures
        assert summary.cases == summary.passed == SMOKE_CASES
        # every case must actually exercise the oracle
        assert summary.checks > SMOKE_CASES * 10

    def test_summary_json_artifact(self, tmp_path):
        summary = run_differential(2, seed=5)
        out = tmp_path / "report.json"
        summary.write_json(out)
        data = json.loads(out.read_text())
        assert data["ok"] is True
        assert data["cases"] == 2
        assert data["failures"] == []

    def test_corrupted_run_is_reported(self, monkeypatch):
        import repro.validate.differential as diff_mod

        real = diff_mod.golden_bytes

        def corrupt(cfg):
            out = real(cfg)
            out[0] ^= 0xFF
            return out

        monkeypatch.setattr(diff_mod, "golden_bytes", corrupt)
        out = run_case(generate_cases(1, seed=2)[0])
        assert not out["ok"]
        assert any("diff" in f or "error" in f for f in out["failures"])

    def test_random_pattern_stable_across_hash_seeds(self):
        # str hashes are per-process random; the 'random' workload
        # layout (and so every replay/cache key built on it) must not be
        import subprocess
        import sys

        probe = (
            "from repro.workloads.synthetic import SyntheticConfig,"
            " filetype_for\n"
            "import hashlib\n"
            "cfg = SyntheticConfig(pattern='random', nprocs=4,"
            " bytes_per_rank=2048, piece_bytes=128, seed=7)\n"
            "h = hashlib.sha256()\n"
            "for r in range(4):\n"
            "    o, l = filetype_for(cfg, r).segments()\n"
            "    h.update(o.tobytes()); h.update(l.tobytes())\n"
            "print(h.hexdigest())\n")
        import os
        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        digests = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed,
                       PYTHONPATH=src)
            out = subprocess.run(
                [sys.executable, "-c", probe], env=env,
                capture_output=True, text=True, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1

    def test_golden_matches_reference_assembler(self):
        from repro.workloads.base import deterministic_bytes
        from repro.workloads.synthetic import reference_file
        import numpy as np

        for case in generate_cases(4, seed=9):
            cfg = case.synthetic()
            np.testing.assert_array_equal(
                golden_bytes(cfg),
                reference_file(cfg, deterministic_bytes))


class TestPropertyFleet:
    @settings(max_examples=8, deadline=None)
    @given(case=diff_cases())
    def test_generated_cases_pass_differentially(self, case):
        out = run_case(case)
        assert out["ok"], out["failures"]

    @settings(max_examples=20, deadline=None)
    @given(hints=protocol_hints())
    def test_protocol_hints_are_valid(self, hints):
        from repro.mpiio.hints import IOHints

        IOHints.from_dict(hints)  # must not raise
