"""Property tests: extent-lock state machine and MPI message matching."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MachineConfig
from repro.lustre.locks import LockManager
from repro.simmpi import World


# -- lock state machine -----------------------------------------------------

access_sequences = st.lists(
    st.tuples(st.integers(0, 3),          # ost
              st.integers(0, 4),          # client
              st.sampled_from(["r", "w"])),
    min_size=0, max_size=60,
)


@given(access_sequences)
def test_lock_costs_follow_the_state_machine(seq):
    """Re-derive grant/revocation counts from a reference state machine."""
    lm = LockManager()
    ref: dict[int, tuple[str, frozenset]] = {}
    for ost, client, mode in seq:
        grants, revokes = lm.access(ost, client, mode)
        state = ref.get(ost)
        if state is None:
            assert (grants, revokes) == (1, 0)
            ref[ost] = (mode, frozenset({client}))
            continue
        cur_mode, holders = state
        if mode == "r" and cur_mode == "r":
            if client in holders:
                assert (grants, revokes) == (0, 0)
            else:
                assert (grants, revokes) == (1, 0)
                ref[ost] = ("r", holders | {client})
            continue
        if client in holders and cur_mode == mode:
            assert (grants, revokes) == (0, 0)
            continue
        if cur_mode == "w" and holders == frozenset({client}):
            assert (grants, revokes) == (0, 0)
            continue
        expected_revoked = len(holders - {client})
        assert (grants, revokes) == (1, expected_revoked)
        ref[ost] = (mode, frozenset({client}))


@given(access_sequences)
def test_lock_counters_consistent(seq):
    lm = LockManager()
    total_g = total_r = 0
    for ost, client, mode in seq:
        g, r = lm.access(ost, client, mode)
        total_g += g
        total_r += r
    assert lm.grants == total_g
    assert lm.revocations == total_r


@given(access_sequences)
def test_holder_count_bounds(seq):
    lm = LockManager()
    for ost, client, mode in seq:
        lm.access(ost, client, mode)
        n = lm.holder_count(ost)
        assert n >= 1  # the accessor always ends up holding


# -- message matching --------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.data())
def test_unique_tagged_messages_match_exactly(data):
    """Random send order + random recv posting order with unique tags:
    every receive gets precisely its tag's payload."""
    nmsgs = data.draw(st.integers(1, 12))
    send_order = data.draw(st.permutations(list(range(nmsgs))))
    recv_order = data.draw(st.permutations(list(range(nmsgs))))
    w = World(MachineConfig(nprocs=2, cores_per_node=1))
    got = {}

    def program(comm):
        if comm.rank == 0:
            reqs = [comm.isend(f"payload-{t}", dest=1, tag=t)
                    for t in send_order]
            yield from comm.waitall(reqs)
        else:
            for t in recv_order:
                p = yield from comm.recv(source=0, tag=t)
                got[t] = p.data

    w.launch(program)
    assert got == {t: f"payload-{t}" for t in range(nmsgs)}


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 10), st.integers(0, 1_000_000))
def test_same_tag_messages_arrive_in_send_order(n, seed):
    """FIFO non-overtaking per (source, tag) regardless of payload sizes."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, 200_000, size=n).tolist()  # mix eager/rendezvous
    w = World(MachineConfig(nprocs=2, cores_per_node=1))
    got = []

    def program(comm):
        if comm.rank == 0:
            reqs = []
            for i, size in enumerate(sizes):
                from repro.simmpi import Payload

                reqs.append(comm.isend(Payload(size, i), dest=1, tag=9))
            yield from comm.waitall(reqs)
        else:
            for _ in sizes:
                p = yield from comm.recv(source=0, tag=9)
                got.append(p.data)

    w.launch(program)
    assert got == list(range(n))
