"""Failure injection and error-path behaviour across the I/O stack."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIIOError
from tests.conftest import Stack, rank_pattern


class TestOverlappingWriters:
    def test_overlapping_collective_write_raises(self):
        """Two ranks writing the same bytes violate collective semantics."""
        st = Stack(nprocs=2)

        def program(comm, io):
            f = yield from io.open(comm, "clash")
            # both ranks write [0, 64)
            yield from f.write_at_all(0, rank_pattern(comm.rank, 64))
            yield from f.close()

        with pytest.raises(MPIIOError, match="disjoint"):
            st.run(program)

    def test_partial_overlap_also_detected(self):
        st = Stack(nprocs=2)

        def program(comm, io):
            f = yield from io.open(comm, "clash2")
            yield from f.write_at_all(comm.rank * 32,
                                      rank_pattern(comm.rank, 64))
            yield from f.close()

        with pytest.raises(MPIIOError, match="disjoint"):
            st.run(program)


class TestProtocolMisuse:
    def test_mismatched_collective_participation_diagnosed(self):
        """One rank skipping a collective call is caught as a call
        mismatch (analytic mode) — not silent corruption."""
        from repro.errors import MPIError

        st = Stack(nprocs=4)

        def program(comm, io):
            f = yield from io.open(comm, "skip")
            if comm.rank != 2:  # rank 2 'forgets' the collective write
                yield from f.write_at_all(comm.rank * 16,
                                          rank_pattern(comm.rank, 16))
            yield from f.close()

        with pytest.raises(MPIError, match="mismatch"):
            st.run(program)

    def test_mismatched_collectives_deadlock_in_detailed_mode(self):
        """The same bug in detailed mode hangs — and the engine names
        the blocked ranks instead of spinning forever."""
        st = Stack(nprocs=4, collective_mode="detailed")

        def program(comm, io):
            if comm.rank != 1:
                yield from comm.barrier()
            yield from comm.allreduce(1)

        with pytest.raises((DeadlockError, Exception)):
            st.run(program)

    def test_negative_offset_rejected(self):
        st = Stack(nprocs=2)

        def program(comm, io):
            f = yield from io.open(comm, "neg")
            yield from f.write_at_all(-1, rank_pattern(0, 4))

        with pytest.raises(MPIIOError):
            st.run(program)

    def test_write_all_non_multiple_of_etype(self):
        from repro.datatypes import DOUBLE

        st = Stack(nprocs=2)

        def program(comm, io):
            f = yield from io.open(comm, "etype")
            f.set_view(0, DOUBLE, DOUBLE)
            yield from f.write_all(np.zeros(5, dtype=np.uint8))  # 5 % 8

        with pytest.raises(MPIIOError):
            st.run(program)

    def test_model_access_without_nbytes(self):
        st = Stack(nprocs=2, store_data=False)

        def program(comm, io):
            f = yield from io.open(comm, "nb")
            yield from f.write_at_all(0)  # neither data nor nbytes

        with pytest.raises(MPIIOError):
            st.run(program)


class TestHintEdgeCases:
    def test_more_groups_than_ranks_clamped(self):
        st = Stack(nprocs=4)

        def program(comm, io):
            f = yield from io.open(comm, "clamp", hints={
                "protocol": "parcoll", "parcoll_ngroups": 64})
            yield from f.write_at_all(comm.rank * 32,
                                      rank_pattern(comm.rank, 32))
            yield from f.close()

        st.run(program)  # must not deadlock or crash
        got = st.file_bytes("clamp")
        assert got.size == 128

    def test_single_rank_parcoll(self):
        st = Stack(nprocs=1)

        def program(comm, io):
            f = yield from io.open(comm, "solo", hints={
                "protocol": "parcoll", "parcoll_ngroups": 8})
            yield from f.write_at_all(0, rank_pattern(0, 100))
            yield from f.close()

        st.run(program)
        np.testing.assert_array_equal(st.file_bytes("solo"),
                                      rank_pattern(0, 100))

    def test_replan_always_tolerates_pattern_changes(self):
        st = Stack(nprocs=4)

        def program(comm, io):
            f = yield from io.open(comm, "replan", hints={
                "protocol": "parcoll", "parcoll_ngroups": 2,
                "parcoll_replan": "always"})
            # sizes change call to call
            for step, n in enumerate((32, 64, 16)):
                yield from f.write_at_all(1000 * step + comm.rank * n,
                                          rank_pattern(comm.rank + step, n))
            yield from f.close()

        st.run(program)
        got = st.file_bytes("replan")
        np.testing.assert_array_equal(got[2000:2016], rank_pattern(2, 16))

    def test_set_hints_mid_file(self):
        st = Stack(nprocs=4)

        def program(comm, io):
            f = yield from io.open(comm, "switch")
            yield from f.write_at_all(comm.rank * 32,
                                      rank_pattern(comm.rank, 32))
            f.set_hints(protocol="parcoll", parcoll_ngroups=2)
            yield from f.write_at_all(128 + comm.rank * 32,
                                      rank_pattern(comm.rank + 1, 32))
            yield from f.close()

        st.run(program)
        got = st.file_bytes("switch")
        np.testing.assert_array_equal(got[128:160], rank_pattern(1, 32))
