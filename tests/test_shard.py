"""Sharded parallel DES: bit-identity gates and the partition contract.

The acceptance bar for :mod:`repro.shard` is exact: a sharded run must
reproduce every virtual-time metric of the unsharded run bit for bit —
per-rank access times, breakdown sums, elapsed total, validation
reports.  These tests run the same configuration at 1/2/4 shards across
backends, protocols and a boundary-straddling fault plan and compare
full fingerprints.
"""

import functools
from dataclasses import fields

import pytest

from repro.errors import ShardError
from repro.faults import FaultPlan
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.shard import analyze, workload_hints_of
from repro.workloads import TileIOConfig, tile_io_program

LUSTRE = {"n_osts": 4, "default_stripe_count": 4,
          "default_stripe_size": 4096}


def parcoll_workload(**extra):
    hints = {"protocol": "parcoll", "parcoll_ngroups": 4, **extra}
    wl = TileIOConfig(tile_rows=16, tile_cols=12, element_size=64,
                      mode="both", hints=hints)
    return functools.partial(tile_io_program, wl)


def config(shards=1, **kw):
    base = dict(nprocs=16, cores_per_node=2,
                collective_mode="scoped:world=analytic,default=macro",
                lustre=LUSTRE, shards=shards)
    base.update(kw)
    return ExperimentConfig(**base)


def fingerprint(result):
    """Exact-identity fingerprint: every virtual-time metric, bit for bit."""
    per_rank = []
    for st in result.per_rank:
        row = {}
        for f in fields(st):
            v = getattr(st, f.name)
            row[f.name] = (v.start.hex(), v.end.hex()) \
                if hasattr(v, "start") else v
        per_rank.append(row)
    # Validation *check counts* are excluded on purpose: a shard sees
    # only its own write completions, so the mid-run quiescence
    # heuristic fires less often there — violations must match exactly.
    return (per_rank,
            {c: {k: (v.hex() if isinstance(v, float) else v)
                 for k, v in d.items()}
             for c, d in result.breakdown.items()},
            result.elapsed_total.hex(),
            result.validation["violations"] if result.validation else None)


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("backend", [
        "scoped:world=analytic,default=macro",
        "scoped:world=analytic,default=detailed",
        "analytic",
    ])
    def test_sharded_equals_unsharded(self, shards, backend):
        program = parcoll_workload()
        base = run_experiment(config(1, collective_mode=backend), program)
        test = run_experiment(
            config(shards, collective_mode=backend), program)
        assert fingerprint(test) == fingerprint(base)
        sh = test.perf.shard
        assert sh["effective"] == shards
        assert sh["fallback_reason"] is None
        assert sh["sync_rounds"] > 0
        assert len(sh["per_shard_events"]) == shards
        assert sh["load_imbalance"] >= 1.0

    def test_fault_straddling_shard_boundary(self):
        # OST 1 serves file areas of subgroups owned by different
        # shards (4 OSTs, stripe_count 4: every area touches every
        # OST), so the straggler's FIFO backlog couples the shards
        # through the coordinator-owned file system.
        faults = FaultPlan.straggler_ost(ost=1, factor=4.0)
        program = parcoll_workload()
        base = run_experiment(config(1, faults=faults, seed=7), program)
        test = run_experiment(config(2, faults=faults, seed=7), program)
        assert fingerprint(test) == fingerprint(base)

    def test_validated_sharded_run_oracle_green(self):
        # PR 5 correctness oracle on a sharded run: shard-local shadow
        # state must match the replica files, and the result must still
        # be bit-identical to the unsharded validated run.
        lustre = {**LUSTRE, "store_data": True}
        program = parcoll_workload()
        base = run_experiment(
            config(1, lustre=lustre, validate=True), program)
        test = run_experiment(
            config(2, lustre=lustre, validate=True), program)
        assert fingerprint(test) == fingerprint(base)
        assert test.validation is not None
        assert not test.validation["violations"]
        # the byte-level file oracle ran on the sampled shard (rank 0's
        # close hook lives in shard 0) and the read-back oracle on both
        assert test.validation["checks"]["file_oracle_bytes"] >= 1
        assert test.validation["checks"]["read_oracle"] == 16


class TestFallbacks:
    @pytest.mark.parametrize("protocol", ["ext2ph", "nodeagg"])
    def test_unshardable_protocols_fall_back(self, protocol):
        wl = TileIOConfig(tile_rows=16, tile_cols=12, element_size=64,
                          hints={"protocol": protocol})
        program = functools.partial(tile_io_program, wl)
        result = run_experiment(config(4, lustre=LUSTRE), program)
        sh = result.perf.shard
        assert sh["shards"] == 4
        assert sh["effective"] == 1
        assert "parcoll" in sh["fallback_reason"]

    def test_analyze_conditions(self):
        hints = {"protocol": "parcoll", "parcoll_ngroups": 4}

        def plan(cfg_kw=None, hint_kw=None):
            return analyze(config(4, **(cfg_kw or {})),
                           {**hints, **(hint_kw or {})})

        assert plan().active
        assert plan().ranks_per_shard == 4
        assert plan().groups_per_shard == 1
        for kw, needle in [
            (dict(cfg_kw={"mapping": "roundrobin"}), "mapping"),
            (dict(cfg_kw={"use_torus": True}), "torus"),
            (dict(cfg_kw={"collective_mode": "detailed"}), "analytic"),
            (dict(cfg_kw={"cores_per_node": 8}), "node"),
            (dict(hint_kw={"parcoll_ngroups": 6}), "divide"),
            (dict(hint_kw={"parcoll_ngroups": None}), "parcoll_ngroups"),
        ]:
            p = plan(**kw)
            assert not p.active
            assert needle in p.reason

    def test_shards_1_is_trivial(self):
        p = analyze(config(1), {"protocol": "parcoll",
                                "parcoll_ngroups": 4})
        assert not p.active
        assert p.reason is None

    def test_owned_ranks_partition(self):
        p = analyze(config(4), {"protocol": "parcoll",
                                "parcoll_ngroups": 4})
        seen = []
        for sid in range(4):
            rng = p.owned_ranks(sid)
            seen.extend(rng)
            for r in rng:
                assert p.shard_of(r) == sid
        assert seen == list(range(16))

    def test_workload_hints_extraction(self):
        program = parcoll_workload()
        hints = workload_hints_of(program)
        assert hints["protocol"] == "parcoll"
        assert workload_hints_of(lambda comm, io: None) == {}


class TestGuards:
    def test_cross_shard_p2p_raises(self):
        # A workload whose hints promise a clean parcoll partition but
        # whose traffic crosses the boundary anyway: the ShardWorld
        # guard must fail loudly, not deadlock or silently diverge.
        class _Lying:
            hints = {"protocol": "parcoll", "parcoll_ngroups": 4}

        def evil(_cfg, comm, io):
            from repro.workloads.base import WorkloadIOStats
            peer = (comm.rank + comm.size // 2) % comm.size
            if comm.rank < comm.size // 2:
                yield from comm.send(b"x", peer)
            else:
                yield from comm.recv(source=peer)
            return WorkloadIOStats()

        program = functools.partial(evil, _Lying())
        with pytest.raises(ShardError, match="crosses the shard"):
            run_experiment(config(2), program)
