"""The simulation service: protocol, fair scheduler, server end-to-end.

The end-to-end tests host a real :class:`SimulationServer` on a
background thread (``pool='thread'`` so executions share the test
process) and talk to it over real sockets with :class:`ServiceClient`.
Determinism knobs:

* a **gated workload** whose rank 0 blocks on a real
  ``threading.Event`` — the test decides exactly when the single worker
  slot frees up, making coalescing, backpressure, and fair-share
  ordering reproducible instead of timing-dependent;
* ``workers=1`` wherever ordering matters.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    RunCache, register_workload)
from repro.harness.runner import ExperimentConfig
from repro.service import (BackpressureError, DescriptorError, FairScheduler,
                           QueueFullError, ServerThread, ServiceClient,
                           ServiceError, parse_submit, parse_task,
                           result_to_dict, task_to_dict)
from repro.workloads import TileIOConfig, tile_io_program

LUSTRE = {"n_osts": 4, "default_stripe_count": 4, "default_stripe_size": 1024}

#: gate name -> Event the gated workload's rank 0 blocks on
GATES: dict[str, threading.Event] = {}


def gated_tile_program(cfg, comm, io):
    """A tile-IO run whose rank 0 first blocks on a real event.

    ``cfg`` is a plain dict: ``{"gate": <name>, "rows": <tile_rows>}``.
    Distinct gate names give distinct cache keys, so each gated job is
    its own experiment point.
    """
    if comm.rank == 0:
        gate = GATES.get(cfg["gate"])
        if gate is not None:
            gate.wait(timeout=60)
    stats = yield from tile_io_program(
        TileIOConfig(tile_rows=cfg.get("rows", 4), tile_cols=4,
                     element_size=8), comm, io)
    return stats


register_workload("gated_tile", gated_tile_program)


def tile_task(nprocs=4, rows=8, **config):
    wl = TileIOConfig(tile_rows=rows, tile_cols=8, element_size=8)
    return ExperimentTask(
        ExperimentConfig(nprocs=nprocs, lustre=LUSTRE, **config),
        "tile_io", wl)


def gated_task(gate, rows=4, nprocs=2):
    GATES.setdefault(gate, threading.Event())
    return ExperimentTask(ExperimentConfig(nprocs=nprocs, lustre=LUSTRE),
                          "gated_tile", {"gate": gate, "rows": rows})


def open_gate(gate):
    GATES[gate].set()


@pytest.fixture
def cache(tmp_path):
    return RunCache(tmp_path / "runcache")


def serve(cache, **overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("pool", "thread")
    return ServerThread(cache=cache, **overrides)


def wait_for(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


# ---------------------------------------------------------------------------
# protocol: descriptor validation + result serialization
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_task_round_trips_with_same_cache_key(self):
        task = tile_task(protocol="parcoll", seed=7)
        clone = parse_task(task_to_dict(task))
        assert clone.cache_key() == task.cache_key()

    def test_unknown_config_field_rejected(self):
        with pytest.raises(DescriptorError, match="unknown config field"):
            parse_task({"config": {"nprocs": 4, "warp_drive": 9},
                        "workload": "tile_io"})

    def test_unknown_task_field_rejected(self):
        with pytest.raises(DescriptorError, match="unknown task field"):
            parse_task({"config": {"nprocs": 4}, "workload": "tile_io",
                        "extra": 1})

    def test_unknown_workload_rejected(self):
        with pytest.raises(DescriptorError, match="unknown workload"):
            parse_task({"config": {"nprocs": 4}, "workload": "nope"})

    def test_bad_collective_mode_rejected(self):
        with pytest.raises(DescriptorError, match="collective_mode"):
            parse_task({"config": {"nprocs": 4, "collective_mode": "warp"},
                        "workload": "tile_io"})

    def test_bad_protocol_rejected(self):
        with pytest.raises(DescriptorError, match="protocol"):
            parse_task({"config": {"nprocs": 4, "protocol": "telepathy"},
                        "workload": "tile_io"})

    def test_bad_workload_config_field_rejected(self):
        with pytest.raises(DescriptorError, match="workload_config"):
            parse_task({"config": {"nprocs": 4}, "workload": "tile_io",
                        "workload_config": {"tile_rows": 4, "bogus": 1}})

    def test_bad_nprocs_rejected(self):
        with pytest.raises(DescriptorError, match="nprocs"):
            parse_task({"config": {"nprocs": 0}, "workload": "tile_io"})

    def test_submit_tenant_validation(self):
        body = {"task": task_to_dict(tile_task())}
        tenant, _ = parse_submit(body)
        assert tenant == "default"
        tenant, _ = parse_submit({**body, "tenant": "  acme  "})
        assert tenant == "acme"
        with pytest.raises(DescriptorError, match="tenant"):
            parse_submit({**body, "tenant": "   "})
        with pytest.raises(DescriptorError, match="64"):
            parse_submit({**body, "tenant": "x" * 65})
        with pytest.raises(DescriptorError, match="task"):
            parse_submit({"tenant": "acme"})

    def test_omitted_workload_config_uses_the_workload_defaults(self):
        # `repro submit tile_io --nprocs 4` sends no workload_config;
        # builtin programs require their config dataclass, so the
        # parser must default-construct it rather than ship None
        task = parse_task({"config": {"nprocs": 4}, "workload": "tile_io"})
        assert task.workload_config == TileIOConfig()
        result = ExperimentExecutor(jobs=1, cache=False).run(task)
        assert result.write_bandwidth > 0

    def test_result_to_dict_is_json_serializable(self):
        result = ExperimentExecutor(jobs=1, cache=False).run(tile_task())
        doc = result_to_dict(result)
        clone = json.loads(json.dumps(doc))
        assert clone["write_bandwidth"] == doc["write_bandwidth"]
        assert clone["breakdown"] == doc["breakdown"]


# ---------------------------------------------------------------------------
# fair scheduler (pure data structure)
# ---------------------------------------------------------------------------
class _FakeJob:
    def __init__(self, tenant, n):
        self.tenant = tenant
        self.name = f"{tenant}{n}"


def _push_n(sched, tenant, n, start=0):
    jobs = [_FakeJob(tenant, start + i) for i in range(n)]
    for j in jobs:
        sched.push(j)
    return jobs


class TestFairScheduler:
    def test_fifo_within_tenant(self):
        sched = FairScheduler()
        jobs = _push_n(sched, "a", 3)
        assert [sched.pop() for _ in range(3)] == jobs

    def test_single_job_tenant_served_promptly(self):
        # a tenant flooding 10 jobs cannot starve a tenant with one
        sched = FairScheduler()
        _push_n(sched, "flood", 10)
        _push_n(sched, "meek", 1)
        first_two = {sched.pop().tenant for _ in range(2)}
        assert "meek" in first_two

    def test_round_robin_over_equal_backlogs(self):
        sched = FairScheduler()
        for t in ("a", "b", "c"):
            _push_n(sched, t, 2)
        order = [sched.pop().tenant for _ in range(6)]
        assert order[:3] == ["a", "b", "c"]
        assert sorted(order[3:]) == ["a", "b", "c"]

    def test_interleaving_under_unequal_backlog(self):
        sched = FairScheduler()
        _push_n(sched, "big", 6)
        _push_n(sched, "small", 2)
        order = [sched.pop().tenant for _ in range(8)]
        # both small jobs land in the first four picks
        assert order[:4].count("small") == 2
        assert sched.pop() is None

    def test_global_bound(self):
        sched = FairScheduler(max_depth=3)
        _push_n(sched, "a", 3)
        with pytest.raises(QueueFullError) as exc:
            sched.push(_FakeJob("b", 0))
        assert exc.value.scope == "global"
        assert sched.rejected == 1
        assert sched.depth == 3  # nothing was enqueued by the failed push

    def test_tenant_bound_leaves_other_tenants_room(self):
        sched = FairScheduler(max_depth=10, max_tenant_depth=2)
        _push_n(sched, "greedy", 2)
        with pytest.raises(QueueFullError) as exc:
            sched.push(_FakeJob("greedy", 9))
        assert exc.value.scope == "greedy"
        _push_n(sched, "polite", 2)  # unaffected

    def test_fairness_stats(self):
        sched = FairScheduler()
        _push_n(sched, "a", 2)
        _push_n(sched, "b", 2)
        for _ in range(4):
            sched.pop()
        stats = sched.fairness()
        assert stats["served"] == {"a": 2, "b": 2}
        assert stats["jain_index"] == pytest.approx(1.0)
        assert stats["pushed"] == 4 and stats["popped"] == 4


# ---------------------------------------------------------------------------
# server end to end
# ---------------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_concurrent_tenants_bit_identical_to_direct_execution(self, cache):
        """The acceptance gate: N concurrent clients, 2 tenants,
        overlapping descriptors -> bit-identical to run_many, one
        execution per distinct descriptor."""
        distinct = [tile_task(nprocs=4, rows=r) for r in (4, 8, 16)]
        # 2 tenants x 3 descriptors = 6 overlapping submissions
        submissions = [(tenant, task) for tenant in ("acme", "zeta")
                       for task in distinct]
        with serve(cache, workers=2) as srv:
            client = ServiceClient(srv.url)
            with ThreadPoolExecutor(max_workers=6) as pool:
                jobs = list(pool.map(
                    lambda s: client.submit(s[1], tenant=s[0]), submissions))
            outs = [client.wait(j["id"], timeout=60) for j in jobs]
            metrics = client.metrics()

        assert [o["state"] for o in outs] == ["done"] * 6
        # exactly one execution per distinct descriptor; the other three
        # submissions were answered by coalescing or the warm cache
        assert metrics["counters"]["executions"] == 3
        assert (metrics["counters"]["coalesced"]
                + metrics["counters"]["cache_hits"]) == 3
        assert metrics["counters"]["completed"] == 6
        assert metrics["per_tenant"]["acme"]["completed"] == 3
        assert metrics["per_tenant"]["zeta"]["completed"] == 3

        direct = ExperimentExecutor(jobs=1, cache=False).run_many(distinct)
        expected = {t.cache_key(): json.loads(json.dumps(result_to_dict(r)))
                    for t, r in zip(distinct, direct)}
        for (tenant, task), out in zip(submissions, outs):
            got = out["result"]
            want = expected[task.cache_key()]
            # perf counters include host wall-clock; everything else is
            # simulated state and must round-trip bit-identical
            for field in (set(want) - {"perf"}):
                assert got[field] == want[field], field

    def test_coalescing_is_deterministic(self, cache):
        blocker = gated_task("coalesce-blocker")
        dup = tile_task(nprocs=4, rows=6)
        try:
            with serve(cache, workers=1) as srv:
                client = ServiceClient(srv.url)
                held = client.submit(blocker, tenant="ops")
                wait_for(lambda: client.job(held["id"])["state"] == "running",
                         what="gate job to start")
                first = client.submit(dup, tenant="acme")
                second = client.submit(dup, tenant="zeta")
                assert first["source"] == "executed"
                assert second["source"] == "coalesced"
                assert second["coalesced_with"] == first["id"]
                open_gate("coalesce-blocker")
                out1 = client.wait(first["id"], timeout=60)
                out2 = client.wait(second["id"], timeout=60)
                metrics = client.metrics()
        finally:
            open_gate("coalesce-blocker")
        assert out1["result"] == out2["result"]
        assert out2["job"]["source"] == "coalesced"
        assert metrics["counters"]["executions"] == 2  # blocker + one dup
        assert metrics["counters"]["coalesced"] == 1
        assert metrics["per_tenant"]["zeta"]["coalesced"] == 1

    def test_backpressure_is_deterministic(self, cache):
        blocker = gated_task("bp-blocker")
        try:
            with serve(cache, workers=1, max_queue=3,
                       max_tenant_queue=2) as srv:
                client = ServiceClient(srv.url)
                held = client.submit(blocker, tenant="ops")
                wait_for(lambda: client.job(held["id"])["state"] == "running",
                         what="gate job to start")
                # per-tenant bound: third queued job for one tenant is
                # refused while another tenant still has room
                client.submit(tile_task(rows=4), tenant="greedy")
                client.submit(tile_task(rows=8), tenant="greedy")
                with pytest.raises(BackpressureError) as exc:
                    client.submit(tile_task(rows=16), tenant="greedy")
                assert exc.value.payload["scope"] == "greedy"
                assert exc.value.retry_after >= 1
                # global bound: queue depth is now 3 (= max_queue)
                accepted = client.submit(tile_task(rows=16), tenant="polite")
                with pytest.raises(BackpressureError) as exc:
                    client.submit(tile_task(rows=32), tenant="polite")
                assert exc.value.payload["scope"] == "global"
                open_gate("bp-blocker")
                client.wait(accepted["id"], timeout=60)
                # queue drained: the same submission is accepted now
                retried = client.submit(tile_task(rows=32), tenant="polite")
                out = client.wait(retried["id"], timeout=60)
                assert out["state"] == "done"
                metrics = client.metrics()
        finally:
            open_gate("bp-blocker")
        assert metrics["counters"]["rejected"] == 2
        assert metrics["fairness"]["rejected"] == 2

    def test_fair_share_ordering_under_saturation(self, cache):
        """A flooding tenant cannot starve a small one: with the queue
        saturated, the small tenant's jobs run interleaved, not last."""
        blocker = gated_task("fair-blocker")
        flood = [tile_task(nprocs=2, rows=4 * (i + 1)) for i in range(6)]
        meek = [tile_task(nprocs=2, rows=4 * (i + 1), seed=1)
                for i in range(2)]
        try:
            with serve(cache, workers=1, max_queue=32) as srv:
                client = ServiceClient(srv.url)
                held = client.submit(blocker, tenant="ops")
                wait_for(lambda: client.job(held["id"])["state"] == "running",
                         what="gate job to start")
                flood_jobs = [client.submit(t, tenant="flood")
                              for t in flood]
                meek_jobs = [client.submit(t, tenant="meek") for t in meek]
                open_gate("fair-blocker")
                for j in flood_jobs + meek_jobs:
                    client.wait(j["id"], timeout=120)
                served = [client.job(j["id"]) for j in flood_jobs + meek_jobs]
                metrics = client.metrics()
        finally:
            open_gate("fair-blocker")
        order = sorted(served, key=lambda j: j["started"])
        first_four = [j["tenant"] for j in order[:4]]
        assert first_four.count("meek") == 2, first_four
        assert metrics["fairness"]["served"]["meek"] == 2
        assert metrics["fairness"]["served"]["flood"] == 6

    def test_events_stream_and_result_lifecycle(self, cache):
        task = tile_task(rows=12)
        with serve(cache) as srv:
            client = ServiceClient(srv.url)
            job = client.submit(task, tenant="acme")
            events = list(client.events(job["id"]))  # follows to terminal
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"
            assert "running" in kinds
            assert kinds[-1] == "done"
            assert [e["seq"] for e in events] == sorted(
                e["seq"] for e in events)
            out = client.result(job["id"])
            assert out["state"] == "done"
            assert out["result"]["nprocs"] == task.config.nprocs

    def test_unknown_job_404_and_pending_result_409(self, cache):
        blocker = gated_task("pending-blocker")
        try:
            with serve(cache, workers=1) as srv:
                client = ServiceClient(srv.url)
                with pytest.raises(ServiceError) as exc:
                    client.job("j999999")
                assert exc.value.status == 404
                held = client.submit(blocker, tenant="ops")
                with pytest.raises(ServiceError) as exc:
                    client.result(held["id"])
                assert exc.value.status == 409
                open_gate("pending-blocker")
                client.wait(held["id"], timeout=60)
        finally:
            open_gate("pending-blocker")

    def test_invalid_descriptor_is_rejected_with_400(self, cache):
        with serve(cache) as srv:
            client = ServiceClient(srv.url)
            with pytest.raises(ServiceError) as exc:
                client.submit({"config": {"nprocs": 4, "bogus": 1},
                               "workload": "tile_io"})
            assert exc.value.status == 400
            assert "bogus" in str(exc.value)
            metrics = client.metrics()
        assert metrics["counters"]["invalid_requests"] == 1
        assert metrics["counters"]["accepted"] == 0

    def test_failed_job_reports_the_error(self, cache):
        # tile grids must factor nprocs; 3 ranks on a (2, 2) grid cannot
        bad = ExperimentTask(
            ExperimentConfig(nprocs=3, lustre=LUSTRE), "tile_io",
            TileIOConfig(tile_rows=4, tile_cols=4, grid=(2, 2)))
        with serve(cache) as srv:
            client = ServiceClient(srv.url)
            job = client.submit(bad, tenant="acme")
            out = client.wait(job["id"], timeout=60)
            assert out["state"] == "failed"
            assert out["error"]["type"] == "ConfigError"
            metrics = client.metrics()
        assert metrics["counters"]["failed"] == 1

    def test_server_validate_flag_runs_the_oracle(self, cache):
        task = tile_task(rows=4, nprocs=2)
        with serve(cache, validate=True) as srv:
            client = ServiceClient(srv.url)
            job = client.submit(task, tenant="acme")
            out = client.wait(job["id"], timeout=60)
        assert out["result"]["validation"] is not None
        assert out["result"]["validation"]["violations"] == []
        assert sum(out["result"]["validation"]["checks"].values()) > 0

    def test_metrics_document_shape(self, cache):
        with serve(cache) as srv:
            client = ServiceClient(srv.url)
            client.submit(tile_task(rows=24), tenant="acme")
            metrics = client.metrics()
        for key in ("uptime_seconds", "counters", "per_tenant", "queue",
                    "fairness", "run_cache", "jobs", "workers"):
            assert key in metrics, key
        assert metrics["run_cache"]["dir"]
        assert metrics["queue"]["max_depth"] == 64

    def test_warm_cache_survives_server_restart(self, cache):
        task = tile_task(rows=20)
        with serve(cache) as srv:
            client = ServiceClient(srv.url)
            job = client.submit(task, tenant="acme")
            first = client.wait(job["id"], timeout=60)
        with serve(cache) as srv:
            client = ServiceClient(srv.url)
            job = client.submit(task, tenant="zeta")
            assert job["source"] == "cache"
            second = client.result(job["id"])
            metrics = client.metrics()
        assert metrics["counters"]["executions"] == 0
        assert metrics["counters"]["cache_hits"] == 1
        assert first["result"] == second["result"]


# ---------------------------------------------------------------------------
# CLI verbs against a live server
# ---------------------------------------------------------------------------
class TestServiceCLI:
    def test_submit_jobs_result_round_trip(self, cache, capsys):
        from repro.cli import main

        with serve(cache) as srv:
            url = srv.url
            rc = main(["submit", "tile_io", "--nprocs", "4",
                       "--workload-config",
                       '{"tile_rows": 8, "tile_cols": 8}',
                       "--tenant", "acme", "--wait", "--url", url])
            out = capsys.readouterr().out
            assert rc == 0
            assert "write bandwidth" in out
            assert "tenant=acme" in out

            rc = main(["jobs", "--url", url, "--tenant", "acme"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "j000001" in out and "done" in out

            rc = main(["result", "j000001", "--url", url])
            out = capsys.readouterr().out
            assert rc == 0
            assert "write bandwidth" in out

    def test_submit_usage_errors(self, cache, capsys):
        from repro.cli import main

        rc = main(["submit", "--url", "http://127.0.0.1:1"])
        assert rc == 2  # no workload and no --task-file
        rc = main(["submit", "tile_io", "--config", "not-json",
                   "--url", "http://127.0.0.1:1"])
        assert rc == 2
        capsys.readouterr()

    def test_result_of_pending_job_exits_3(self, cache, capsys):
        from repro.cli import main

        blocker = gated_task("cli-blocker")
        try:
            with serve(cache, workers=1) as srv:
                client = ServiceClient(srv.url)
                held = client.submit(blocker, tenant="ops")
                rc = main(["result", held["id"], "--url", srv.url])
                err = capsys.readouterr().err
                assert rc == 3
                assert "still" in err
                open_gate("cli-blocker")
                client.wait(held["id"], timeout=60)
        finally:
            open_gate("cli-blocker")
